// Command diagnet-train trains a general DiagNet model (and optionally
// per-service specialized models) on a dataset produced by
// diagnet-datagen, then writes the model(s) to disk.
//
// Usage:
//
//	diagnet-train -data data.gob -out model.gob [-specialize] [-epochs 25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"diagnet"
)

func main() {
	dataPath := flag.String("data", "dataset.gob", "dataset file from diagnet-datagen")
	out := flag.String("out", "model.gob", "output model file (general model)")
	specialize := flag.Bool("specialize", false, "also train per-service specialized models next to -out")
	bundle := flag.String("bundle", "", "write general + specialized models as one bundle file")
	epochs := flag.Int("epochs", 0, "override training epochs (0 = Table I default)")
	seed := flag.Int64("seed", 1, "training seed")
	flag.Parse()

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := diagnet.LoadDataset(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	fmt.Fprintf(os.Stderr, "training on %d samples (%d held out for testing)\n", train.Len(), test.Len())

	cfg := diagnet.DefaultConfig()
	cfg.Seed = *seed
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	res := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)
	fmt.Fprintf(os.Stderr, "general model trained: %d epochs, final val loss %.4f\n",
		res.History.Epochs(), last(res.History.ValLoss))
	if err := writeModel(res.Model, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *specialize {
		base := strings.TrimSuffix(*out, filepath.Ext(*out))
		for _, svc := range diagnet.Catalog() {
			if train.FilterService(svc.ID).Len() == 0 {
				continue
			}
			spec := res.Model.Specialize(train, svc.ID)
			path := fmt.Sprintf("%s.svc%d.gob", base, svc.ID)
			if err := writeModel(spec.Model, path); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%s, %d epochs)\n", path, svc.Name(), spec.History.Epochs())
		}
	}

	if *bundle != "" {
		b := diagnet.NewBundle(res.Model)
		var ids []int
		for _, svc := range diagnet.Catalog() {
			ids = append(ids, svc.ID)
		}
		b.SpecializeAll(train, ids)
		f, err := os.Create(*bundle)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := b.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote bundle %s (%d specialized models)\n", *bundle, len(b.Specialized))
	}
}

func writeModel(m *diagnet.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
