package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: diagnet/internal/core
cpu: AMD EPYC 7B13
BenchmarkDiagnoseTelemetry/on-8         	    1024	   1152982 ns/op	  418133 B/op	    2103 allocs/op
BenchmarkDiagnoseTelemetry/off-8        	    1031	   1153593 ns/op
PASS
ok  	diagnet/internal/core	2.693s
pkg: diagnet/internal/telemetry
BenchmarkCounterInc-8   	165045988	         7.266 ns/op
--- BENCH: some unrelated log line
BenchmarkBroken notanumber 12 ns/op
ok  	diagnet/internal/telemetry	2.1s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sampleStream), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || report.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context = %q/%q/%q", report.GOOS, report.GOARCH, report.CPU)
	}
	if len(report.Results) != 3 {
		t.Fatalf("%d results, want 3 (broken line must be dropped)", len(report.Results))
	}

	on := report.Results[0]
	if on.Name != "BenchmarkDiagnoseTelemetry/on-8" || on.Package != "diagnet/internal/core" {
		t.Fatalf("first result %+v", on)
	}
	if on.Iterations != 1024 || on.Metrics["ns/op"] != 1152982 ||
		on.Metrics["B/op"] != 418133 || on.Metrics["allocs/op"] != 2103 {
		t.Fatalf("metrics %+v", on)
	}

	counter := report.Results[2]
	if counter.Package != "diagnet/internal/telemetry" {
		t.Fatalf("pkg context not updated: %+v", counter)
	}
	if counter.Metrics["ns/op"] != 7.266 {
		t.Fatalf("fractional ns/op lost: %+v", counter)
	}
}

func TestParseEmpty(t *testing.T) {
	report, err := parse(strings.NewReader("no benchmarks here\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 0 || report.Results == nil {
		t.Fatalf("want empty non-nil results, got %+v", report.Results)
	}
}

func TestParseOnlyFilter(t *testing.T) {
	report, err := parse(strings.NewReader(sampleStream), regexp.MustCompile(`^BenchmarkCounter`))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 || report.Results[0].Name != "BenchmarkCounterInc-8" {
		t.Fatalf("filtered results %+v", report.Results)
	}
}
