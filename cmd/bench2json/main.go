// Command bench2json converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark results (BENCH_telemetry.json) as
// a machine-readable artifact and diff them across runs.
//
// Usage:
//
//	go test -bench . -benchtime 1x ./... | go run ./cmd/bench2json [-only regexp] > bench.json
//
// It reads the benchmark stream on stdin: context lines (goos, goarch,
// pkg, cpu) annotate every following result line, and each result line
// ("BenchmarkName-8  100  123 ns/op  45 B/op  6 allocs/op") becomes one
// record with all its metric pairs. Non-benchmark lines are ignored, so
// mixed `go test` output is fine. -only keeps only results whose name
// matches the regexp, so one bench run can be split into focused artifacts
// (e.g. -only '^BenchmarkServe' for BENCH_serving.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole converted stream.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	only := flag.String("only", "", "keep only results whose name matches this regexp")
	flag.Parse()
	var filter *regexp.Regexp
	if *only != "" {
		var err error
		if filter, err = regexp.Compile(*only); err != nil {
			log.Fatalf("bench2json: -only: %v", err)
		}
	}
	report, err := parse(os.Stdin, filter)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// parse consumes a `go test -bench` stream, keeping only names matched by
// filter (nil keeps everything).
func parse(r io.Reader, filter *regexp.Regexp) (*Report, error) {
	report := &Report{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResult(line)
			if !ok {
				continue
			}
			if filter != nil && !filter.MatchString(res.Name) {
				continue
			}
			res.Package = pkg
			report.Results = append(report.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench2json: read: %w", err)
	}
	return report, nil
}

// parseResult parses one "BenchmarkX-8  N  <value> <unit> ..." line. The
// metric list is value/unit pairs; unpaired or non-numeric tails are
// rejected rather than guessed at.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, true
}
