// Command diagnet-datagen generates a labeled dataset from the simulated
// multi-cloud deployment and writes it to a file for diagnet-train /
// diagnet-eval.
//
// Usage:
//
//	diagnet-datagen -out data.gob [-nominal 4000] [-faulty 7000] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diagnet"
)

func main() {
	out := flag.String("out", "dataset.gob", "output file")
	csvOut := flag.String("csv", "", "also export the samples as CSV to this path")
	nominal := flag.Int("nominal", 4000, "approximate number of fault-free samples")
	faulty := flag.Int("faulty", 7000, "approximate number of fault-scenario samples")
	seed := flag.Int64("seed", 11, "generation seed")
	worldSeed := flag.Int64("world-seed", 1, "world topology seed")
	anomalies := flag.Bool("background-anomalies", false, "enable spurious background link anomalies (§II-B)")
	flag.Parse()

	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: *worldSeed, BackgroundAnomalies: *anomalies})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: *nominal,
		FaultSamples:   *faulty,
		Seed:           *seed,
	})
	c := data.Count(diagnet.HiddenLandmarks())
	fmt.Fprintf(os.Stderr, "generated %d samples: %d nominal, %d degraded (%d near hidden landmarks)\n",
		c.Total, c.Nominal, c.Degraded, c.HiddenFaultDegraded)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := data.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *csvOut != "" {
		cf, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		defer cf.Close()
		if err := data.ExportCSV(cf); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvOut)
	}
}
