// Command diagnet-router fronts a fleet of diagnetd replicas with
// health-aware routing, consistent-hash service affinity, tail-latency
// hedging, scatter-gather batches and honored backpressure (DESIGN.md
// §14).
//
// Usage:
//
//	diagnet-router -replicas 'http://10.0.0.1:8421,http://10.0.0.2:8421,http://10.0.0.3:8421'
//	               [-addr :8420] [-hedge-after 0] [-affinity=true]
//	               [-health-interval 500ms] [-attempt-timeout 30s]
//	               [-federate-interval 15s] [-slo-target 0.999] [-slo-latency-ms 250]
//	               [-state-dir state/ [-profile-on-breach 500]]
//	               [-log-format text|json] [-trace=true]
//
// API (proxied to the replicas):
//
//	POST /v1/diagnose        routed with service affinity + hedging
//	POST /v1/diagnose-batch  scatter-gathered across ready replicas
//	GET  /v1/model           proxied to the best-ranked replica
//	GET  /v1/metrics         the router's own telemetry snapshot (JSON; exposition via Accept)
//	GET  /metrics            the router's own metrics, Prometheus/OpenMetrics text
//	GET  /v1/fleet/metrics   exactly-merged federated fleet view + per-replica breakdown
//	GET  /v1/slo             SLO burn-rate alert state machine (404 unless -slo-target)
//	GET  /v1/profiles        anomaly-captured CPU/heap profile ring (404 unless -state-dir)
//	GET  /v1/replicas        per-replica health/breaker/load status
//	GET  /healthz            liveness (204 while the process runs)
//	GET  /readyz             readiness (503 until a replica is ready)
//
// -hedge-after 0 (the default) derives the hedging delay from the
// observed attempt-latency p90; a fixed duration pins it; a negative
// value disables hedging.
//
// Fleet observability (DESIGN.md §16): -federate-interval scrapes every
// replica's /metrics on that cadence and maintains the exactly-merged
// fleet view. -slo-target turns on multi-window burn-rate alerting over
// the federated /v1/diagnose metrics (availability, plus a latency
// objective when -slo-latency-ms is set). With -state-dir, a firing
// burn-rate alert — or a windowed fleet p99 above -profile-on-breach
// (ms) — captures a CPU+heap profile pair into the on-disk ring under
// <state-dir>/profiles, rate-limited to one capture per cooldown.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"diagnet/internal/cluster"
	"diagnet/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedging delay: 0 = adaptive (attempt-latency p90), <0 = hedging off")
	affinity := flag.Bool("affinity", true, "consistent-hash service affinity (false = pure least-loaded)")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "replica /readyz sweep period")
	attemptTimeout := flag.Duration("attempt-timeout", 30*time.Second, "per-replica attempt timeout")
	federateInterval := flag.Duration("federate-interval", 15*time.Second, "replica /metrics scrape period for the federated fleet view (0 = federation off)")
	sloTarget := flag.Float64("slo-target", 0, "SLO goal over federated /v1/diagnose metrics, e.g. 0.999 (0 = SLO engine off)")
	sloLatencyMs := flag.Float64("slo-latency-ms", 0, "latency objective threshold in ms; use a latency-bucket bound for an exact split (0 = availability objective only)")
	profileOnBreach := flag.Float64("profile-on-breach", 0, "also capture a profile pair when the windowed fleet p99 exceeds this many ms (0 = burn-rate triggers only)")
	stateDir := flag.String("state-dir", "", "state directory; anomaly profile captures land under <state-dir>/profiles (empty = profiling off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	traceOn := flag.Bool("trace", true, "record route/attempt spans")
	flag.Parse()

	slog.SetDefault(tracing.NewLogger(os.Stderr, *logFormat))
	tracing.SetEnabled(*traceOn)

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		slog.Error("no replicas: pass -replicas 'http://host:port,...'")
		os.Exit(1)
	}

	obsCfg := cluster.ObsConfig{
		FederateInterval:  *federateInterval,
		SLOTarget:         *sloTarget,
		SLOLatencyMs:      *sloLatencyMs,
		ProfileOnBreachMs: *profileOnBreach,
	}
	if *stateDir != "" {
		obsCfg.ProfileDir = filepath.Join(*stateDir, "profiles")
	}
	rt := cluster.NewRouter(urls, cluster.Config{
		HedgeAfter:     *hedgeAfter,
		NoAffinity:     !*affinity,
		HealthInterval: *healthInterval,
		AttemptTimeout: *attemptTimeout,
		Obs:            obsCfg,
	})
	defer rt.Close()
	slog.Info("router pool built", "replicas", len(urls),
		"hedge_after", *hedgeAfter, "affinity", *affinity,
		"federate_interval", *federateInterval, "slo_target", *sloTarget,
		"profiling", obsCfg.ProfileDir != "")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		slog.Info("router listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		slog.Error("http server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		slog.Info("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			slog.Warn("forced shutdown", "err", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}
}
