// Command diagnet-top is a terminal fleet view over a diagnet-router's
// observability plane: fleet QPS, windowed p50/p99, error rate, SLO
// error-budget remaining, and per-replica health — the operator's
// one-glance answer to "is the fleet OK right now".
//
// Usage:
//
//	diagnet-top -router http://localhost:8420            one-shot snapshot
//	diagnet-top -router http://localhost:8420 -watch     refresh every -interval
//
// The QPS and latency columns are windowed: each refresh subtracts the
// previous federated histogram from the current one, so the numbers
// describe the last interval, not the process lifetime. One-shot mode
// takes two samples -interval apart to get one window.
//
// diagnet-top needs the router started with -federate-interval (the
// fleet view is the federated one); the SLO column appears when the
// router also has -slo-target.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	router := flag.String("router", "http://localhost:8420", "diagnet-router base URL")
	interval := flag.Duration("interval", 2*time.Second, "sample window (and refresh period with -watch)")
	watch := flag.Bool("watch", false, "refresh continuously instead of one snapshot")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	prev, err := collect(client, *router)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnet-top:", err)
		os.Exit(1)
	}
	for {
		time.Sleep(*interval)
		cur, err := collect(client, *router)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnet-top:", err)
			os.Exit(1)
		}
		if *watch {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, prev, cur)
		if !*watch {
			return
		}
		prev = cur
	}
}
