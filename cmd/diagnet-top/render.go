package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"diagnet/internal/cluster"
	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
)

// metricRequests et al. are the federated (Prometheus-form) names of the
// diagnose route's metrics.
const (
	metricRequests = "http_diagnose_requests"
	metricErrors   = "http_diagnose_errors"
	metricLatency  = "http_diagnose_latency_ms"
)

// sloDoc mirrors the router's /v1/slo response.
type sloDoc struct {
	Objectives []struct {
		Name            string  `json:"name"`
		Goal            float64 `json:"goal"`
		BudgetRemaining float64 `json:"budget_remaining"`
		Alerts          []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Firing   bool   `json:"firing"`
		} `json:"alerts"`
	} `json:"objectives"`
}

// fleetSample is everything one refresh needs, stamped with its own time
// so windowed rates survive a slow scrape.
type fleetSample struct {
	At       time.Time
	View     obs.FleetView
	SLO      *sloDoc // nil when the router has no SLO engine
	Replicas []cluster.ReplicaStatus
}

// collect pulls one sample off the router. /v1/fleet/metrics is
// required; /v1/slo is optional (404 when disabled); /v1/replicas rounds
// out the health columns.
func collect(client *http.Client, base string) (*fleetSample, error) {
	s := &fleetSample{At: time.Now()}
	if err := getJSON(client, base+"/v1/fleet/metrics", &s.View); err != nil {
		return nil, fmt.Errorf("fleet metrics: %w (is the router running with -federate-interval?)", err)
	}
	var slo sloDoc
	switch err := getJSON(client, base+"/v1/slo", &slo); {
	case err == nil:
		s.SLO = &slo
	case !isNotFound(err):
		return nil, fmt.Errorf("slo: %w", err)
	}
	if err := getJSON(client, base+"/v1/replicas", &s.Replicas); err != nil {
		return nil, fmt.Errorf("replicas: %w", err)
	}
	return s, nil
}

type httpStatusError int

func (e httpStatusError) Error() string { return fmt.Sprintf("status %d", int(e)) }

func isNotFound(err error) bool {
	se, ok := err.(httpStatusError)
	return ok && int(se) == http.StatusNotFound
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpStatusError(resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// window extracts the rate-and-quantile numbers for one export pair:
// the observations made between prev and cur.
type window struct {
	QPS      float64
	ErrRate  float64 // errors per request in the window, 0..1
	P50, P99 float64 // ms; NaN-free — 0 when the window is empty
	Count    int64
}

func windowOf(prev, cur *telemetry.Export, elapsed time.Duration) window {
	var w window
	if elapsed <= 0 {
		return w
	}
	curReq, _ := cur.Counter(metricRequests)
	curErr, _ := cur.Counter(metricErrors)
	var prevReq, prevErr int64
	if prev != nil {
		prevReq, _ = prev.Counter(metricRequests)
		prevErr, _ = prev.Counter(metricErrors)
	}
	dReq, dErr := curReq-prevReq, curErr-prevErr
	if dReq < 0 { // replica restarted and counters reset: show the window as empty
		return w
	}
	w.QPS = float64(dReq) / elapsed.Seconds()
	if dReq > 0 && dErr > 0 {
		w.ErrRate = float64(dErr) / float64(dReq)
	}
	curLat, ok := cur.Histogram(metricLatency)
	if !ok {
		return w
	}
	var prevLat *telemetry.HistogramPoint
	if prev != nil {
		prevLat, _ = prev.Histogram(metricLatency)
	}
	delta, ok := obs.SubtractHistogram(curLat, prevLat)
	if !ok {
		return w
	}
	w.Count = delta.Count()
	if w.Count > 0 {
		w.P50 = delta.Quantile(0.5)
		w.P99 = delta.Quantile(0.99)
	}
	return w
}

// render writes the fleet dashboard for the window between two samples.
func render(out io.Writer, prev, cur *fleetSample) {
	elapsed := cur.At.Sub(prev.At)
	fleet := windowOf(&prev.View.Fleet, &cur.View.Fleet, elapsed)

	fmt.Fprintf(out, "diagnet fleet — %d replicas, %s window\n\n",
		len(cur.View.Replicas), elapsed.Round(100*time.Millisecond))
	fmt.Fprintf(out, "  fleet   %8.1f qps   p50 %s   p99 %s   errors %5.2f%%\n",
		fleet.QPS, fmtMs(fleet.P50), fmtMs(fleet.P99), fleet.ErrRate*100)

	if cur.SLO != nil {
		for _, o := range cur.SLO.Objectives {
			firing := ""
			for _, a := range o.Alerts {
				if a.Firing {
					firing += fmt.Sprintf("  [%s %s FIRING]", a.Severity, a.Rule)
				}
			}
			fmt.Fprintf(out, "  slo     %-24s goal %.4g   budget %6.1f%%%s\n",
				o.Name, o.Goal, o.BudgetRemaining*100, firing)
		}
	}

	fmt.Fprintf(out, "\n  %-32s %-8s %-9s %8s %10s %10s\n",
		"REPLICA", "HEALTH", "BREAKER", "QPS", "P99(ms)", "OUTSTD")
	// Join the federated per-replica exports with the pool's health rows
	// by replica name (both use the base URL).
	health := map[string]cluster.ReplicaStatus{}
	for _, r := range cur.Replicas {
		health[r.Name] = r
	}
	prevRep := map[string]*telemetry.Export{}
	for i := range prev.View.Replicas {
		prevRep[prev.View.Replicas[i].Name] = &prev.View.Replicas[i].Export
	}
	rows := append([]obs.ReplicaMetrics(nil), cur.View.Replicas...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	for i := range rows {
		r := &rows[i]
		if r.Error != "" {
			fmt.Fprintf(out, "  %-32s scrape error: %s\n", r.Name, r.Error)
			continue
		}
		w := windowOf(prevRep[r.Name], &r.Export, elapsed)
		h, healthy, breaker := health[r.Name], "?", "?"
		if h.Name != "" {
			if h.Healthy {
				healthy = "ready"
			} else {
				healthy = "DOWN"
			}
			breaker = h.Breaker
		}
		fmt.Fprintf(out, "  %-32s %-8s %-9s %8.1f %10s %10d\n",
			r.Name, healthy, breaker, w.QPS, fmtMs(w.P99), h.Outstanding)
	}
	for _, wmsg := range cur.View.Warnings {
		fmt.Fprintf(out, "\n  warning: %s\n", wmsg)
	}
}

// fmtMs renders a millisecond quantile, or a dash for an empty window.
func fmtMs(v float64) string {
	if v <= 0 {
		return "     —"
	}
	return fmt.Sprintf("%6.1f", v)
}
