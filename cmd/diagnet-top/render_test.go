package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diagnet/internal/cluster"
	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
)

// fakeRouter serves the three endpoints diagnet-top reads, with swappable
// fleet views so a test can present two samples.
type fakeRouter struct {
	view     obs.FleetView
	slo      *sloDoc
	replicas []cluster.ReplicaStatus
}

func (f *fakeRouter) serve(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(f.view)
	})
	mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, r *http.Request) {
		if f.slo == nil {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(f.slo)
	})
	mux.HandleFunc("/v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(f.replicas)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// exportWith builds an export carrying n diagnose requests, e errors and
// a latency histogram with all n observations in the ≤10ms bucket.
func exportWith(n, e int64) telemetry.Export {
	return telemetry.Export{
		Counters: []telemetry.CounterPoint{
			{Name: metricErrors, Value: e},
			{Name: metricRequests, Value: n},
		},
		Histograms: []telemetry.HistogramPoint{{
			Name:       metricLatency,
			Bounds:     []float64{1, 10, 100},
			Cumulative: []int64{0, n, n, n},
			Sum:        float64(n) * 5,
		}},
	}
}

func TestCollectAndRenderWindowedView(t *testing.T) {
	f := &fakeRouter{
		view: obs.FleetView{
			Replicas: []obs.ReplicaMetrics{
				{Name: "http://r1", Export: exportWith(100, 0)},
				{Name: "http://r2", Export: exportWith(50, 0)},
			},
			Fleet: exportWith(150, 0),
		},
		slo: &sloDoc{},
		replicas: []cluster.ReplicaStatus{
			{Name: "http://r1", Healthy: true, Breaker: "closed"},
			{Name: "http://r2", Healthy: true, Breaker: "closed"},
		},
	}
	f.slo.Objectives = append(f.slo.Objectives, struct {
		Name            string  `json:"name"`
		Goal            float64 `json:"goal"`
		BudgetRemaining float64 `json:"budget_remaining"`
		Alerts          []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Firing   bool   `json:"firing"`
		} `json:"alerts"`
	}{Name: "diagnose-availability", Goal: 0.99, BudgetRemaining: 0.8})

	srv := f.serve(t)
	client := &http.Client{Timeout: 5 * time.Second}
	prev, err := collect(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Second sample: 200 more fleet requests, 10 of them errors, all on r1.
	f.view.Fleet = exportWith(350, 10)
	f.view.Replicas[0].Export = exportWith(300, 10)
	cur, err := collect(client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the elapsed window so QPS is deterministic.
	cur.At = prev.At.Add(2 * time.Second)

	var sb strings.Builder
	render(&sb, prev, cur)
	out := sb.String()

	for _, want := range []string{
		"2 replicas",
		"100.0 qps", // 200 requests / 2s
		"errors  5.00%",
		"diagnose-availability",
		"budget   80.0%",
		"http://r1",
		"http://r2",
		"ready",
		"closed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered view lacks %q:\n%s", want, out)
		}
	}
	// r2 took no traffic in the window; its row shows 0 qps and an empty
	// p99, not stale lifetime numbers.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "http://r2") {
			if !strings.Contains(line, "0.0") || !strings.Contains(line, "—") {
				t.Errorf("r2 row should be windowed-empty: %q", line)
			}
		}
	}
}

func TestCollectWithoutSLO(t *testing.T) {
	f := &fakeRouter{
		view:     obs.FleetView{Fleet: exportWith(1, 0)},
		replicas: []cluster.ReplicaStatus{},
	}
	srv := f.serve(t)
	s, err := collect(&http.Client{Timeout: 5 * time.Second}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s.SLO != nil {
		t.Fatal("404 /v1/slo should leave SLO nil")
	}
	var sb strings.Builder
	render(&sb, s, s) // degenerate zero-window render must not panic
	if !strings.Contains(sb.String(), "0 replicas") {
		t.Errorf("unexpected render:\n%s", sb.String())
	}
}
