// Command diagnet-trace records and replays probing sessions: record runs
// a simulated client session (with optional scheduled faults) into a trace
// file; replay feeds a recorded trace back through a collector agent and,
// with -model, diagnoses every QoE degradation offline — the post-mortem
// workflow of §III-A.
//
// Usage:
//
//	diagnet-trace record -out trace.gob -client AMST -service 3 \
//	    -faults loss@GRAV:60 -ticks 120
//	diagnet-trace replay -in trace.gob -model model.gob
//
// Fault specs are kind@REGION:sinceTick.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"diagnet"
	"diagnet/internal/collector"
	"diagnet/internal/netsim"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: diagnet-trace record|replay [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

type scheduledFault struct {
	fault netsim.Fault
	since int64
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "trace.gob", "output trace file")
	clientFlag := fs.String("client", "AMST", "client region")
	serviceID := fs.Int("service", 0, "monitored service ID")
	faultsFlag := fs.String("faults", "", "comma-separated kind@REGION:sinceTick")
	ticks := fs.Int64("ticks", 120, "number of probing rounds")
	seed := fs.Int64("seed", 1, "world/noise seed")
	fs.Parse(args)

	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: *seed})
	regions := regionIndex()
	client, ok := regions[strings.ToUpper(*clientFlag)]
	if !ok {
		log.Fatalf("unknown region %q", *clientFlag)
	}
	catalog := diagnet.Catalog()
	if *serviceID < 0 || *serviceID >= len(catalog) {
		log.Fatalf("service %d out of range", *serviceID)
	}
	schedule, err := parseFaults(*faultsFlag, regions)
	if err != nil {
		log.Fatal(err)
	}

	layout := diagnet.FullLayout()
	src := collector.NewSimSource(world, client, catalog[*serviceID], layout, func(tick int64) []netsim.Fault {
		var active []netsim.Fault
		for _, sf := range schedule {
			if tick >= sf.since {
				active = append(active, sf.fault)
			}
		}
		return active
	}, *seed+7)

	tickList := make([]int64, *ticks)
	for i := range tickList {
		tickList[i] = int64(i)
	}
	tr := diagnet.RecordTrace(src, layout, tickList)
	degraded := 0
	for _, d := range tr.Degraded {
		if d {
			degraded++
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recorded %d rounds (%d degraded) to %s\n", tr.Len(), degraded, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.gob", "trace file")
	modelPath := fs.String("model", "", "optional model for offline diagnosis")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := diagnet.LoadTrace(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var model *diagnet.Model
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = diagnet.Load(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	layout := tr.Layout()
	agent := diagnet.NewAgent(tr.Replay(), layout.NumFeatures(), diagnet.AgentConfig{})
	for i := 0; i < tr.Len(); i++ {
		tick := tr.Ticks[i]
		ev, degraded := agent.Step(tick)
		if !degraded {
			continue
		}
		fmt.Printf("tick %d: degraded; pre-filter flags:", tick)
		for _, j := range ev.Anomalies {
			fmt.Printf(" %s", layout.FeatureName(j))
		}
		fmt.Println()
		if model != nil {
			diag := model.Diagnose(ev.Features, layout)
			fmt.Printf("  diagnosis: family=%v, top causes:", diag.Family)
			for _, j := range diag.Ranked()[:3] {
				fmt.Printf(" %s(%.3f)", layout.FeatureName(j), diag.Final[j])
			}
			fmt.Println()
		}
	}
	steps, events, _ := agent.Stats()
	fmt.Fprintf(os.Stderr, "replayed %d rounds, %d degradations\n", steps, events)
}

func regionIndex() map[string]int {
	m := map[string]int{}
	for i, r := range diagnet.DefaultRegions() {
		m[r.Name] = i
	}
	return m
}

func parseFaults(spec string, regions map[string]int) ([]scheduledFault, error) {
	if spec == "" {
		return nil, nil
	}
	kinds := map[string]diagnet.FaultKind{}
	for _, k := range netsim.AllFaultKinds() {
		kinds[k.String()] = k
	}
	var out []scheduledFault
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		since := int64(0)
		if len(fields) == 2 {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad since-tick in %q", part)
			}
			since = v
		} else if len(fields) != 1 {
			return nil, fmt.Errorf("bad fault spec %q", part)
		}
		kr := strings.SplitN(fields[0], "@", 2)
		if len(kr) != 2 {
			return nil, fmt.Errorf("bad fault spec %q (want kind@REGION[:tick])", part)
		}
		kind, ok := kinds[kr[0]]
		if !ok {
			return nil, fmt.Errorf("unknown fault kind %q", kr[0])
		}
		region, ok := regions[strings.ToUpper(kr[1])]
		if !ok {
			return nil, fmt.Errorf("unknown region %q", kr[1])
		}
		out = append(out, scheduledFault{fault: diagnet.NewFault(kind, region), since: since})
	}
	return out, nil
}
