// Command diagnet-eval evaluates a trained model on the test split of a
// dataset: Recall@1..5 overall and split by known/new landmarks.
//
// Usage:
//
//	diagnet-eval -data data.gob -model model.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diagnet"
	"diagnet/internal/eval"
)

func main() {
	dataPath := flag.String("data", "dataset.gob", "dataset file from diagnet-datagen")
	modelPath := flag.String("model", "model.gob", "model file from diagnet-train")
	flag.Parse()

	df, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := diagnet.LoadDataset(df)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := diagnet.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}

	_, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	layout := diagnet.FullLayout()
	hidden := map[int]bool{}
	for _, r := range diagnet.HiddenLandmarks() {
		hidden[r] = true
	}

	var all, newRanks, knownRanks []int
	deg := test.Degraded()
	for i := range deg.Samples {
		s := &deg.Samples[i]
		diag := model.Diagnose(s.Features, layout)
		rank := eval.RankOf(diag.Final, s.Cause)
		all = append(all, rank)
		isNew := !layout.IsLocal(s.Cause) && hidden[layout.Landmarks[s.Cause/5]]
		if isNew {
			newRanks = append(newRanks, rank)
		} else {
			knownRanks = append(knownRanks, rank)
		}
	}
	report := func(name string, ranks []int) {
		fmt.Printf("%-22s n=%-5d", name, len(ranks))
		for k := 1; k <= 5; k++ {
			fmt.Printf("  R@%d %5.1f%%", k, 100*eval.RecallAtK(ranks, k))
		}
		fmt.Println()
	}
	report("all degraded samples", all)
	report("near known landmarks", knownRanks)
	report("near new landmarks", newRanks)
}
