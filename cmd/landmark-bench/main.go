// Command landmark-bench load-tests a landmark server: it runs N
// concurrent probers for a duration and reports probe-latency percentiles
// and aggregate throughput — the capacity-planning companion of landmarkd
// (the paper notes landmark availability varies with "saturated capacity").
//
// Usage:
//
//	landmark-bench -target http://lm:8420 [-concurrency 8] [-duration 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"diagnet"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8420", "landmark base URL")
	concurrency := flag.Int("concurrency", 8, "concurrent probers")
	duration := flag.Duration("duration", 10*time.Second, "test duration")
	downloadKB := flag.Int64("download-kb", 256, "download payload per probe (KiB)")
	uploadKB := flag.Int64("upload-kb", 128, "upload payload per probe (KiB)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	type result struct {
		latency time.Duration
		bytes   int64
		err     error
	}
	var mu sync.Mutex
	var results []result

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prober := diagnet.NewProber(diagnet.ProberConfig{
				Pings:         3,
				DownloadBytes: *downloadKB << 10,
				UploadBytes:   *uploadKB << 10,
			})
			for ctx.Err() == nil {
				t0 := time.Now()
				_, err := prober.Probe(ctx, *target)
				r := result{latency: time.Since(t0), bytes: (*downloadKB + *uploadKB) << 10, err: err}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed int
	var latencies []time.Duration
	var bytes int64
	for _, r := range results {
		if r.err != nil {
			if ctx.Err() != nil {
				continue // cancellation artifacts at the deadline
			}
			failed++
			continue
		}
		ok++
		latencies = append(latencies, r.latency)
		bytes += r.bytes
	}
	if ok == 0 {
		log.Fatalf("no successful probes (%d failed)", failed)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		return latencies[int(p*float64(len(latencies)-1))]
	}
	fmt.Printf("target        %s\n", *target)
	fmt.Printf("duration      %v, concurrency %d\n", elapsed.Round(time.Millisecond), *concurrency)
	fmt.Printf("probes        %d ok, %d failed (%.1f probes/s)\n", ok, failed, float64(ok)/elapsed.Seconds())
	fmt.Printf("probe latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Printf("payload       %.1f MB moved (%.1f Mbit/s aggregate)\n",
		float64(bytes)/1e6, float64(bytes)*8/1e6/elapsed.Seconds())
}
