// Command diagnet-soak runs the full-stack chaos soak harness (DESIGN.md
// §17): it boots a router, a replica fleet and the continual-learning
// loop in this process, drives a deterministic seeded schedule of chaos
// events under constant client load, and asserts the fleet's lifecycle
// invariants — no goroutine or fd growth, no client-visible 5xx, clean
// journal replay after injected crashes, exact federated counters.
//
// Usage:
//
//	diagnet-soak [-duration 60s] [-seed 1] [-replicas 3] [-workers 4]
//	             [-step 250ms] [-state-root dir] [-out results/soak.json]
//	             [-q]
//
// The process exits 0 iff every invariant held. -out writes the full
// machine-readable summary (including the event schedule, so two runs
// with the same seed can be diffed for determinism).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"diagnet/internal/soak"
)

func main() {
	log.SetFlags(0)
	duration := flag.Duration("duration", 60*time.Second, "length of the chaos phase")
	seed := flag.Int64("seed", 1, "seed for the event schedule and client load")
	replicas := flag.Int("replicas", 3, "fleet size (replica 0 hosts the continual loop and is never killed)")
	workers := flag.Int("workers", 4, "concurrent client-load generators")
	step := flag.Duration("step", 250*time.Millisecond, "event schedule draw cadence")
	stateRoot := flag.String("state-root", "", "replica state directory (default: temp dir, removed on success)")
	out := flag.String("out", "", "write the JSON summary here")
	quiet := flag.Bool("q", false, "suppress per-event progress output")
	flag.Parse()

	cfg := soak.Config{
		Seed:          *seed,
		Duration:      *duration,
		Replicas:      *replicas,
		ClientWorkers: *workers,
		EventStep:     *step,
		StateRoot:     *stateRoot,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	sum, err := soak.Run(cfg)
	if *out != "" {
		if werr := sum.WriteJSON(*out); werr != nil {
			log.Printf("soak: writing summary: %v", werr)
		} else {
			log.Printf("soak: summary written to %s", *out)
		}
	}
	report(sum)
	if err != nil {
		log.Printf("FAIL: %v", err)
		if sum.LeakReport != "" {
			log.Printf("leak report:\n%s", sum.LeakReport)
		}
		os.Exit(1)
	}
	log.Printf("PASS: all invariants held")
}

func report(s *soak.Summary) {
	fmt.Printf("soak seed=%d replicas=%d duration=%s events=%d\n",
		s.Seed, s.Replicas, time.Duration(s.DurationMs)*time.Millisecond, len(s.Schedule))
	fmt.Printf("  requests: ok=%d 4xx=%d 429=%d 5xx=%d transport=%d\n",
		s.Requests["ok"], s.Requests["4xx"], s.Requests["429"], s.Requests["5xx"], s.Requests["transport"])
	fmt.Printf("  chaos: checkpoints=%d crash-injections=%d retrains-accepted=%d fleet-checks=%d\n",
		s.Checkpoints, s.CrashInjections, s.Retrains, s.FleetChecks)
	fmt.Printf("  federation: %d counters compared exactly\n", s.FederatedCounters)
	if n := len(s.GoroutineSamples); n > 0 {
		fmt.Printf("  goroutines: first=%d last=%d (of %d samples)\n",
			s.GoroutineSamples[0], s.GoroutineSamples[n-1], n)
	}
	if n := len(s.FDSamples); n > 0 {
		fmt.Printf("  fds: first=%d last=%d\n", s.FDSamples[0], s.FDSamples[n-1])
	}
	for _, v := range s.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
}
