// Command diagnet-figures regenerates the tables and figures of the
// DiagNet paper's evaluation section on the simulated deployment and
// prints them as text reports.
//
// Usage:
//
//	diagnet-figures [-profile quick|default|paper] [-fig 5|6|7|8|9|10|ablation|all] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"diagnet/internal/experiments"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: quick, default or paper")
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, 7, 8, 9, 10, ablation or all")
	outDir := flag.String("out", "", "optional directory to also write per-figure reports to")
	flag.Parse()

	var profile experiments.Profile
	switch *profileName {
	case "quick":
		profile = experiments.Quick()
	case "default":
		profile = experiments.Default()
	case "paper":
		profile = experiments.Paper()
	default:
		log.Fatalf("unknown profile %q", *profileName)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	var lab *experiments.Lab
	needLab := all || want["5"] || want["6"] || want["7"] || want["8"] ||
		want["9"] || want["10"] || want["ablation"] || want["hyper"] ||
		want["availability"] || want["perservice"]
	if needLab {
		lab = experiments.NewLab(profile, logf)
	}

	emit := func(name, report, csv string) {
		fmt.Printf("==== %s (profile %s) ====\n%s\n", name, profile.Name, report)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(report), 0o644); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(csv), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	if all || want["5"] {
		r := lab.Fig5()
		emit("fig5", r.String(), r.CSV())
	}
	if all || want["6"] {
		r := lab.Fig6()
		emit("fig6", r.String(), r.CSV())
	}
	if all || want["7"] {
		r := lab.Fig7()
		emit("fig7", r.String(), r.CSV())
	}
	if all || want["8"] {
		r := lab.Fig8()
		emit("fig8", r.String(), r.CSV())
	}
	if all || want["9"] {
		r := lab.Fig9()
		emit("fig9", r.String(), r.CSV())
	}
	if all || want["10"] {
		r := lab.Fig10()
		emit("fig10", r.String(), r.CSV())
	}
	if all || want["ablation"] {
		r := lab.Ablation()
		emit("ablation", r.String(), r.CSV())
	}
	// The hyperparameter sweep retrains the general model per variant and
	// is not part of -fig all; request it explicitly.
	if want["hyper"] {
		r := lab.Hyperparams()
		emit("hyper", r.String(), r.CSV())
	}
	if want["availability"] {
		r := lab.Availability()
		emit("availability", r.String(), r.CSV())
	}
	if want["perservice"] {
		r := lab.PerService()
		emit("perservice", r.String(), r.CSV())
	}
	// The disentanglement study builds two extra pipelines; explicit only.
	if want["disentangle"] {
		r := experiments.Disentangle(profile, logf)
		emit("disentangle", r.String(), r.CSV())
	}
	// The robustness study builds one pipeline per seed; explicit only.
	if want["seeds"] {
		r := experiments.Robustness(profile, 3, logf)
		emit("seeds", r.String(), r.CSV())
	}
}
