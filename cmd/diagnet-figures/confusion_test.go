package main

import (
	"fmt"
	"testing"

	"diagnet/internal/experiments"
	"diagnet/internal/probe"
)

// TestDebugConfusion prints the coarse confusion matrices (diagnostic).
func TestDebugConfusion(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	lab := experiments.NewLab(experiments.Quick(), nil)
	r := lab.Fig7()
	fmt.Println("KNOWN confusion (rows=truth, cols=pred):")
	for truth := 0; truth < int(probe.NumFamilies); truth++ {
		fmt.Printf("%-10s", probe.Family(truth))
		for pred := 0; pred < int(probe.NumFamilies); pred++ {
			fmt.Printf("%5d", r.ConfusionKno.Counts[truth][pred])
		}
		fmt.Println()
	}
	fmt.Println("NEW confusion:")
	for truth := 0; truth < int(probe.NumFamilies); truth++ {
		fmt.Printf("%-10s", probe.Family(truth))
		for pred := 0; pred < int(probe.NumFamilies); pred++ {
			fmt.Printf("%5d", r.ConfusionNew.Counts[truth][pred])
		}
		fmt.Println()
	}
}
