package main

import (
	"fmt"
	"testing"

	"diagnet/internal/experiments"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
)

// TestDebugTwinFaults compares coarse predictions for identical faults
// injected at a known (BEAU) vs hidden (GRAV) region — the pooled
// representation is position-free, so they should classify alike.
func TestDebugTwinFaults(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	lab := experiments.NewLab(experiments.Quick(), nil)
	prober := probe.Prober{W: lab.World}
	m := lab.General.Model
	for _, kind := range []netsim.FaultKind{netsim.FaultLoss, netsim.FaultJitter, netsim.FaultServiceDelay, netsim.FaultRate} {
		for _, region := range []int{netsim.BEAU, netsim.GRAV, netsim.SING, netsim.SEAT} {
			env := netsim.Env{Tick: 40, Faults: []netsim.Fault{netsim.NewFault(kind, region)}}
			x := prober.Sample(netsim.LOND, lab.Full, env, nil)
			probs := m.CoarsePredict(x, lab.Full)
			best, second := 0, 0
			for k := range probs {
				if probs[k] > probs[best] {
					second, best = best, k
				}
			}
			fmt.Printf("%-14s @%s -> %s=%.2f (2nd %s=%.2f)\n", kind,
				netsim.DefaultRegions()[region].Name,
				probe.Family(best), probs[best], probe.Family(second), probs[second])
		}
	}
}
