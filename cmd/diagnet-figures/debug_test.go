package main

import (
	"fmt"
	"sort"
	"testing"

	"diagnet/internal/experiments"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
)

// TestDebugAttention is a diagnostic aid, not a regression test: it prints
// how the pipeline scores a few hidden-landmark faults.
func TestDebugAttention(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	lab := experiments.NewLab(experiments.Quick(), nil)
	deg := lab.Test.Degraded()
	regions := netsim.DefaultRegions()
	shown := 0
	for i := range deg.Samples {
		s := &deg.Samples[i]
		if !lab.IsNewFault(s) || shown >= 6 {
			continue
		}
		shown++
		m := lab.ModelFor(s.Service)
		diag := m.Diagnose(s.Features, lab.Full)
		fmt.Printf("=== true cause %s (fault %v@%s, svc %d client %s)\n",
			lab.Full.FeatureName(s.Cause), netsim.FaultKind(s.FaultKind),
			regions[s.FaultRegion].Name, s.Service, regions[s.Client].Name)
		fmt.Printf("coarse: ")
		for f := probe.Family(0); f < probe.NumFamilies; f++ {
			fmt.Printf("%s=%.2f ", f, diag.Coarse[f])
		}
		fmt.Printf("(true %s)  wU=%.3f\n", s.Family, diag.UnknownWeight)
		type fs struct {
			j int
			v float64
		}
		var att, fin []fs
		for j := range diag.Attention {
			att = append(att, fs{j, diag.Attention[j]})
			fin = append(fin, fs{j, diag.Final[j]})
		}
		sort.Slice(att, func(a, b int) bool { return att[a].v > att[b].v })
		sort.Slice(fin, func(a, b int) bool { return fin[a].v > fin[b].v })
		fmt.Printf("top attention: ")
		for _, e := range att[:6] {
			fmt.Printf("%s=%.3f ", lab.Full.FeatureName(e.j), e.v)
		}
		fmt.Printf("\ntop final:     ")
		for _, e := range fin[:6] {
			fmt.Printf("%s=%.3f ", lab.Full.FeatureName(e.j), e.v)
		}
		fmt.Println()
	}
}
