package main

import (
	"context"
	"encoding/json"
	"log/slog"
	"path/filepath"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/durable"
	"diagnet/internal/tracing"
)

// uploadLog journals degraded-round diagnosis requests (the agent's
// in-flight state) so a crash between "QoE degraded" and "diagnetd
// answered" cannot lose the snapshot. Entries are appended before the
// upload and acknowledged after a successful answer; a restarted agent
// resubmits the unacknowledged backlog before its first probing round.
type uploadLog struct {
	q *durable.Queue
}

// openUploadLog opens the journal under stateDir/uploads.
func openUploadLog(stateDir string) (*uploadLog, error) {
	q, err := durable.OpenQueue(filepath.Join(stateDir, "uploads"), durable.Options{
		SegmentBytes: 256 << 10,
	})
	if err != nil {
		return nil, err
	}
	return &uploadLog{q: q}, nil
}

// append journals one request, returning its ack handle.
func (l *uploadLog) append(req *analysis.DiagnoseRequest) (uint64, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	return l.q.Append(payload)
}

// ack marks a request as answered.
func (l *uploadLog) ack(seq uint64) error { return l.q.Ack(seq) }

// resubmit replays the unacknowledged backlog through the analysis
// client. Requests that fail again (service still down, or the request
// is no longer valid against the current model) stay journaled for the
// next restart — except undecodable ones, which are dropped.
func (l *uploadLog) resubmit(client *analysis.Client) {
	pending := l.q.Pending()
	if len(pending) == 0 {
		return
	}
	ctx, span := tracing.StartSpan(context.Background(), "agent.resubmit")
	span.SetAttr("pending", len(pending))
	defer span.End()
	slog.InfoContext(ctx, "resubmitting journaled diagnosis uploads", "pending", len(pending))
	for _, item := range pending {
		var req analysis.DiagnoseRequest
		if err := json.Unmarshal(item.Payload, &req); err != nil {
			slog.WarnContext(ctx, "dropping undecodable journaled upload", "seq", item.Seq, "err", err)
			l.q.Ack(item.Seq)
			continue
		}
		subCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		resp, err := client.Diagnose(subCtx, &req)
		cancel()
		if err != nil {
			slog.WarnContext(ctx, "resubmit failed; keeping journaled", "seq", item.Seq, "err", err)
			continue
		}
		slog.InfoContext(ctx, "recovered diagnosis", "seq", item.Seq, "family", resp.Family)
		if err := l.q.Ack(item.Seq); err != nil {
			slog.WarnContext(ctx, "recovered upload ack failed", "seq", item.Seq, "err", err)
		}
	}
	// Shed the acked prefix so the journal stays proportional to the
	// (bounded) backlog, not the agent's lifetime.
	if err := l.q.Compact(); err != nil {
		slog.WarnContext(ctx, "upload journal compaction failed", "err", err)
	}
}

// close syncs and closes the journal.
func (l *uploadLog) close() error { return l.q.Close() }
