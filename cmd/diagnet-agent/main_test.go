package main

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/forest"
	"diagnet/internal/landmark"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/resilience"
)

var (
	modelOnce sync.Once
	model     *core.Model
)

// trainedModel trains one small general model for the package's tests.
func trainedModel(t *testing.T) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		w := netsim.NewWorld(netsim.Config{Seed: 1})
		d := dataset.Generate(dataset.GenConfig{
			World:          w,
			NominalSamples: 300,
			FaultSamples:   800,
			Seed:           21,
		})
		train, _ := d.Split(0.8, netsim.HiddenLandmarks(), 23)
		cfg := core.DefaultConfig()
		cfg.Filters = 6
		cfg.Hidden = []int{24, 12}
		cfg.Epochs = 4
		cfg.Forest = forest.Config{Trees: 8, Tree: forest.TreeConfig{MaxDepth: 5}}
		known := []int{netsim.BEAU, netsim.AMST, netsim.SING, netsim.LOND, netsim.FRNK, netsim.TOKY, netsim.SYDN}
		model = core.TrainGeneral(train, known, cfg).Model
	})
	return model
}

// chaosFleet starts `total` landmark servers, the last `flaky` of them
// wrapped in fault injection.
func chaosFleet(t *testing.T, total, flaky int, faultCfg landmark.FlakyConfig) []string {
	t.Helper()
	urls := make([]string, 0, total)
	for i := 0; i < total; i++ {
		s := &landmark.Server{}
		var h = s.Handler()
		if i >= total-flaky {
			cfg := faultCfg
			cfg.Seed = int64(i + 1)
			h = diagnet.NewFlakyHandler(h, cfg)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	return urls
}

// TestChaosRoundPartialDiagnosis is the acceptance scenario: with 3 of 10
// landmarks failing (errors and stalls injected), a probing round must
// complete within its deadline, produce a DiagnoseRequest containing
// exactly the 7 healthy landmarks, and the analysis server must answer it.
func TestChaosRoundPartialDiagnosis(t *testing.T) {
	urls := chaosFleet(t, 10, 3, landmark.FlakyConfig{ErrorRate: 0.7, StallRate: 0.3})
	regions := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		Prober:        landmark.ProberConfig{Pings: 2, DownloadBytes: 32 << 10, UploadBytes: 16 << 10, Timeout: 2 * time.Second},
		MaxConcurrent: 5,
		RoundTimeout:  20 * time.Second,
		Retry:         diagnet.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})

	start := time.Now()
	snap, err := probeRound(context.Background(), prober, urls, regions, 5)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("round took %v, deadline 20s", elapsed)
	}
	if len(snap.Regions) != 7 {
		t.Fatalf("surviving landmarks %v, want the 7 healthy ones", snap.Regions)
	}
	for i, r := range snap.Regions {
		if r != i {
			t.Fatalf("healthy subset wrong: %v", snap.Regions)
		}
	}
	if len(snap.Lost) != 3 {
		t.Fatalf("lost %v, want the 3 flaky landmarks", snap.Lost)
	}
	wantFeatures := 7*int(probe.NumMetrics) + probe.NumLocal
	if len(snap.Features) != wantFeatures {
		t.Fatalf("degraded feature vector has %d entries, want %d", len(snap.Features), wantFeatures)
	}

	// The analysis server must accept the degraded-mode request as-is.
	srv := analysis.NewServer(trainedModel(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := analysis.NewClient(ts.URL)
	resp, err := client.Diagnose(context.Background(), &analysis.DiagnoseRequest{
		ServiceID: -1,
		Landmarks: snap.Regions,
		Features:  snap.Features,
		TopK:      5,
	})
	if err != nil {
		t.Fatalf("degraded-mode diagnosis rejected: %v", err)
	}
	if resp.Family == "" || len(resp.Causes) != 5 {
		t.Fatalf("implausible diagnosis: %+v", resp)
	}
}

// TestProbeRoundTooFewLandmarks verifies the min-landmarks floor.
func TestProbeRoundTooFewLandmarks(t *testing.T) {
	urls := chaosFleet(t, 3, 3, landmark.FlakyConfig{ErrorRate: 1})
	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		Prober:       landmark.ProberConfig{Pings: 2, DownloadBytes: 16 << 10, UploadBytes: 8 << 10, Timeout: 2 * time.Second},
		RoundTimeout: 10 * time.Second,
		Retry:        diagnet.RetryPolicy{MaxAttempts: 1},
	})
	if _, err := probeRound(context.Background(), prober, urls, []int{0, 1, 2}, 1); err == nil {
		t.Fatal("round with zero surviving landmarks must fail")
	}
}

// TestProbeRoundFullFleet is the nominal path: nothing lost, full layout.
func TestProbeRoundFullFleet(t *testing.T) {
	urls := chaosFleet(t, 4, 0, landmark.FlakyConfig{})
	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		Prober:       landmark.ProberConfig{Pings: 2, DownloadBytes: 16 << 10, UploadBytes: 8 << 10, Timeout: 3 * time.Second},
		RoundTimeout: 15 * time.Second,
	})
	snap, err := probeRound(context.Background(), prober, urls, []int{3, 1, 4, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Lost) != 0 || len(snap.Regions) != 4 {
		t.Fatalf("full fleet degraded: %+v", snap)
	}
	if len(snap.Features) != 4*int(probe.NumMetrics)+probe.NumLocal {
		t.Fatalf("feature width %d", len(snap.Features))
	}
}

// TestChaosRecoveryAcrossRounds drives rounds through a breaker cycle: a
// landmark dies, its circuit opens (skipping the full probe), then it
// heals and rounds return to full strength.
func TestChaosRecoveryAcrossRounds(t *testing.T) {
	healthy := &landmark.Server{}
	hts := httptest.NewServer(healthy.Handler())
	defer hts.Close()
	sick := &landmark.Server{}
	fh := diagnet.NewFlakyHandler(sick.Handler(), landmark.FlakyConfig{ErrorRate: 1, Seed: 5})
	sts := httptest.NewServer(fh)
	defer sts.Close()

	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		Prober:       landmark.ProberConfig{Pings: 2, DownloadBytes: 16 << 10, UploadBytes: 8 << 10, Timeout: 2 * time.Second},
		RoundTimeout: 10 * time.Second,
		Retry:        diagnet.RetryPolicy{MaxAttempts: 1},
		Breaker:      resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Now: clock},
	})
	urls := []string{hts.URL, sts.URL}
	regions := []int{0, 1}

	// Rounds 1-2: flaky landmark fails, circuit opens; degraded rounds
	// still succeed on the healthy landmark.
	for round := 0; round < 2; round++ {
		snap, err := probeRound(context.Background(), prober, urls, regions, 1)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(snap.Regions) != 1 || snap.Regions[0] != 0 {
			t.Fatalf("round %d: regions %v", round, snap.Regions)
		}
	}
	// Round 3: circuit open → the sick landmark is skipped outright.
	downloads := sick.Stats().Downloads
	if _, err := probeRound(context.Background(), prober, urls, regions, 1); err != nil {
		t.Fatal(err)
	}
	if sick.Stats().Downloads != downloads {
		t.Fatal("open circuit still probing")
	}
	// Heal, wait out the cooldown: next round recovers both landmarks.
	fh.SetConfig(landmark.FlakyConfig{})
	advance(61 * time.Second)
	snap, err := probeRound(context.Background(), prober, urls, regions, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Regions) != 2 {
		t.Fatalf("recovered round still degraded: %+v", snap)
	}
	if h := prober.Health()[sts.URL]; h.State != "closed" {
		t.Fatalf("breaker %q after recovery", h.State)
	}
}
