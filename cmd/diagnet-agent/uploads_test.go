package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"diagnet/internal/analysis"
	"diagnet/internal/probe"
)

// degradedRequest builds a valid DiagnoseRequest for the test model.
func degradedRequest(t *testing.T) *analysis.DiagnoseRequest {
	t.Helper()
	m := trainedModel(t)
	layout := m.TrainLayout
	return &analysis.DiagnoseRequest{
		ServiceID: -1,
		Landmarks: append([]int(nil), layout.Landmarks...),
		Features:  make([]float64, layout.NumFeatures()),
		TopK:      3,
	}
}

// TestUploadLogResubmitAfterCrash simulates the agent crashing after a
// degraded round journaled its snapshot but before diagnetd answered:
// the "restarted" agent must resubmit the snapshot and ack it only on a
// successful answer.
func TestUploadLogResubmitAfterCrash(t *testing.T) {
	stateDir := t.TempDir()
	l, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	req := degradedRequest(t)
	if _, err := l.append(req); err != nil {
		t.Fatal(err)
	}
	l.close() // crash: no ack ever written

	// Restart against a live analysis service.
	srv := analysis.NewServer(trainedModel(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	l2, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.q.Len(); got != 1 {
		t.Fatalf("pending uploads after restart = %d, want 1", got)
	}
	l2.resubmit(analysis.NewClient(ts.URL))
	if got := l2.q.Len(); got != 0 {
		t.Fatalf("pending uploads after resubmit = %d, want 0", got)
	}
	l2.close()

	// A third "restart" has nothing left to replay.
	l3, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if got := l3.q.Len(); got != 0 {
		t.Fatalf("acked upload replayed: %d pending", got)
	}
}

// TestUploadLogKeepsBacklogWhileServiceDown: resubmission against a dead
// service must not ack — the snapshot survives for the next restart.
func TestUploadLogKeepsBacklogWhileServiceDown(t *testing.T) {
	stateDir := t.TempDir()
	l, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.append(degradedRequest(t)); err != nil {
		t.Fatal(err)
	}
	l.close()

	var hits atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer down.Close()

	l2, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	l2.resubmit(analysis.NewClient(down.URL))
	if hits.Load() == 0 {
		t.Fatal("resubmit never reached the service")
	}
	if got := l2.q.Len(); got != 1 {
		t.Fatalf("failed resubmit must keep the snapshot; pending = %d", got)
	}
	l2.close()
}

// TestUploadLogRoundTripShape pins that the journaled request decodes to
// the same wire shape the diagnose path produced.
func TestUploadLogRoundTripShape(t *testing.T) {
	if probe.NumLocal <= 0 {
		t.Skip("layout constants unavailable")
	}
	stateDir := t.TempDir()
	l, err := openUploadLog(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	req := degradedRequest(t)
	req.Features[0] = 42.5
	if _, err := l.append(req); err != nil {
		t.Fatal(err)
	}
	pending := l.q.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
}
