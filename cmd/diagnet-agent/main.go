// Command diagnet-agent is the deployable client-side agent: it
// periodically probes live landmark servers (landmarkd instances), times a
// monitored service URL as its QoE signal, and submits the measurement
// snapshot to a diagnetd analysis service whenever the load time degrades
// against its own history.
//
// The probing plane is fault-tolerant: landmarks are probed concurrently
// with per-landmark retries and circuit breakers, and a round that loses
// some landmarks still produces a degraded-mode diagnosis from the
// surviving subset (DiagNet's LandPooling/ZeroMask extensibility makes the
// model accept any landmark list, §IV-B-a). Only when fewer than
// -min-landmarks survive is the round abandoned.
//
// Usage:
//
//	diagnet-agent -landmarks http://lm1:8420,http://lm2:8420 \
//	              -landmark-regions 2,4 \
//	              -service-url https://example.org \
//	              -analysis http://diagnetd:8421 \
//	              [-service-id 0] [-interval 30s] [-min-landmarks 1] \
//	              [-round-timeout 60s] [-probe-concurrency 4] \
//	              [-breaker-threshold 3] [-breaker-cooldown 2m] \
//	              [-retry-attempts 2] [-metrics 127.0.0.1:8422]
//	              [-state-dir state/] [-log-format text|json]
//
// With -state-dir, every degraded-round snapshot is journaled before the
// diagnosis upload and acknowledged only after diagnetd answers: a crash
// mid-upload (or a long analysis-service outage) leaves the snapshot on
// disk, and a restarted agent resubmits the pending backlog before its
// first probing round.
//
// -landmark-regions maps each probed landmark to its region index in the
// model's world, in the same order as -landmarks.
//
// -metrics serves GET /metrics on the given address: the process-wide
// telemetry snapshot (probing rounds, per-landmark latencies, breaker
// transitions) plus per-landmark health, as one JSON document.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/landmark"
	"diagnet/internal/resilience"
	"diagnet/internal/tracing"
)

// fatal logs at error level and exits — slog has no Fatal.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	landmarksFlag := flag.String("landmarks", "", "comma-separated landmark base URLs")
	regionsFlag := flag.String("landmark-regions", "", "comma-separated region indices, one per landmark")
	serviceURL := flag.String("service-url", "", "URL whose load time is the QoE signal")
	analysisURL := flag.String("analysis", "", "diagnetd base URL")
	serviceID := flag.Int("service-id", -1, "service ID for specialized-model routing")
	interval := flag.Duration("interval", 30*time.Second, "probing interval")
	degradeRatio := flag.Float64("degrade-ratio", 1.5, "QoE degradation threshold vs median load time")
	rounds := flag.Int("rounds", 0, "stop after N rounds (0 = run forever)")
	minLandmarks := flag.Int("min-landmarks", 1, "fewest surviving landmarks for a degraded-mode diagnosis")
	roundTimeout := flag.Duration("round-timeout", 60*time.Second, "deadline for one probing round across all landmarks")
	concurrency := flag.Int("probe-concurrency", 4, "landmarks probed in parallel")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a landmark's circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Minute, "open-circuit cooldown before a half-open ping")
	retryAttempts := flag.Int("retry-attempts", 2, "probe attempts per landmark per round")
	metricsAddr := flag.String("metrics", "", "serve GET /metrics (telemetry + landmark health) on this address (empty = off)")
	stateDir := flag.String("state-dir", "", "journal degraded-round snapshots here; pending uploads survive a crash (empty = off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()

	slog.SetDefault(tracing.NewLogger(os.Stderr, *logFormat))

	urls := splitNonEmpty(*landmarksFlag)
	if len(urls) == 0 || *serviceURL == "" || *analysisURL == "" {
		fatal("need -landmarks, -service-url and -analysis")
	}
	regions, err := parseInts(*regionsFlag)
	if err != nil || len(regions) != len(urls) {
		fatal("-landmark-regions must list one region index per landmark",
			"given", len(regions), "landmarks", len(urls))
	}
	if *minLandmarks < 1 || *minLandmarks > len(urls) {
		fatal("-min-landmarks out of range", "max", len(urls))
	}

	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		MaxConcurrent: *concurrency,
		RoundTimeout:  *roundTimeout,
		Retry:         resilience.RetryPolicy{MaxAttempts: *retryAttempts},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
		},
	})
	client := analysis.NewClient(*analysisURL)
	if *metricsAddr != "" {
		go serveMetrics(*metricsAddr, prober)
	}
	var uploads *uploadLog
	if *stateDir != "" {
		var err error
		uploads, err = openUploadLog(*stateDir)
		if err != nil {
			fatal("state dir open failed", "dir", *stateDir, "err", err)
		}
		defer uploads.close()
		// Crash recovery: resubmit journaled uploads the last run never
		// got an answer for, before the first new probing round.
		uploads.resubmit(client)
	}
	var history []float64

	for round := 0; *rounds == 0 || round < *rounds; round++ {
		start := time.Now()
		// One root span per round ties the whole pipeline together: the
		// probe.round and per-landmark child spans, and — when the round
		// escalates — the Diagnose upload, whose traceparent header makes
		// the server's spans part of the same trace.
		ctx, span := tracing.StartSpan(context.Background(), "agent.round")
		span.SetAttr("round", round)
		snap, err := probeRound(ctx, prober, urls, regions, *minLandmarks)
		if err != nil {
			slog.WarnContext(ctx, "round abandoned", "round", round, "err", err)
			span.SetError(err)
			span.End()
			sleepRemainder(start, *interval)
			continue
		}
		if len(snap.Lost) > 0 {
			slog.WarnContext(ctx, "degraded probing plane", "round", round,
				"lost", len(snap.Lost), "landmarks", len(urls),
				"lost_urls", strings.Join(snap.Lost, ","))
		}

		loadMs, err := timePageLoad(*serviceURL)
		if err != nil {
			slog.WarnContext(ctx, "QoE fetch failed", "err", err)
			span.SetError(err)
			span.End()
			sleepRemainder(start, *interval)
			continue
		}
		degraded := false
		if len(history) >= 5 {
			if med := median(history); loadMs > med**degradeRatio {
				degraded = true
			}
		}
		span.SetAttr("degraded", degraded)
		slog.InfoContext(ctx, "round complete", "round", round,
			"probed", len(snap.Regions), "landmarks", len(urls),
			"page_load_ms", loadMs, "degraded", degraded)

		if degraded {
			req := &analysis.DiagnoseRequest{
				ServiceID: *serviceID,
				Landmarks: snap.Regions,
				Features:  snap.Features,
				TopK:      5,
			}
			// Journal before uploading: the snapshot survives a crash (or
			// analysis outage) between here and the acknowledgement below.
			var seq uint64
			journaled := false
			if uploads != nil {
				if seq, err = uploads.append(req); err != nil {
					slog.WarnContext(ctx, "upload journal append failed", "err", err)
				} else {
					journaled = true
				}
			}
			resp, err := client.Diagnose(ctx, req)
			if err != nil {
				slog.ErrorContext(ctx, "diagnosis failed", "err", err,
					"journaled", journaled)
				span.SetError(err)
			} else {
				if journaled {
					if err := uploads.ack(seq); err != nil {
						slog.WarnContext(ctx, "upload journal ack failed", "err", err)
					}
				}
				slog.InfoContext(ctx, "diagnosis", "family", resp.Family)
				for i, c := range resp.Causes {
					slog.InfoContext(ctx, "cause", "rank", i+1, "name", c.Name,
						"family", c.Family, "score", c.Score)
				}
			}
		} else {
			history = append(history, loadMs)
			if len(history) > 96 {
				history = history[1:]
			}
		}
		span.End()
		sleepRemainder(start, *interval)
	}
}

// roundSnapshot is the surviving-subset view of one probing round.
type roundSnapshot struct {
	// Regions lists the region indices of the landmarks that answered,
	// in probing order — the Landmarks field of a DiagnoseRequest.
	Regions []int
	// Features is the feature vector under that (possibly reduced) layout.
	Features []float64
	// Lost names the landmark URLs that produced no measurement.
	Lost []string
}

// probeRound probes all landmarks and assembles the degraded-mode feature
// vector from whatever subset survived. It fails only when fewer than
// minLandmarks landmarks answered.
func probeRound(ctx context.Context, prober *landmark.MultiProber, urls []string, regions []int, minLandmarks int) (*roundSnapshot, error) {
	results, _ := prober.ProbeAll(ctx, urls)
	snap := &roundSnapshot{}
	var ms []landmark.Measurement
	for i, r := range results {
		if r.OK() {
			ms = append(ms, r.Measurement)
			snap.Regions = append(snap.Regions, regions[i])
		} else {
			snap.Lost = append(snap.Lost, urls[i])
		}
	}
	if len(ms) < minLandmarks {
		return nil, fmt.Errorf("only %d/%d landmarks answered (min %d); skipping round",
			len(ms), len(urls), minLandmarks)
	}
	snap.Features = landmark.Features(ms, nil, landmark.LocalMetrics{})
	return snap, nil
}

// serveMetrics exposes the telemetry snapshot and per-landmark health as
// one JSON document on GET /metrics.
func serveMetrics(addr string, prober *landmark.MultiProber) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Metrics   diagnet.MetricsSnapshot           `json:"metrics"`
			Landmarks map[string]diagnet.LandmarkHealth `json:"landmarks"`
		}{diagnet.Metrics(), prober.Health()})
	})
	slog.Info("metrics listening", "url", "http://"+addr+"/metrics")
	err := http.ListenAndServe(addr, mux)
	slog.Error("metrics listener exited", "err", err)
}

// timePageLoad fetches a URL and returns the wall-clock duration in ms.
func timePageLoad(url string) (float64, error) {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode >= 400 {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitNonEmpty(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func sleepRemainder(start time.Time, interval time.Duration) {
	if rest := interval - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
}
