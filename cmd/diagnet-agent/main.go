// Command diagnet-agent is the deployable client-side agent: it
// periodically probes live landmark servers (landmarkd instances), times a
// monitored service URL as its QoE signal, and submits the measurement
// snapshot to a diagnetd analysis service whenever the load time degrades
// against its own history.
//
// Usage:
//
//	diagnet-agent -landmarks http://lm1:8420,http://lm2:8420 \
//	              -landmark-regions 2,4 \
//	              -service-url https://example.org \
//	              -analysis http://diagnetd:8421 \
//	              [-service-id 0] [-interval 30s]
//
// -landmark-regions maps each probed landmark to its region index in the
// model's world, in the same order as -landmarks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/landmark"
)

func main() {
	landmarksFlag := flag.String("landmarks", "", "comma-separated landmark base URLs")
	regionsFlag := flag.String("landmark-regions", "", "comma-separated region indices, one per landmark")
	serviceURL := flag.String("service-url", "", "URL whose load time is the QoE signal")
	analysisURL := flag.String("analysis", "", "diagnetd base URL")
	serviceID := flag.Int("service-id", -1, "service ID for specialized-model routing")
	interval := flag.Duration("interval", 30*time.Second, "probing interval")
	degradeRatio := flag.Float64("degrade-ratio", 1.5, "QoE degradation threshold vs median load time")
	rounds := flag.Int("rounds", 0, "stop after N rounds (0 = run forever)")
	flag.Parse()

	urls := splitNonEmpty(*landmarksFlag)
	if len(urls) == 0 || *serviceURL == "" || *analysisURL == "" {
		log.Fatal("need -landmarks, -service-url and -analysis")
	}
	regions, err := parseInts(*regionsFlag)
	if err != nil || len(regions) != len(urls) {
		log.Fatalf("-landmark-regions must list one region index per landmark (%d given for %d landmarks)", len(regions), len(urls))
	}

	prober := diagnet.NewProber(diagnet.ProberConfig{})
	client := analysis.NewClient(*analysisURL)
	var history []float64

	for round := 0; *rounds == 0 || round < *rounds; round++ {
		start := time.Now()
		ms := make([]landmark.Measurement, 0, len(urls))
		failed := false
		for _, url := range urls {
			m, err := prober.Probe(context.Background(), url)
			if err != nil {
				log.Printf("probe %s: %v", url, err)
				failed = true
				break
			}
			ms = append(ms, m)
		}
		if failed {
			sleepRemainder(start, *interval)
			continue
		}

		loadMs, err := timePageLoad(*serviceURL)
		if err != nil {
			log.Printf("QoE fetch: %v", err)
			sleepRemainder(start, *interval)
			continue
		}
		degraded := false
		if len(history) >= 5 {
			if med := median(history); loadMs > med**degradeRatio {
				degraded = true
			}
		}
		log.Printf("round %d: %d landmarks probed, page load %.0f ms, degraded=%v", round, len(ms), loadMs, degraded)

		if degraded {
			features := landmark.Features(ms, nil, landmark.LocalMetrics{})
			resp, err := client.Diagnose(context.Background(), &analysis.DiagnoseRequest{
				ServiceID: *serviceID,
				Landmarks: regions,
				Features:  features,
				TopK:      5,
			})
			if err != nil {
				log.Printf("diagnosis failed: %v", err)
			} else {
				log.Printf("diagnosis: family=%s", resp.Family)
				for i, c := range resp.Causes {
					log.Printf("  %d. %s (%s) score %.3f", i+1, c.Name, c.Family, c.Score)
				}
			}
		} else {
			history = append(history, loadMs)
			if len(history) > 96 {
				history = history[1:]
			}
		}
		sleepRemainder(start, *interval)
	}
}

// timePageLoad fetches a URL and returns the wall-clock duration in ms.
func timePageLoad(url string) (float64, error) {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode >= 400 {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitNonEmpty(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func sleepRemainder(start time.Time, interval time.Duration) {
	if rest := interval - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
}
