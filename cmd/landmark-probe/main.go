// Command landmark-probe measures one or more landmark servers from this
// client and prints the per-landmark metric vector — the live counterpart
// of the simulator's probing plane. Landmarks are probed concurrently with
// per-landmark retries; unreachable ones are reported instead of aborting
// the run (partial telemetry is the normal case, not an error).
//
// Usage:
//
//	landmark-probe [-concurrency 4] [-round-timeout 60s] http://lm1:8420 http://lm2:8420 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"diagnet"
	"diagnet/internal/resilience"
)

func main() {
	pings := flag.Int("pings", 7, "RTT samples per landmark")
	downloadKB := flag.Int64("download-kb", 2048, "download payload size (KiB)")
	uploadKB := flag.Int64("upload-kb", 1024, "upload payload size (KiB)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-landmark timeout")
	concurrency := flag.Int("concurrency", 4, "landmarks probed in parallel")
	roundTimeout := flag.Duration("round-timeout", 60*time.Second, "deadline for the whole round")
	retries := flag.Int("retries", 2, "probe attempts per landmark")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: landmark-probe [flags] URL...")
		os.Exit(2)
	}
	prober := diagnet.NewMultiProber(diagnet.MultiProberConfig{
		Prober: diagnet.ProberConfig{
			Pings:         *pings,
			DownloadBytes: *downloadKB << 10,
			UploadBytes:   *uploadKB << 10,
			Timeout:       *timeout,
		},
		MaxConcurrent: *concurrency,
		RoundTimeout:  *roundTimeout,
		Retry:         resilience.RetryPolicy{MaxAttempts: *retries},
	})
	results, partial := prober.ProbeAll(context.Background(), flag.Args())

	fmt.Printf("%-32s %10s %10s %12s %12s %9s\n", "landmark", "rtt(ms)", "jitter(ms)", "down(Mbps)", "up(Mbps)", "attempts")
	failed := 0
	for _, r := range results {
		if !r.OK() {
			failed++
			fmt.Printf("%-32s FAILED: %v\n", r.URL, r.Err)
			continue
		}
		m := r.Measurement
		fmt.Printf("%-32s %10.2f %10.2f %12.1f %12.1f %9d\n", r.URL, m.RTTMs, m.JitterMs, m.DownMbps, m.UpMbps, r.Attempts)
	}
	if partial {
		fmt.Fprintf(os.Stderr, "partial round: %d/%d landmarks answered\n", len(results)-failed, len(results))
	}
	if failed == len(results) {
		os.Exit(1)
	}
}
