// Command landmark-probe measures one or more landmark servers from this
// client and prints the per-landmark metric vector — the live counterpart
// of the simulator's probing plane.
//
// Usage:
//
//	landmark-probe http://lm1:8420 http://lm2:8420 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"diagnet"
)

func main() {
	pings := flag.Int("pings", 7, "RTT samples per landmark")
	downloadKB := flag.Int64("download-kb", 2048, "download payload size (KiB)")
	uploadKB := flag.Int64("upload-kb", 1024, "upload payload size (KiB)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-landmark timeout")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: landmark-probe [flags] URL...")
		os.Exit(2)
	}
	prober := diagnet.NewProber(diagnet.ProberConfig{
		Pings:         *pings,
		DownloadBytes: *downloadKB << 10,
		UploadBytes:   *uploadKB << 10,
		Timeout:       *timeout,
	})
	fmt.Printf("%-32s %10s %10s %12s %12s\n", "landmark", "rtt(ms)", "jitter(ms)", "down(Mbps)", "up(Mbps)")
	for _, url := range flag.Args() {
		m, err := prober.Probe(context.Background(), url)
		if err != nil {
			log.Printf("%s: %v", url, err)
			continue
		}
		fmt.Printf("%-32s %10.2f %10.2f %12.1f %12.1f\n", url, m.RTTMs, m.JitterMs, m.DownMbps, m.UpMbps)
	}
}
