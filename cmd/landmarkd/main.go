// Command landmarkd runs a stateless landmark HTTP server (§III-A): the
// public measurement endpoint clients probe for RTT, throughput and
// statistics. Deploy one per vantage point.
//
// Usage:
//
//	landmarkd [-addr :8420]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"diagnet"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address")
	maxTransfers := flag.Int("max-transfers", 0, "cap concurrent downloads/uploads (0 = unlimited)")
	flag.Parse()

	lm := diagnet.LandmarkServer{MaxConcurrentTransfers: *maxTransfers}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           lm.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("landmark serving on %s (endpoints: /ping /download /upload /stats)", *addr)
	log.Fatal(srv.ListenAndServe())
}
