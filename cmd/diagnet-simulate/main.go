// Command diagnet-simulate plays what-if scenarios on the simulated
// deployment: inject faults, see which services' QoE degrades for which
// clients, what the ground-truth root cause is, and (with -model) what a
// trained model diagnoses.
//
// Usage:
//
//	diagnet-simulate -faults loss@GRAV,rate@SING [-client AMST] [-model model.gob]
//
// Fault kinds: rate, service-delay, gateway-delay, jitter, loss, cpu-stress.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"diagnet"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/qoe"
)

func main() {
	faultsFlag := flag.String("faults", "loss@GRAV", "comma-separated kind@REGION faults")
	clientFlag := flag.String("client", "AMST", "client region name")
	modelPath := flag.String("model", "", "optional trained model for diagnosis")
	tick := flag.Int64("tick", 42, "simulation tick (diurnal congestion phase)")
	flag.Parse()

	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	regions := diagnet.DefaultRegions()
	regionByName := map[string]int{}
	for i, r := range regions {
		regionByName[r.Name] = i
	}
	kindByName := map[string]diagnet.FaultKind{}
	for _, k := range netsim.AllFaultKinds() {
		kindByName[k.String()] = k
	}

	client, ok := regionByName[strings.ToUpper(*clientFlag)]
	if !ok {
		log.Fatalf("unknown client region %q", *clientFlag)
	}
	env := diagnet.Env{Tick: *tick}
	for _, spec := range strings.Split(*faultsFlag, ",") {
		parts := strings.SplitN(strings.TrimSpace(spec), "@", 2)
		if len(parts) != 2 {
			log.Fatalf("bad fault spec %q (want kind@REGION)", spec)
		}
		kind, ok := kindByName[parts[0]]
		if !ok {
			log.Fatalf("unknown fault kind %q", parts[0])
		}
		region, ok := regionByName[strings.ToUpper(parts[1])]
		if !ok {
			log.Fatalf("unknown region %q", parts[1])
		}
		env.Faults = append(env.Faults, diagnet.NewFault(kind, region))
	}

	fmt.Printf("scenario: tick %d, faults %v, client %s\n\n", *tick, env.Faults, regions[client].Name)

	// Ground truth per service.
	q := qoe.New(world)
	layout := diagnet.FullLayout()
	fmt.Printf("%-18s %10s %10s  %-10s %s\n", "service", "clean(ms)", "now(ms)", "degraded", "root cause")
	for _, svc := range diagnet.Catalog() {
		clean := q.Baseline(client, svc, *tick)
		now := q.LoadTime(client, svc, env, nil)
		idx, degraded := q.RootCause(client, svc, env)
		cause := "-"
		if degraded {
			f := env.Faults[idx]
			if c, ok := layout.CauseOf(f); ok {
				cause = layout.FeatureName(c)
			}
		}
		fmt.Printf("%-18s %10.0f %10.0f  %-10v %s\n", svc.Name(), clean, now, degraded, cause)
	}

	// Model diagnosis of the client's measurement snapshot.
	if *modelPath == "" {
		fmt.Println("\n(pass -model model.gob to also run a trained diagnosis)")
		return
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := diagnet.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	prober := probe.Prober{W: world}
	x := prober.Sample(client, layout, env, nil)
	diag := model.Diagnose(x, layout)
	fmt.Printf("\nmodel diagnosis (coarse family %v, w_unknown %.2f):\n", diag.Family, diag.UnknownWeight)
	for i, j := range diag.Ranked()[:5] {
		fmt.Printf("  %d. %-14s score %.3f\n", i+1, layout.FeatureName(j), diag.Final[j])
	}
}
