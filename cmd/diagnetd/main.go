// Command diagnetd serves the root-cause analysis service (Fig. 1): it
// loads one or more model versions trained by diagnet-train and answers
// diagnosis requests over HTTP through the batched serving engine.
//
// Usage:
//
//	diagnetd -model model.gob [-specialized 'model.svc0.gob,model.svc1.gob'] [-addr :8421]
//	         [-model-dir models/ [-serve-version v2]]
//	         [-state-dir state/ [-fsync always|batch|never] [-profile-on-breach 500]]
//	         [-continual [-retrain-interval 1h] [-shadow-fraction 0.05] [-promote-min-gain 0]]
//	         [-batch-max 32] [-batch-wait 2ms] [-queue-depth 256] [-workers 0]
//	         [-pprof 127.0.0.1:6060] [-log-format text|json]
//	         [-trace=true] [-trace-sample 1.0] [-trace-slow 250ms]
//
// API:
//
//	POST /v1/diagnose    {"service_id":0,"landmarks":[0,1,...],"features":[...]}
//	GET  /v1/continual   continual-learning loop status (404 unless -continual)
//	POST /v1/continual/retrain   trigger a retrain cycle now
//	POST /v1/continual/samples   ingest ground-truth labeled feedback
//	GET  /v1/model
//	GET  /v1/models      registered model versions and the active one
//	POST /v1/models      {"action":"load|promote|rollback", ...} rollout admin
//	GET  /v1/metrics     per-route latency percentiles + serving queue/batch/shed metrics (JSON; exposition via Accept)
//	GET  /metrics        the same metrics in Prometheus/OpenMetrics text for scrapers
//	GET  /v1/profiles    anomaly-captured CPU/heap profile ring (404 unless -profile-on-breach)
//	GET  /v1/traces      kept request traces (slow/error always, others head-sampled)
//	GET  /v1/traces/{id} one trace as a span tree
//	GET  /healthz        liveness (204 while the process runs)
//	GET  /readyz         readiness (503 until recovery completes; 503 while draining)
//
// Tracing: every /v1 request gets a trace (continued from an incoming W3C
// traceparent header when present) whose ID is echoed in X-Trace-Id;
// -trace-sample head-samples normal traffic while slow (> -trace-slow)
// and error traces are always kept. Logs carry trace_id/span_id when
// emitted under a request context, joining them to /v1/traces.
//
// Model lifecycle: with -model-dir, every *.gob in the directory is
// registered as a version named after its file, and the lexically last
// (or -serve-version) is promoted at boot — date-stamped file names
// therefore serve the newest model. Without -model-dir, the single
// -model/-bundle file becomes version "boot". New versions can be loaded
// and promoted at runtime via POST /v1/models; a promotion warms the
// model up off the serving path and then swaps it atomically under live
// traffic, and "rollback" returns to the previously active version.
//
// Crash safety: with -state-dir, every promotion, rollback and
// specialization is journaled (write-ahead, CRC-checked) before it is
// acknowledged, and a restarted diagnetd recovers the exact serving
// version and history — recovery runs before the listener opens, so the
// first request already sees the recovered version. -fsync picks the
// journal durability policy (always = every record, batch = bounded
// loss window, never = page cache only). SIGHUP forces an immediate
// checkpoint + journal segment rotation.
//
// Continual learning: -continual closes the loop described in DESIGN.md
// §15 — every served diagnosis is buffered as a pseudo-labeled training
// sample, drift signals (or -retrain-interval, or POST
// /v1/continual/retrain) trigger a background retrain warm-started from
// the active model, the candidate shadows -shadow-fraction of live
// traffic, and a gated promotion (-promote-min-gain on labeled holdout
// accuracy) hot-swaps it in under a regression watchdog that
// auto-rolls-back. With -state-dir, the sample buffer, trainer epoch
// checkpoints and the loop's transition history live under
// <state-dir>/continual and survive restarts.
//
// -pprof serves net/http/pprof on a separate listener (keep it on a
// loopback or otherwise private address; it is intentionally not exposed
// on the public API port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof only
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/continual"
	"diagnet/internal/durable"
	"diagnet/internal/obs"
	"diagnet/internal/serving"
	"diagnet/internal/telemetry"
	"diagnet/internal/tracing"
)

// fatal logs at error level and exits — slog has no Fatal.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8421", "listen address")
	modelPath := flag.String("model", "model.gob", "general model file")
	bundlePath := flag.String("bundle", "", "bundle file (general + specialized); overrides -model")
	specialized := flag.String("specialized", "", "comma-separated specialized model files")
	modelDir := flag.String("model-dir", "", "directory of *.gob model versions; overrides -model/-bundle and enables POST /v1/models load")
	serveVersion := flag.String("serve-version", "", "version to promote at boot (default: lexically last in -model-dir)")
	stateDir := flag.String("state-dir", "", "durable state directory: journal + checkpoints of the model lifecycle (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "always", "state journal durability: always, batch or never")
	batchMax := flag.Int("batch-max", 32, "micro-batch size cap for fused inference")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max wait to fill a micro-batch (adapts down under light load)")
	queueDepth := flag.Int("queue-depth", 256, "bounded admission queue; overflow is shed with 429")
	workers := flag.Int("workers", 0, "inference workers (0 = GOMAXPROCS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	traceOn := flag.Bool("trace", true, "record request traces (GET /v1/traces)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate for normal traces in [0,1]; slow and error traces are always kept")
	traceSlow := flag.Duration("trace-slow", 0, "latency above which a trace is always kept (0 = default 250ms)")
	profileOnBreach := flag.Float64("profile-on-breach", 0, "capture a CPU+heap profile pair when the windowed /v1/diagnose p99 exceeds this many ms; captures land under <state-dir>/profiles (0 = off)")
	continualOn := flag.Bool("continual", false, "close the learning loop: buffer live samples, retrain on drift, shadow-evaluate and gate-promote candidates")
	retrainInterval := flag.Duration("retrain-interval", 0, "also retrain on this timer (0 = drift and manual triggers only)")
	shadowFraction := flag.Float64("shadow-fraction", 0.05, "fraction of live traffic teed through a shadowing candidate")
	promoteMinGain := flag.Float64("promote-min-gain", 0, "required labeled-holdout accuracy gain (candidate − incumbent) before promotion; negative permits regressions")
	flag.Parse()

	slog.SetDefault(tracing.NewLogger(os.Stderr, *logFormat))
	rate := *traceSample
	if rate == 0 {
		rate = -1 // flag 0 means "sample nothing"; Config reads 0 as "use default"
	}
	tracing.Configure(tracing.Config{SampleRate: rate, SlowThreshold: *traceSlow})
	tracing.SetEnabled(*traceOn)

	engine := serving.New(serving.Config{
		BatchMax:   *batchMax,
		BatchWait:  *batchWait,
		QueueDepth: *queueDepth,
		Workers:    *workers,
	})
	reg := engine.Registry()

	boot := "boot"
	switch {
	case *modelDir != "":
		versions, err := reg.LoadDir(*modelDir)
		if err != nil {
			fatal("model dir load failed", "err", err)
		}
		if len(versions) == 0 {
			fatal("no *.gob model versions", "dir", *modelDir)
		}
		boot = versions[len(versions)-1]
		if *serveVersion != "" {
			boot = *serveVersion
		}
		slog.Info("registered model versions", "count", len(versions), "dir", *modelDir)
	case *bundlePath != "":
		if err := reg.LoadFile(boot, *bundlePath); err != nil {
			fatal("bundle load failed", "err", err)
		}
	default:
		if err := reg.LoadFile(boot, *modelPath); err != nil {
			fatal("model load failed", "err", err)
		}
	}
	// State recovery runs before the boot promotion and before the
	// listener opens: a restarted diagnetd serves the last acknowledged
	// version, not the default, and no request can observe the gap.
	var persist *serving.Persistence
	if *stateDir != "" {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal("bad -fsync", "err", err)
		}
		persist, err = serving.OpenPersistence(*stateDir, policy)
		if err != nil {
			fatal("state dir open failed", "dir", *stateDir, "err", err)
		}
		reg.AttachPersistence(persist)
		recovered, err := persist.Recover(reg)
		switch {
		case err != nil:
			// Recovery names a version we cannot serve (model file gone,
			// warm-up failure). Fall back to the default boot choice but
			// say so loudly — this is operator-visible state loss.
			slog.Error("state recovery failed; falling back to default boot version",
				"err", err, "fallback", boot)
		case recovered != "":
			boot = recovered
			slog.Info("recovered serving state", "version", recovered,
				"history_depth", len(reg.History()), "fsync", policy.String())
		}
	}
	if reg.Active() != boot {
		if err := reg.Promote(boot); err != nil {
			fatal("boot promotion failed", "err", err)
		}
	}
	if persist != nil {
		// Compact the replayed journal into a fresh checkpoint so the next
		// restart recovers from one snapshot instead of the whole history.
		if gen, err := persist.Checkpoint(); err != nil {
			slog.Warn("boot checkpoint failed", "err", err)
		} else {
			slog.Info("boot checkpoint written", "generation", gen)
		}
	}
	cfg := engine.Config()
	slog.Info("serving model version", "version", boot,
		"batch_max", cfg.BatchMax, "batch_wait", cfg.BatchWait,
		"queue_depth", cfg.QueueDepth, "workers", cfg.Workers)

	srv := analysis.NewServerFromEngine(engine)
	srv.ModelDir = *modelDir
	if *specialized != "" {
		for _, path := range strings.Split(*specialized, ",") {
			m, err := loadModel(strings.TrimSpace(path))
			if err != nil {
				fatal("specialized model load failed", "path", path, "err", err)
			}
			if m.ServiceID < 0 {
				fatal("not a specialized model", "path", path)
			}
			if err := srv.SetSpecialized(m.ServiceID, m); err != nil {
				fatal("specialized model registration failed", "path", path, "err", err)
			}
			slog.Info("loaded specialized model", "service", m.ServiceID, "path", path)
		}
	}

	// Anomaly-triggered profiling (DESIGN.md §16): a windowed p99 breach
	// over the local /v1/diagnose latency histogram captures a bounded
	// CPU+heap pprof pair into the on-disk ring under <state-dir>/profiles,
	// listed and downloadable at GET /v1/profiles.
	var stopBreachWatch func()
	if *profileOnBreach > 0 {
		if *stateDir == "" {
			slog.Warn("-profile-on-breach needs -state-dir for the capture ring; profiling disabled")
		} else {
			profDir := filepath.Join(*stateDir, "profiles")
			prof, err := obs.OpenProfiler(obs.ProfilerConfig{Dir: profDir})
			if err != nil {
				fatal("profile ring open failed", "err", err)
			}
			srv.AttachProfiler(prof)
			stopBreachWatch = watchLatencyBreach(prof, *profileOnBreach)
			slog.Info("anomaly profiling enabled", "p99_bound_ms", *profileOnBreach, "dir", profDir)
		}
	}

	// Continual learning: sample buffer → trainer → shadow gate →
	// promotion, all state under <state-dir>/continual when one is set
	// (memory-only otherwise — useful for ephemeral replicas, but a
	// restart forgets the buffer and the cycle history).
	var ctrl *continual.Controller
	var sampleStore *continual.SampleStore
	if *continualOn {
		policy := durable.FsyncBatch
		var sampleDir, ckptDir, loopDir string
		if *stateDir != "" {
			p, err := durable.ParseFsyncPolicy(*fsyncMode)
			if err != nil {
				fatal("bad -fsync", "err", err)
			}
			policy = p
			base := filepath.Join(*stateDir, "continual")
			sampleDir = filepath.Join(base, "samples")
			ckptDir = filepath.Join(base, "ckpt")
			loopDir = filepath.Join(base, "state")
		}
		var err error
		sampleStore, err = continual.OpenStore(continual.StoreConfig{Dir: sampleDir, Fsync: policy})
		if err != nil {
			fatal("continual sample store open failed", "err", err)
		}
		// The trainer reads serving pressure from the admission queue and
		// pauses between epochs while the plane is overloaded: retraining
		// must never cost live traffic its latency budget.
		depth := engine.Config().QueueDepth
		trainer, err := continual.NewTrainer(continual.TrainerConfig{
			CheckpointDir: ckptDir,
			Load: func() float64 {
				if depth <= 0 {
					return 0
				}
				return float64(engine.Stats().QueueDepth) / float64(depth)
			},
			Logf: func(format string, args ...any) { slog.Info(fmt.Sprintf(format, args...)) },
		})
		if err != nil {
			fatal("continual trainer init failed", "err", err)
		}
		ctrl, err = continual.NewController(continual.Config{
			Engine:          engine,
			Store:           sampleStore,
			Trainer:         trainer,
			Gate:            continual.GateConfig{MinGain: *promoteMinGain},
			ShadowFraction:  *shadowFraction,
			RetrainInterval: *retrainInterval,
			DriftStatus:     srv.DriftStatus,
			ResetDrift:      srv.ResetDrift,
			StateDir:        loopDir,
			Fsync:           policy,
		})
		if err != nil {
			fatal("continual controller init failed", "err", err)
		}
		// Freeze the drift reference once a full window of boot-model
		// diagnoses accumulates; its Drifted signal is the loop's trigger.
		srv.ResetDrift()
		ctrl.Start()
		srv.AttachContinual(ctrl)
		slog.Info("continual learning enabled",
			"retrain_interval", *retrainInterval, "shadow_fraction", *shadowFraction,
			"promote_min_gain", *promoteMinGain, "state", loopDir != "")
	}

	if *pprofAddr != "" {
		go func() {
			slog.Info("pprof listening", "url", "http://"+*pprofAddr+"/debug/pprof/")
			err := http.ListenAndServe(*pprofAddr, nil) // DefaultServeMux carries net/http/pprof
			slog.Error("pprof listener exited", "err", err)
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGHUP forces an immediate checkpoint + journal segment rotation —
	// the operator's "make the state compact and durable now" hook before
	// a planned restart. The span gives the log lines trace correlation.
	if persist != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				ctx, span := tracing.StartSpan(context.Background(), "state.checkpoint")
				span.SetAttr("reason", "SIGHUP")
				gen, err := persist.Checkpoint()
				if err != nil {
					span.SetError(err)
					slog.ErrorContext(ctx, "SIGHUP checkpoint failed", "err", err)
				} else {
					active, history := persist.State()
					slog.InfoContext(ctx, "SIGHUP checkpoint written",
						"generation", gen, "active", active, "history_depth", len(history))
				}
				span.End()
			}
		}()
	}

	// Recovery (if any) and the boot promotion are done: open the gate.
	srv.SetReady(true)

	// Serve until SIGINT/SIGTERM, then drain: stop accepting HTTP first,
	// then drain the serving engine so queued and in-flight diagnoses
	// finish (clients retry transient failures, but a clean drain avoids
	// failing them at all).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		slog.Info("analysis service listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		fatal("http server failed", "err", err)
	case <-ctx.Done():
		slog.Info("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			slog.Warn("forced shutdown", "err", err)
		}
		if stopBreachWatch != nil {
			stopBreachWatch()
		}
		if ctrl != nil {
			// Stop the loop before the engine drain: an in-flight retrain is
			// canceled (its epoch checkpoint resumes it next boot) and no new
			// shadow tee can start against a draining engine.
			if err := ctrl.Close(); err != nil {
				slog.Warn("continual controller close", "err", err)
			}
		}
		if err := srv.Close(); err != nil {
			slog.Warn("engine drain", "err", err)
		}
		if sampleStore != nil {
			if err := sampleStore.Close(); err != nil {
				slog.Warn("continual sample store close", "err", err)
			}
		}
		if persist != nil {
			if err := persist.Close(); err != nil {
				slog.Warn("state journal close", "err", err)
			}
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("http server failed", "err", err)
		}
	}
}

// watchLatencyBreach polls the process-local diagnose latency histogram
// and triggers a profile capture when the p99 of the observations made
// since the previous poll (the windowed distribution, not the lifetime
// one) exceeds boundMs. A minimum window population keeps a handful of
// slow requests after boot from reading as an incident. The returned
// func stops the watcher.
func watchLatencyBreach(p *obs.Profiler, boundMs float64) func() {
	stop := make(chan struct{})
	go func() {
		const minCount = 20
		var prev *telemetry.HistogramPoint
		t := time.NewTicker(15 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ex := telemetry.Default().Export()
				cur, ok := ex.Histogram("http.diagnose.latency_ms")
				if !ok {
					continue
				}
				window, ok := obs.SubtractHistogram(cur, prev)
				prev = cur
				if !ok || window.Count() < minCount {
					continue
				}
				if p99 := window.Quantile(0.99); p99 > boundMs {
					slog.Warn("local p99 breach; capturing profiles", "p99_ms", p99, "bound_ms", boundMs)
					p.Trigger("local-p99-breach")
				}
			}
		}
	}()
	return func() { close(stop) }
}

func loadModel(path string) (*diagnet.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return diagnet.Load(f)
}
