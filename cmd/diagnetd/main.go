// Command diagnetd serves the root-cause analysis service (Fig. 1): it
// loads a general model (plus optional per-service specialized models)
// trained by diagnet-train and answers diagnosis requests over HTTP.
//
// Usage:
//
//	diagnetd -model model.gob [-specialized 'model.svc0.gob,model.svc1.gob'] [-addr :8421]
//	         [-pprof 127.0.0.1:6060]
//
// API:
//
//	POST /v1/diagnose  {"service_id":0,"landmarks":[0,1,...],"features":[...]}
//	GET  /v1/model
//	GET  /v1/metrics   per-route latency percentiles + per-stage Diagnose timings
//	GET  /healthz
//
// -pprof serves net/http/pprof on a separate listener (keep it on a
// loopback or otherwise private address; it is intentionally not exposed
// on the public API port).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
)

func main() {
	addr := flag.String("addr", ":8421", "listen address")
	modelPath := flag.String("model", "model.gob", "general model file")
	bundlePath := flag.String("bundle", "", "bundle file (general + specialized); overrides -model")
	specialized := flag.String("specialized", "", "comma-separated specialized model files")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	var srv *analysis.Server
	if *bundlePath != "" {
		f, err := os.Open(*bundlePath)
		if err != nil {
			log.Fatal(err)
		}
		b, err := diagnet.LoadBundle(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		srv = analysis.NewServer(b.General)
		for id, m := range b.Specialized {
			srv.SetSpecialized(id, m)
		}
		log.Printf("loaded bundle with %d specialized models", len(b.Specialized))
	} else {
		general, err := loadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		srv = analysis.NewServer(general)
	}
	if *specialized != "" {
		for _, path := range strings.Split(*specialized, ",") {
			m, err := loadModel(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			if m.ServiceID < 0 {
				log.Fatalf("%s is not a specialized model", path)
			}
			srv.SetSpecialized(m.ServiceID, m)
			log.Printf("loaded specialized model for service %d from %s", m.ServiceID, path)
		}
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Print(http.ListenAndServe(*pprofAddr, nil)) // DefaultServeMux carries net/http/pprof
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight diagnoses before
	// exiting (clients retry transient failures, but a clean drain avoids
	// failing them at all).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("analysis service on %s (POST /v1/diagnose)", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		log.Print("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

func loadModel(path string) (*diagnet.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return diagnet.Load(f)
}
