// Command diagnetd serves the root-cause analysis service (Fig. 1): it
// loads one or more model versions trained by diagnet-train and answers
// diagnosis requests over HTTP through the batched serving engine.
//
// Usage:
//
//	diagnetd -model model.gob [-specialized 'model.svc0.gob,model.svc1.gob'] [-addr :8421]
//	         [-model-dir models/ [-serve-version v2]]
//	         [-batch-max 32] [-batch-wait 2ms] [-queue-depth 256] [-workers 0]
//	         [-pprof 127.0.0.1:6060]
//
// API:
//
//	POST /v1/diagnose  {"service_id":0,"landmarks":[0,1,...],"features":[...]}
//	GET  /v1/model
//	GET  /v1/models    registered model versions and the active one
//	POST /v1/models    {"action":"load|promote|rollback", ...} rollout admin
//	GET  /v1/metrics   per-route latency percentiles + serving queue/batch/shed metrics
//	GET  /healthz
//
// Model lifecycle: with -model-dir, every *.gob in the directory is
// registered as a version named after its file, and the lexically last
// (or -serve-version) is promoted at boot — date-stamped file names
// therefore serve the newest model. Without -model-dir, the single
// -model/-bundle file becomes version "boot". New versions can be loaded
// and promoted at runtime via POST /v1/models; a promotion warms the
// model up off the serving path and then swaps it atomically under live
// traffic, and "rollback" returns to the previously active version.
//
// -pprof serves net/http/pprof on a separate listener (keep it on a
// loopback or otherwise private address; it is intentionally not exposed
// on the public API port).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served by -pprof only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/serving"
)

func main() {
	addr := flag.String("addr", ":8421", "listen address")
	modelPath := flag.String("model", "model.gob", "general model file")
	bundlePath := flag.String("bundle", "", "bundle file (general + specialized); overrides -model")
	specialized := flag.String("specialized", "", "comma-separated specialized model files")
	modelDir := flag.String("model-dir", "", "directory of *.gob model versions; overrides -model/-bundle and enables POST /v1/models load")
	serveVersion := flag.String("serve-version", "", "version to promote at boot (default: lexically last in -model-dir)")
	batchMax := flag.Int("batch-max", 32, "micro-batch size cap for fused inference")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max wait to fill a micro-batch (adapts down under light load)")
	queueDepth := flag.Int("queue-depth", 256, "bounded admission queue; overflow is shed with 429")
	workers := flag.Int("workers", 0, "inference workers (0 = GOMAXPROCS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	engine := serving.New(serving.Config{
		BatchMax:   *batchMax,
		BatchWait:  *batchWait,
		QueueDepth: *queueDepth,
		Workers:    *workers,
	})
	reg := engine.Registry()

	boot := "boot"
	switch {
	case *modelDir != "":
		versions, err := reg.LoadDir(*modelDir)
		if err != nil {
			log.Fatal(err)
		}
		if len(versions) == 0 {
			log.Fatalf("no *.gob model versions in %s", *modelDir)
		}
		boot = versions[len(versions)-1]
		if *serveVersion != "" {
			boot = *serveVersion
		}
		log.Printf("registered %d model versions from %s", len(versions), *modelDir)
	case *bundlePath != "":
		if err := reg.LoadFile(boot, *bundlePath); err != nil {
			log.Fatal(err)
		}
	default:
		if err := reg.LoadFile(boot, *modelPath); err != nil {
			log.Fatal(err)
		}
	}
	if err := reg.Promote(boot); err != nil {
		log.Fatal(err)
	}
	cfg := engine.Config()
	log.Printf("serving model version %q (batch-max %d, batch-wait %s, queue %d, workers %d)",
		boot, cfg.BatchMax, cfg.BatchWait, cfg.QueueDepth, cfg.Workers)

	srv := analysis.NewServerFromEngine(engine)
	srv.ModelDir = *modelDir
	if *specialized != "" {
		for _, path := range strings.Split(*specialized, ",") {
			m, err := loadModel(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			if m.ServiceID < 0 {
				log.Fatalf("%s is not a specialized model", path)
			}
			if err := srv.SetSpecialized(m.ServiceID, m); err != nil {
				log.Fatal(err)
			}
			log.Printf("loaded specialized model for service %d from %s", m.ServiceID, path)
		}
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Print(http.ListenAndServe(*pprofAddr, nil)) // DefaultServeMux carries net/http/pprof
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting HTTP first,
	// then drain the serving engine so queued and in-flight diagnoses
	// finish (clients retry transient failures, but a clean drain avoids
	// failing them at all).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("analysis service on %s (POST /v1/diagnose)", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		log.Print("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Printf("engine drain: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

func loadModel(path string) (*diagnet.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return diagnet.Load(f)
}
