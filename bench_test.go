package diagnet

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"diagnet/internal/dataset"
	"diagnet/internal/experiments"
	"diagnet/internal/landmark"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
)

// The benchmark suite regenerates every evaluation artifact of the paper
// (one benchmark per table/figure, DESIGN.md §5) on the quick profile,
// plus micro-benchmarks for the pipeline's hot paths. Expensive fixtures
// (trained lab, dataset) are built once and shared.

var (
	labOnce  sync.Once
	benchLab *experiments.Lab
)

func sharedLab() *experiments.Lab {
	labOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Quick(), nil)
	})
	return benchLab
}

var (
	dataOnce  sync.Once
	benchData *dataset.Dataset
)

func sharedData() *dataset.Dataset {
	dataOnce.Do(func() {
		world := NewWorld(WorldConfig{Seed: 1})
		benchData = Generate(GenConfig{
			World:          world,
			NominalSamples: 600,
			FaultSamples:   1400,
			Seed:           11,
		})
	})
	return benchData
}

// BenchmarkTableI_TrainGeneral measures general-model training — the
// "32 s on a commodity laptop" cost of §IV-F (Table I architecture scaled
// to the quick profile).
func BenchmarkTableI_TrainGeneral(b *testing.B) {
	data := sharedData()
	train, _ := data.Split(0.8, HiddenLandmarks(), 13)
	cfg := experiments.Quick().Config
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainGeneral(train, KnownRegions(), cfg)
	}
}

// BenchmarkTableI_Specialize measures per-service fine-tuning — the "4 s
// per service model" cost of §IV-F.
func BenchmarkTableI_Specialize(b *testing.B) {
	l := sharedLab()
	train := l.Train
	svc := train.Samples[0].Service
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.General.Model.Specialize(train, svc)
	}
}

// BenchmarkInference_Diagnose measures one full diagnosis (coarse forward,
// attention backward, Algorithm 1, ensemble) — the paper reports 45 ms.
func BenchmarkInference_Diagnose(b *testing.B) {
	l := sharedLab()
	deg := l.Test.Degraded()
	s := &deg.Samples[0]
	m := l.ModelFor(s.Service)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Diagnose(s.Features, l.Full)
	}
}

// BenchmarkInference_Coarse measures step ④ alone.
func BenchmarkInference_Coarse(b *testing.B) {
	l := sharedLab()
	deg := l.Test.Degraded()
	s := &deg.Samples[0]
	m := l.ModelFor(s.Service)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CoarsePredict(s.Features, l.Full)
	}
}

// BenchmarkBaseline_RandomForest measures the extensible forest's scoring.
func BenchmarkBaseline_RandomForest(b *testing.B) {
	l := sharedLab()
	deg := l.Test.Degraded()
	s := &deg.Samples[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.General.Model.Aux.Scores(s.Features)
	}
}

// BenchmarkBaseline_NaiveBayes measures the KDE Naive Bayes scoring.
func BenchmarkBaseline_NaiveBayes(b *testing.B) {
	l := sharedLab()
	deg := l.Test.Degraded()
	s := &deg.Samples[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.NB.Scores(s.Features)
	}
}

// BenchmarkDatasetGenerate measures the parallel scenario generator
// (§IV-A-e workload).
func BenchmarkDatasetGenerate(b *testing.B) {
	world := NewWorld(WorldConfig{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(GenConfig{World: world, NominalSamples: 200, FaultSamples: 400, Seed: int64(i)})
	}
}

// BenchmarkFig5_RecallCurves regenerates Fig. 5 (Recall@k, three models,
// new vs known landmarks).
func BenchmarkFig5_RecallCurves(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig5()
	}
}

// BenchmarkFig6_PerFamilyAndRegion regenerates Fig. 6.
func BenchmarkFig6_PerFamilyAndRegion(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig6()
	}
}

// BenchmarkFig7_CoarseClassifier regenerates Fig. 7.
func BenchmarkFig7_CoarseClassifier(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig7()
	}
}

// BenchmarkFig8_ClientDiversity regenerates Fig. 8 (retrains a pipeline
// per diversity level — the heaviest experiment).
func BenchmarkFig8_ClientDiversity(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig8()
	}
}

// BenchmarkFig9_TrainingCost regenerates Fig. 9 / §IV-F cost analysis.
func BenchmarkFig9_TrainingCost(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig9()
	}
}

// BenchmarkFig10_SimultaneousFaults regenerates Fig. 10.
func BenchmarkFig10_SimultaneousFaults(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fig10()
	}
}

// BenchmarkAblation quantifies each pipeline stage's contribution.
func BenchmarkAblation(b *testing.B) {
	l := sharedLab()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Ablation()
	}
}

// BenchmarkLandmarkProbe measures a full live probe (ping, download,
// upload, stats) against an in-process landmark over loopback.
func BenchmarkLandmarkProbe(b *testing.B) {
	var lm landmark.Server
	ts := httptest.NewServer(lm.Handler())
	defer ts.Close()
	p := landmark.NewProber(landmark.ProberConfig{Pings: 3, DownloadBytes: 64 << 10, UploadBytes: 64 << 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Probe(context.Background(), ts.URL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorProbe measures one simulated full-layout probe (all
// ten landmarks plus local features).
func BenchmarkSimulatorProbe(b *testing.B) {
	l := sharedLab()
	prober := probe.Prober{W: l.World}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prober.Sample(netsim.AMST, l.Full, netsim.Env{Tick: int64(i)}, nil)
	}
}
