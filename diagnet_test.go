package diagnet

import (
	"bytes"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	world := NewWorld(WorldConfig{Seed: 1})
	data := Generate(GenConfig{
		World:          world,
		NominalSamples: 300,
		FaultSamples:   700,
		Seed:           3,
	})
	train, test := data.Split(0.8, HiddenLandmarks(), 5)
	cfg := DefaultConfig()
	cfg.Filters = 6
	cfg.Hidden = []int{24, 12}
	cfg.Epochs = 6
	cfg.Forest.Trees = 10
	res := TrainGeneral(train, KnownRegions(), cfg)

	layout := FullLayout()
	deg := test.Degraded()
	if deg.Len() == 0 {
		t.Fatal("no degraded test samples")
	}
	diag := res.Model.Diagnose(deg.Samples[0].Features, layout)
	if len(diag.Final) != layout.NumFeatures() {
		t.Fatalf("diagnosis over %d features", len(diag.Final))
	}

	// Save/Load through the facade.
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	diag2 := loaded.Diagnose(deg.Samples[0].Features, layout)
	if diag2.Ranked()[0] != diag.Ranked()[0] {
		t.Fatal("loaded model ranks differently")
	}
}

func TestFacadeConstantsAndCatalog(t *testing.T) {
	if len(DefaultRegions()) != 10 {
		t.Fatal("regions")
	}
	if len(HiddenLandmarks()) != 3 || len(KnownRegions()) != 7 {
		t.Fatal("hidden/known split")
	}
	if len(Catalog()) != 12 || len(TrainingServices()) != 8 {
		t.Fatal("catalog")
	}
	if FullLayout().NumFeatures() != 55 {
		t.Fatal("m != 55")
	}
	f := NewFault(FaultLoss, 3)
	if f.Magnitude != 1 {
		t.Fatal("fault magnitude")
	}
	if QuickProfile().Name != "quick" || DefaultProfile().Name != "default" || PaperProfile().Name != "paper" {
		t.Fatal("profiles")
	}
}

func TestFacadeAgentAndTrace(t *testing.T) {
	// Record a short simulated session through the facade, replay it into
	// an agent, and check the degradation surfaces.
	world := NewWorld(WorldConfig{Seed: 3})
	layout := FullLayout()
	svc := Catalog()[3] // image.local@GRAV
	src := NewSimSource(world, 4 /* AMST */, svc, layout, func(tick int64) []Fault {
		if tick >= 20 {
			return []Fault{NewFault(FaultLoss, 3 /* GRAV */)}
		}
		return nil
	}, 9)
	ticks := make([]int64, 40)
	for i := range ticks {
		ticks[i] = int64(i)
	}
	tr := RecordTrace(src, layout, ticks)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(loaded.Replay(), layout.NumFeatures(), AgentConfig{Warmup: 5})
	events := 0
	for _, tick := range ticks {
		if _, degraded := agent.Step(tick); degraded {
			events++
		}
	}
	if events == 0 {
		t.Fatal("no degradations through the facade pipeline")
	}
}

func TestFacadeBundle(t *testing.T) {
	world := NewWorld(WorldConfig{Seed: 1})
	data := Generate(GenConfig{World: world, NominalSamples: 200, FaultSamples: 500, Seed: 3})
	train, _ := data.Split(0.8, HiddenLandmarks(), 5)
	cfg := DefaultConfig()
	cfg.Filters = 6
	cfg.Hidden = []int{24, 12}
	cfg.Epochs = 4
	cfg.Forest.Trees = 5
	res := TrainGeneral(train, KnownRegions(), cfg)
	b := NewBundle(res.Model)
	b.SpecializeAll(train, []int{train.Samples[0].Service})
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	world := NewWorld(WorldConfig{Seed: 2})
	data := Generate(GenConfig{World: world, NominalSamples: 50, FaultSamples: 100, Seed: 4})
	var buf bytes.Buffer
	if err := data.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != data.Len() {
		t.Fatal("round trip")
	}
}
