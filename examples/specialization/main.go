// Specialization: derive per-service models from a general one by
// freezing the convolution and retraining only the final layers (§IV-F).
// Specialized models converge in a few epochs and sharpen diagnoses for
// their service.
//
//	go run ./examples/specialization
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"diagnet"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 800
	faultSamples   = 1800
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 10
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)

	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	general := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)
	total, _ := general.Model.ParamCount()
	fmt.Fprintf(out, "general model: %d parameters, %d epochs\n", total, general.History.Epochs())

	// Specialize for every service that has training data.
	fmt.Fprintln(out, "\nper-service specialization (frozen convolution):")
	specialized := map[int]*diagnet.Model{}
	for _, svc := range diagnet.Catalog() {
		if train.FilterService(svc.ID).Len() == 0 {
			continue
		}
		res := general.Model.Specialize(train, svc.ID)
		specialized[svc.ID] = res.Model
		_, trainable := res.Model.ParamCount()
		fmt.Fprintf(out, "  %-16s %d trainable of %d params, %d epochs\n",
			svc.Name(), trainable, total, res.History.Epochs())
	}

	// Compare general vs specialized top-1 hit rate on degraded samples.
	layout := diagnet.FullLayout()
	deg := test.Degraded()
	var hitG, hitS, n int
	for i := range deg.Samples {
		s := &deg.Samples[i]
		spec, ok := specialized[s.Service]
		if !ok {
			continue
		}
		n++
		if general.Model.Diagnose(s.Features, layout).Ranked()[0] == s.Cause {
			hitG++
		}
		if spec.Diagnose(s.Features, layout).Ranked()[0] == s.Cause {
			hitS++
		}
	}
	if n == 0 {
		return fmt.Errorf("no degraded test samples for any specialized service")
	}
	fmt.Fprintf(out, "\nRecall@1 on %d degraded test samples: general %.1f%%, specialized %.1f%%\n",
		n, 100*float64(hitG)/float64(n), 100*float64(hitS)/float64(n))
	return nil
}
