package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke trains a tiny general model, specializes it per service,
// and checks the Recall@1 comparison is reported.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"general model:", "per-service specialization", "Recall@1 on"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
