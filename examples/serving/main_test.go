package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the serving example end to end on a shrunk
// configuration: train, promote, hot-swap under load, roll back.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2
	clients, perClient = 8, 5

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serving version \"v1\"", "hot swap under load: 0 failed", "rolled back to \"v1\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
