// Serving: run the inference serving engine — concurrent diagnoses are
// coalesced into fused micro-batches, a second model version is hot-swapped
// in under load, and the rollout is rolled back, all without dropping a
// request.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"diagnet"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 600
	faultSamples   = 1400
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 8
	clients        = 16
	perClient      = 20
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// 1. Train two model versions: "v1" fresh off TrainGeneral, and "v2"
	// the same network specialized to the service we are diagnosing — the
	// lifecycle of a §VI drift-triggered retrain.
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	model := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg).Model
	fmt.Fprintf(out, "trained general model (%d features)\n", train.Layout.NumFeatures())

	deg := test.Degraded()
	if deg.Len() == 0 {
		return fmt.Errorf("no degraded samples")
	}
	sample := &deg.Samples[0]

	// 2. Start the engine and promote v1. Workers, batching and admission
	// are all defaulted; production knobs are diagnetd's -batch-max,
	// -batch-wait, -queue-depth and -workers flags.
	engine := diagnet.NewServingEngine(diagnet.ServingConfig{BatchMax: 16, BatchWait: time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		engine.Close(ctx)
	}()
	reg := engine.Registry()
	if err := reg.AddModel("v1", model); err != nil {
		return err
	}
	if err := reg.Promote("v1"); err != nil {
		return err
	}
	fmt.Fprintf(out, "serving version %q\n", reg.Active())

	// 3. Hammer the engine from concurrent clients while version v2 (same
	// weights plus a specialized model for the probed service) is promoted
	// mid-stream. Every result names the exact version that produced it.
	if err := reg.AddModel("v2", model); err != nil {
		return err
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		byVer  = map[string]int{}
		failed int
	)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := engine.SubmitWait(context.Background(), &diagnet.ServingRequest{
					ServiceID: sample.Service,
					Layout:    test.Layout,
					Features:  sample.Features,
				})
				mu.Lock()
				if err != nil {
					failed++
				} else {
					byVer[res.Version]++
				}
				mu.Unlock()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let some v1 traffic through first
	if err := reg.Promote("v2"); err != nil {
		return err
	}
	if err := reg.SetSpecialized(sample.Service, model); err != nil {
		return err
	}
	wg.Wait()
	fmt.Fprintf(out, "hot swap under load: %d failed, served by version: %v\n", failed, byVer)

	// 4. Roll back: v1 serves again, with zero downtime.
	prev, err := reg.Rollback()
	if err != nil {
		return err
	}
	res, err := engine.SubmitWait(context.Background(), &diagnet.ServingRequest{
		ServiceID: sample.Service,
		Layout:    test.Layout,
		Features:  sample.Features,
	})
	if err != nil {
		return err
	}
	top := test.Layout.FeatureName(res.Diagnosis.Ranked()[0])
	fmt.Fprintf(out, "rolled back to %q; top cause now: %s\n", prev, top)
	fmt.Fprintf(out, "engine stats: %+v\n", engine.Stats())
	return nil
}
