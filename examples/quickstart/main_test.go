package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke compiles and runs the example end to end on a shrunk
// configuration: it must finish without error and print a diagnosis.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dataset:", "coarse prediction:", "top 5 predicted root causes:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
