// Quickstart: simulate the paper's deployment, train a DiagNet model and
// diagnose a degraded sample.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"diagnet"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 800
	faultSamples   = 1800
	filters        = 12
	hidden         = []int{96, 48}
	epochs         = 14
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// 1. Build the simulated ten-region multi-cloud world and generate a
	// labeled dataset (clients probing landmarks while faults are
	// injected; QoE decides which samples are degraded).
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	counts := data.Count(diagnet.HiddenLandmarks())
	fmt.Fprintf(out, "dataset: %d samples (%d nominal, %d degraded)\n",
		counts.Total, counts.Nominal, counts.Degraded)

	// 2. Split with the paper's policy: faults near the hidden landmarks
	// (EAST, GRAV, SEAT) appear only in the test set.
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)

	// 3. Train a general model on the seven known landmarks. A smaller
	// architecture than Table I keeps this example fast.
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	res := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)
	fmt.Fprintf(out, "trained general model in %d epochs\n", res.History.Epochs())

	// 4. Diagnose the first degraded test sample using all ten landmarks —
	// including the three the model never saw during training.
	layout := diagnet.FullLayout()
	deg := test.Degraded()
	if deg.Len() == 0 {
		return fmt.Errorf("no degraded samples in the test split")
	}
	s := &deg.Samples[0]
	diag := res.Model.Diagnose(s.Features, layout)

	fmt.Fprintf(out, "\ncoarse prediction: %v\n", diag.Family)
	fmt.Fprintf(out, "true root cause:   %s\n", layout.FeatureName(s.Cause))
	fmt.Fprintln(out, "top 5 predicted root causes:")
	for i, j := range diag.Ranked()[:5] {
		marker := " "
		if j == s.Cause {
			marker = "←"
		}
		fmt.Fprintf(out, "  %d. %-14s score %.3f %s\n", i+1, layout.FeatureName(j), diag.Final[j], marker)
	}
	return nil
}
