// Agent: the full Fig. 1 loop in one process — a trained model served by
// the central analysis service over HTTP, and a client-side collector
// agent that probes periodically, detects a QoE degradation, and submits
// its measurement snapshot for diagnosis.
//
//	go run ./examples/agent
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/collector"
	"diagnet/internal/netsim"
	"diagnet/internal/services"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 800
	faultSamples   = 1800
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 10
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// Train a small general model on the simulated deployment.
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World: world, NominalSamples: nominalSamples, FaultSamples: faultSamples, Seed: 11,
	})
	train, _ := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	res := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)

	// Serve it as the central analysis service.
	srv := analysis.NewServer(res.Model)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := analysis.NewClient(ts.URL)
	fmt.Fprintln(out, "analysis service on", ts.URL)

	// A client in AMST watches image.local@GRAV. A loss fault hits GRAV
	// from tick 60 on.
	layout := diagnet.FullLayout()
	svc := services.Service{ID: 0, Kind: services.ImageLocal, Host: netsim.GRAV}
	source := collector.NewSimSource(world, netsim.AMST, svc, layout, func(tick int64) []netsim.Fault {
		if tick >= 60 {
			return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
		}
		return nil
	}, 5)
	agent := collector.NewAgent(source, layout.NumFeatures(), collector.Config{Warmup: 12, ZThreshold: 4})

	// Probe 70 rounds; report the first degradation to the service.
	for tick := int64(0); tick < 70; tick++ {
		ev, degraded := agent.Step(tick)
		if !degraded {
			continue
		}
		fmt.Fprintf(out, "\ntick %d: QoE degraded — local pre-filter flags:", ev.Tick)
		for _, j := range ev.Anomalies {
			fmt.Fprintf(out, " %s", layout.FeatureName(j))
		}
		fmt.Fprintln(out)
		resp, err := client.Diagnose(context.Background(), &analysis.DiagnoseRequest{
			ServiceID: svc.ID,
			Landmarks: layout.Landmarks,
			Features:  ev.Features,
			TopK:      3,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "analysis service says: family=%s (w_unknown=%.2f)\n", resp.Family, resp.UnknownWeight)
		for i, c := range resp.Causes {
			fmt.Fprintf(out, "  %d. %-14s (%s) score %.3f\n", i+1, c.Name, c.Family, c.Score)
		}
		break
	}
	return nil
}
