package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the full Fig. 1 loop (train → serve → probe →
// diagnose) on a shrunk configuration and checks the agent actually
// reported a degradation to the analysis service.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"analysis service on", "QoE degraded", "analysis service says: family="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
