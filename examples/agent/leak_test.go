package main

import (
	"testing"

	"diagnet/internal/leakcheck"
)

// TestMain fails the smoke test if the example leaves a goroutine behind
// after run() returns — examples double as lifecycle regression tests.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
