// Livelandmarks: run three real landmark HTTP servers in-process and probe
// them over loopback — the measurement plane of §IV-A-b as actual network
// code (ping for RTT, large GET/POST for throughput, a stats endpoint).
//
//	go run ./examples/livelandmarks
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"diagnet"
)

func main() {
	// Start three landmarks on ephemeral ports.
	var urls []string
	for i := 0; i < 3; i++ {
		var lm diagnet.LandmarkServer
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: lm.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
		urls = append(urls, "http://"+ln.Addr().String())
	}
	fmt.Println("landmarks up:", urls)

	// Probe each landmark the way a browser client would.
	prober := diagnet.NewProber(diagnet.ProberConfig{
		Pings:         9,
		DownloadBytes: 4 << 20,
		UploadBytes:   2 << 20,
	})
	fmt.Printf("\n%-28s %9s %10s %12s %12s\n", "landmark", "rtt(ms)", "jitter(ms)", "down(Mbps)", "up(Mbps)")
	for _, url := range urls {
		m, err := prober.Probe(context.Background(), url)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.3f %10.3f %12.0f %12.0f\n", url, m.RTTMs, m.JitterMs, m.DownMbps, m.UpMbps)
	}
	fmt.Println("\nthese measurements are the live counterpart of the k=5 per-landmark")
	fmt.Println("features DiagNet consumes (the simulator supplies loss ratios, which a")
	fmt.Println("loopback cannot exhibit)")
}
