// Livelandmarks: run three real landmark HTTP servers in-process and probe
// them over loopback — the measurement plane of §IV-A-b as actual network
// code (ping for RTT, large GET/POST for throughput, a stats endpoint).
//
//	go run ./examples/livelandmarks
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"diagnet"
)

// Probe-cost knobs, package-level so the smoke test can shrink them.
var (
	pings         = 9
	downloadBytes = int64(4 << 20)
	uploadBytes   = int64(2 << 20)
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// Start three landmarks on ephemeral ports.
	var urls []string
	for i := 0; i < 3; i++ {
		var lm diagnet.LandmarkServer
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: lm.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
		urls = append(urls, "http://"+ln.Addr().String())
	}
	fmt.Fprintln(out, "landmarks up:", urls)

	// Probe each landmark the way a browser client would.
	prober := diagnet.NewProber(diagnet.ProberConfig{
		Pings:         pings,
		DownloadBytes: downloadBytes,
		UploadBytes:   uploadBytes,
	})
	fmt.Fprintf(out, "\n%-28s %9s %10s %12s %12s\n", "landmark", "rtt(ms)", "jitter(ms)", "down(Mbps)", "up(Mbps)")
	for _, url := range urls {
		m, err := prober.Probe(context.Background(), url)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-28s %9.3f %10.3f %12.0f %12.0f\n", url, m.RTTMs, m.JitterMs, m.DownMbps, m.UpMbps)
	}
	fmt.Fprintln(out, "\nthese measurements are the live counterpart of the k=5 per-landmark")
	fmt.Fprintln(out, "features DiagNet consumes (the simulator supplies loss ratios, which a")
	fmt.Fprintln(out, "loopback cannot exhibit)")
	return nil
}
