package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke stands up the three loopback landmarks and probes them with
// a tiny measurement budget.
func TestRunSmoke(t *testing.T) {
	pings = 3
	downloadBytes = 256 << 10
	uploadBytes = 128 << 10

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "landmarks up:") {
		t.Fatalf("landmarks never came up:\n%s", out)
	}
	if got := strings.Count(out, "http://127.0.0.1:"); got < 3 {
		t.Fatalf("expected 3 landmark URLs in output, saw %d:\n%s", got, out)
	}
}
