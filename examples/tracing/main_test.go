package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the tracing walkthrough end to end on a shrunk
// configuration: train, serve, trace one diagnosis across the tiers,
// fetch it back from /v1/traces/{id}.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace_id=",     // slog correlation stamped the agent's log line
		"http.diagnose", // server route span joined the agent's trace
		"serving.queue_wait",
		"serving.batch",
		"core.diagnose",
		"core.stage.ensemble",
		"p99 exemplar:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
