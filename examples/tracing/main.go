// Tracing: follow one degraded-QoE diagnosis end to end as a request
// trace — an agent-side round span is propagated to the analysis service
// over the W3C traceparent header, the service records route, queue-wait,
// micro-batch and core pipeline stage spans under the same trace ID, and
// the finished trace is fetched back from GET /v1/traces/{id} and printed
// as a span tree. Along the way the shared slog handler stamps log lines
// with the trace ID, and the /v1/metrics latency exemplar points at the
// same trace — logs, metrics and traces joined by one key.
//
//	go run ./examples/tracing
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 600
	faultSamples   = 1400
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 8
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// spanNode mirrors the /v1/traces/{id} span-tree shape.
type spanNode struct {
	Name       string     `json:"name"`
	DurationMs float64    `json:"duration_ms"`
	Error      string     `json:"error,omitempty"`
	Children   []spanNode `json:"children"`
}

func run(out io.Writer) error {
	// Every trace is kept for this walkthrough: full head sampling, and a
	// 1ns slow threshold so the diagnosis counts as a "slow" trace — the
	// class that bypasses sampling into the always-keep ring in production.
	diagnet.ConfigureTracing(diagnet.TracingConfig{SampleRate: 1, SlowThreshold: time.Nanosecond})

	// 1. Train a small general model and serve it as the analysis service.
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World: world, NominalSamples: nominalSamples, FaultSamples: faultSamples, Seed: 11,
	})
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	model := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg).Model
	srv := analysis.NewServer(model)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := analysis.NewClient(ts.URL)
	fmt.Fprintln(out, "analysis service on", ts.URL)

	deg := test.Degraded()
	if deg.Len() == 0 {
		return fmt.Errorf("no degraded samples")
	}
	sample := &deg.Samples[0]

	// 2. The agent side of a degraded round: open a root span, log under
	// its context (the shared handler stamps trace_id/span_id), and submit
	// the diagnosis — the client injects the traceparent header, so the
	// service's spans join this trace.
	logger := slog.New(diagnet.NewLogHandler(out, "text"))
	ctx, span := diagnet.StartSpan(context.Background(), "agent.round")
	logger.InfoContext(ctx, "QoE degraded, submitting measurement snapshot")
	resp, err := client.Diagnose(ctx, &diagnet.DiagnoseRequest{
		ServiceID: sample.Service,
		Landmarks: test.Layout.Landmarks,
		Features:  sample.Features,
		TopK:      3,
	})
	if err != nil {
		return err
	}
	traceID := span.TraceID()
	span.End()
	fmt.Fprintf(out, "diagnosis: family=%s, top cause %s\n", resp.Family, resp.Causes[0].Name)

	// 3. Fetch the finished trace back over the same API an operator would
	// use. The trace finalizes when its root spans end, racing the HTTP
	// response by a hair — poll briefly until the server-side spans appear.
	tree, err := fetchTrace(ts.URL, traceID)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %s:\n", traceID)
	printTree(out, tree, 1)

	// 4. Close the loop from metrics: the diagnose route's latency
	// histogram carries an exemplar naming the trace behind its tail.
	snap := diagnet.Metrics()
	if h, ok := snap.Histograms["http.diagnose.latency_ms"]; ok && h.Exemplar != nil {
		fmt.Fprintf(out, "p99 exemplar: %.2f ms -> trace %s\n", h.Exemplar.Value, h.Exemplar.TraceID)
	}
	return nil
}

// fetchTrace polls GET /v1/traces/{id} until the trace contains the
// server-side core.diagnose span.
func fetchTrace(baseURL, id string) ([]spanNode, error) {
	var tree struct {
		Spans []spanNode `json:"spans"`
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		r, err := http.Get(baseURL + "/v1/traces/" + id)
		if err != nil {
			return nil, err
		}
		if r.StatusCode == http.StatusOK {
			err = json.NewDecoder(r.Body).Decode(&tree)
			r.Body.Close()
			if err != nil {
				return nil, err
			}
			if hasSpan(tree.Spans, "core.diagnose") {
				return tree.Spans, nil
			}
		} else {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("trace %s incomplete after 3s", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func hasSpan(nodes []spanNode, name string) bool {
	for _, n := range nodes {
		if n.Name == name || hasSpan(n.Children, name) {
			return true
		}
	}
	return false
}

func printTree(out io.Writer, nodes []spanNode, depth int) {
	for _, n := range nodes {
		suffix := ""
		if n.Error != "" {
			suffix = " ERROR: " + n.Error
		}
		fmt.Fprintf(out, "%s%s (%.2f ms)%s\n", strings.Repeat("  ", depth), n.Name, n.DurationMs, suffix)
		printTree(out, n.Children, depth+1)
	}
}
