package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the two-simultaneous-faults scenario with a tiny model
// and checks the per-service table is produced.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "injected simultaneously") {
		t.Fatalf("scenario banner missing:\n%s", out)
	}
	if !strings.Contains(out, "model's top cause") {
		t.Fatalf("table header missing:\n%s", out)
	}
	// Six catalog services → six table rows (service names contain '@').
	if rows := strings.Count(out, "@"); rows < 6 {
		t.Fatalf("expected at least 6 service rows, got %d:\n%s", rows, out)
	}
}
