// Multifault: diagnose under two simultaneous faults (the Fig. 10
// scenario — latency near BEAU and near hidden GRAV). Which fault is the
// *root cause* depends on the service: services depending on BEAU suffer
// from one, GRAV-hosted services from the other, some from both.
//
//	go run ./examples/multifault
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"diagnet"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/qoe"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 800
	faultSamples   = 1800
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 10
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	train, _ := data.Split(0.8, diagnet.HiddenLandmarks(), 13)

	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	general := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)

	env := diagnet.Env{Tick: 100, Faults: []diagnet.Fault{
		diagnet.NewFault(diagnet.FaultServiceDelay, netsim.BEAU),
		diagnet.NewFault(diagnet.FaultServiceDelay, netsim.GRAV),
	}}
	fmt.Fprintln(out, "injected simultaneously: +50ms latency at BEAU and at GRAV (hidden in training)")

	q := qoe.New(world)
	prober := probe.Prober{W: world}
	layout := diagnet.FullLayout()
	// A client near both fault regions sees the richest mix of outcomes.
	client := netsim.GRAV

	fmt.Fprintf(out, "\n%-18s %-12s %-14s %s\n", "service", "degraded?", "relevant fault", "model's top cause")
	for _, svc := range diagnet.Catalog()[:6] {
		degraded := q.Degraded(client, svc, env)
		relevant := "-"
		if degraded {
			beau := q.Degraded(client, svc, env.OnlyFault(0))
			grav := q.Degraded(client, svc, env.OnlyFault(1))
			switch {
			case beau && grav:
				relevant = "both"
			case beau:
				relevant = "BEAU"
			case grav:
				relevant = "GRAV"
			default:
				relevant = "combination"
			}
		}
		top := "-"
		if degraded {
			// Use the model specialized for this service when possible.
			model := general.Model
			if train.FilterService(svc.ID).Len() > 0 {
				model = general.Model.Specialize(train, svc.ID).Model
			}
			x := prober.Sample(client, layout, env, nil)
			top = layout.FeatureName(model.Diagnose(x, layout).Ranked()[0])
		}
		fmt.Fprintf(out, "%-18s %-12v %-14s %s\n", svc.Name(), degraded, relevant, top)
	}
	return nil
}
