package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke exercises diagnosis under both a grown (10-landmark) and a
// shrunk (4-landmark) layout with a tiny model.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"with 10 landmarks", "with only 4 landmarks", "top 3 causes:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
