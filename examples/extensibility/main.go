// Extensibility: the same trained model consumes measurements from
// landmark sets it never saw during training — more landmarks (root causes
// at new vantage points become expressible) or fewer (landmark outages).
//
//	go run ./examples/extensibility
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"diagnet"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 800
	faultSamples   = 1800
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 10
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	train, _ := data.Split(0.8, diagnet.HiddenLandmarks(), 13)

	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	res := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg)
	model := res.Model
	fmt.Fprintf(out, "model trained on landmarks: %v\n", diagnet.KnownRegions())

	// Inject a loss fault at GRAV — a landmark hidden during training —
	// and measure with the FULL landmark set.
	env := diagnet.Env{Tick: 42, Faults: []diagnet.Fault{diagnet.NewFault(diagnet.FaultLoss, netsim.GRAV)}}
	prober := probe.Prober{W: world}
	full := diagnet.FullLayout()
	x := prober.Sample(netsim.LOND, full, env, nil)
	diag := model.Diagnose(x, full)
	trueCause, _ := full.CauseOf(env.Faults[0])
	fmt.Fprintf(out, "\nwith 10 landmarks (3 unseen in training):\n")
	fmt.Fprintf(out, "  coarse family: %v, attention mass on unseen landmarks w_U = %.2f\n",
		diag.Family, diag.UnknownWeight)
	fmt.Fprintf(out, "  top cause: %s (true: %s)\n",
		full.FeatureName(diag.Ranked()[0]), full.FeatureName(trueCause))

	// Now only four landmarks respond (maintenance, outages, probing
	// budget). The very same model still produces a ranking over the
	// causes that remain expressible.
	few := diagnet.NewLayout([]int{netsim.LOND, netsim.AMST, netsim.SING, netsim.GRAV})
	xf := prober.Sample(netsim.LOND, few, env, nil)
	diagF := model.Diagnose(xf, few)
	fmt.Fprintf(out, "\nwith only 4 landmarks available:\n")
	fmt.Fprintf(out, "  coarse family: %v\n", diagF.Family)
	fmt.Fprintln(out, "  top 3 causes:")
	for i, j := range diagF.Ranked()[:3] {
		fmt.Fprintf(out, "    %d. %-14s score %.3f\n", i+1, few.FeatureName(j), diagF.Final[j])
	}
	return nil
}
