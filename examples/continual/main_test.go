package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the continual-learning example end to end on a shrunk
// configuration: buffer, trigger, retrain, shadow, promote, watch.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2
	retrainEpochs, shadowMin = 1, 32

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"serving version \"boot\"",
		"-> training",
		"-> shadowing",
		"-> promoting",
		"watch window passed clean",
		"serving version \"retrain-000001\"",
		"diagnosis from \"retrain-000001\"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
