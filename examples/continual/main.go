// Continual: the closed learning loop in one process — live diagnoses
// feed a journal-backed sample buffer, an operator trigger retrains a
// candidate warm-started from the serving model, the candidate shadows
// live traffic with zero client latency, a gate weighs labeled-holdout
// accuracy plus shadow agreement, and the promotion is hot-swapped in
// under a regression watchdog. Production runs the same loop inside
// diagnetd (-continual); here every phase is printed as it happens.
//
//	go run ./examples/continual
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"diagnet"
	"diagnet/internal/continual"
	"diagnet/internal/serving"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 600
	faultSamples   = 1400
	filters        = 8
	hidden         = []int{48, 24}
	epochs         = 8
	retrainEpochs  = 2
	shadowMin      = int64(64)
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// 1. Train the incumbent and promote it as "boot".
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World: world, NominalSamples: nominalSamples, FaultSamples: faultSamples, Seed: 11,
	})
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	model := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg).Model

	engine := diagnet.NewServingEngine(diagnet.ServingConfig{BatchMax: 16, BatchWait: time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		engine.Close(ctx)
	}()
	reg := engine.Registry()
	if err := reg.AddModel("boot", model); err != nil {
		return err
	}
	if err := reg.Promote("boot"); err != nil {
		return err
	}
	fmt.Fprintf(out, "serving version %q\n", reg.Active())

	// 2. A journal-backed sample store under a scratch state dir: every
	// accepted sample is journaled pre-ack, so a restarted daemon keeps
	// its buffer (diagnetd puts this under <state-dir>/continual).
	stateDir, err := os.MkdirTemp("", "diagnet-continual-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)
	store, err := continual.OpenStore(continual.StoreConfig{Dir: stateDir + "/samples"})
	if err != nil {
		return err
	}
	defer store.Close()

	trainer, err := continual.NewTrainer(continual.TrainerConfig{
		Epochs:        retrainEpochs,
		SpecializeMin: -1,
		CheckpointDir: stateDir + "/ckpt",
	})
	if err != nil {
		return err
	}
	ctrl, err := continual.NewController(continual.Config{
		Engine:  engine,
		Store:   store,
		Trainer: trainer,
		// A permissive gate keeps the walkthrough fast; production keeps
		// the defaults (64 shadow samples, non-negative holdout gain).
		Gate:           continual.GateConfig{MinShadowSamples: shadowMin, MinGain: -1, MaxPSI: 100, MaxLatencyRatio: 100},
		ShadowFraction: 1,
		CheckInterval:  10 * time.Millisecond,
		MinSamples:     1,
		WatchWindow:    300 * time.Millisecond,
		// The watchdog compares live behavior against a small shadow-phase
		// baseline; with few reference vectors PSI carries sampling noise
		// ~ classes·(1/n_ref + 1/n_live), so the walkthrough leaves margin.
		WatchPSI: 1.5,
		StateDir: stateDir + "/state",
	})
	if err != nil {
		return err
	}
	ctrl.Start()
	defer ctrl.Close()

	// 3. Live ingestion: buffer labeled feedback (ground truth from
	// resolved incidents — in production POST /v1/continual/samples; the
	// serving tap adds pseudo-labeled flow samples the same way).
	for i := range train.Samples {
		s := &train.Samples[i]
		err := ctrl.Ingest(continual.Sample{
			Service: s.Service, Landmarks: train.Layout.Landmarks,
			Features: s.Features, Family: int(s.Family), Cause: s.Cause, Labeled: true,
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "buffered %d live samples (%d labeled) across %d strata\n",
		store.Len(), store.LabeledLen(), store.Strata())

	// 4. Keep live traffic flowing while the cycle runs — the shadow tee
	// needs requests to copy through the candidate.
	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		// Random sampling, not round-robin: phase-correlated traffic would
		// make the watchdog's live window a contiguous (biased) slice of
		// the test set and read the bias as a regression.
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := &test.Samples[rng.Intn(test.Len())]
			res, err := engine.SubmitWait(context.Background(), &serving.Request{
				ServiceID: s.Service, Layout: test.Layout, Features: s.Features,
			})
			if err == nil {
				ctrl.ObserveServing(res.Diagnosis.Coarse)
			}
		}
	}()
	defer func() { close(stop); pump.Wait() }()

	// 5. Trigger a cycle (production also triggers on drift signals or
	// -retrain-interval) and follow the state machine.
	if err := ctrl.TriggerRetrain("operator walkthrough"); err != nil {
		return err
	}
	seen := map[continual.State]bool{}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := ctrl.Status()
		if !seen[st.State] {
			seen[st.State] = true
			fmt.Fprintf(out, "state: %s\n", st.State)
		}
		if st.State == continual.StateCollecting && seen[continual.StatePromoting] {
			fmt.Fprintln(out, "watch window passed clean")
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loop stuck in %q: %+v", st.State, st)
		}
		if st.State == continual.StateRolledBack {
			return fmt.Errorf("unexpected rollback: %+v", st.Transitions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := ctrl.Status()
	// The polled "state:" lines above can skip a fast phase; the journaled
	// transition history is the authoritative record (it is what survives
	// a restart under diagnetd's -state-dir).
	for _, tr := range st.Transitions {
		fmt.Fprintf(out, "transition: %s -> %s (%s)\n", tr.From, tr.To, tr.Reason)
	}
	fmt.Fprintf(out, "decision: promote=%v (%s)\n", st.LastDecision.Promote, st.LastDecision.Reason)
	fmt.Fprintf(out, "shadow: %d samples, agreement %.2f\n", st.LastShadow.Samples, st.LastShadow.AgreeRate)
	fmt.Fprintf(out, "holdout: candidate %.3f vs incumbent %.3f on %d labeled\n",
		st.LastTrain.HoldoutCandidate, st.LastTrain.HoldoutIncumbent, st.LastTrain.HoldoutSamples)
	fmt.Fprintf(out, "serving version %q\n", reg.Active())

	// 6. The retrained candidate answers diagnoses now; prove it end to
	// end with one request attributed to the new version.
	deg := test.Degraded()
	if deg.Len() == 0 {
		return fmt.Errorf("no degraded samples")
	}
	s := &deg.Samples[0]
	res, err := engine.SubmitWait(context.Background(), &serving.Request{
		ServiceID: s.Service, Layout: test.Layout, Features: s.Features,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "diagnosis from %q: family %s\n", res.Version, res.Diagnosis.Family)
	return nil
}
