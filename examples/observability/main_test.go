package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke runs the observability walkthrough end to end on a shrunk
// configuration: federated fleet view, injected fault burst, burn-rate
// alert, profile capture, recovery.
func TestRunSmoke(t *testing.T) {
	nominalSamples, faultSamples = 150, 400
	filters, hidden, epochs = 4, []int{16, 8}, 2
	healthyDrive = 400 * time.Millisecond

	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"sums exactly",
		"SLO alert FIRING",
		"anomaly profile captured",
		"SLO alert cleared",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
