// Observability: the fleet observability plane end to end — two replicas
// with their own metric registries behind a router that federates their
// expositions into one exactly-merged fleet view, an SLO burn-rate alert
// driven by injected faults, the anomaly-triggered CPU+heap profile
// capture, and the recovery that clears the alert.
//
//	go run ./examples/observability
//
// The walkthrough is the in-process version of:
//
//	diagnetd -addr :8421 ... ; diagnetd -addr :8422 ...
//	diagnet-router -replicas http://localhost:8421,http://localhost:8422 \
//	    -federate-interval 1s -slo-target 0.999 -slo-latency-ms 100 -state-dir state/
//	diagnet-top -router http://localhost:8420 -watch
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"diagnet"
	"diagnet/internal/analysis"
	"diagnet/internal/cluster"
	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
)

// Size knobs, package-level so the smoke test can shrink them.
var (
	nominalSamples = 300
	faultSamples   = 800
	filters        = 6
	hidden         = []int{24, 12}
	epochs         = 6
	healthyDrive   = 1 * time.Second
	alertDeadline  = 20 * time.Second
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// replica is one in-process stand-in for a diagnetd: its own registry
// (two real diagnetd processes do not share memory), an instrumented
// diagnose route behind a fault injector, and an exposition endpoint for
// the router's federator to scrape.
type replica struct {
	srv   *httptest.Server
	flaky *diagnet.FlakyHandler
}

func startReplica(model *diagnet.Model, layout diagnet.Layout) *replica {
	reg := telemetry.New()
	diagnose := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req analysis.DiagnoseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d := model.Diagnose(req.Features, layout)
		json.NewEncoder(w).Encode(map[string]any{
			"top_cause": layout.FeatureName(d.Ranked()[0]),
		})
	})
	// The fault injector sits INSIDE the instrumentation: injected 500s
	// must land in the replica's error counter, or the SLO engine would
	// never see the burst.
	flaky := diagnet.NewFlakyHandler(diagnose, diagnet.FlakyConfig{})
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.Handle("/metrics", obs.ExpositionHandler(reg))
	mux.Handle("/v1/diagnose", obs.Instrument(reg, "diagnose", flaky))
	return &replica{srv: httptest.NewServer(mux), flaky: flaky}
}

func run(out io.Writer) error {
	// 1. One small model serves on both replicas, as a real fleet would.
	world := diagnet.NewWorld(diagnet.WorldConfig{Seed: 1})
	data := diagnet.Generate(diagnet.GenConfig{
		World:          world,
		NominalSamples: nominalSamples,
		FaultSamples:   faultSamples,
		Seed:           11,
	})
	train, test := data.Split(0.8, diagnet.HiddenLandmarks(), 13)
	cfg := diagnet.DefaultConfig()
	cfg.Filters = filters
	cfg.Hidden = hidden
	cfg.Epochs = epochs
	model := diagnet.TrainGeneral(train, diagnet.KnownRegions(), cfg).Model
	deg := test.Degraded()
	if deg.Len() == 0 {
		return fmt.Errorf("no degraded samples")
	}
	body, err := json.Marshal(analysis.DiagnoseRequest{
		ServiceID: deg.Samples[0].Service,
		Landmarks: test.Layout.Landmarks,
		Features:  deg.Samples[0].Features,
	})
	if err != nil {
		return err
	}

	// 2. Two replicas + the router with the full observability plane:
	// federation every 50ms (a demo cadence; production uses seconds),
	// a 99.9% objective, and profile capture into an on-disk ring.
	r1, r2 := startReplica(model, test.Layout), startReplica(model, test.Layout)
	defer r1.srv.Close()
	defer r2.srv.Close()
	profileDir, err := os.MkdirTemp("", "diagnet-profiles-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(profileDir)
	rt := diagnet.NewClusterRouter([]string{r1.srv.URL, r2.srv.URL}, cluster.Config{
		// Keep errors flowing to the replicas during the burst: an open
		// breaker would shield them and starve the SLO signal.
		BreakerThreshold: 1 << 30,
		Obs: cluster.ObsConfig{
			FederateInterval: 50 * time.Millisecond,
			SLOTarget:        0.999,
			SLOLatencyMs:     100,
			BurnRules: []obs.BurnRule{
				// Demo-scale windows; production uses DefaultBurnRules
				// (5m/1h page, 6h/3d warn).
				{Name: "fast", Short: 400 * time.Millisecond, Long: 1500 * time.Millisecond, Factor: 2, Severity: "page"},
			},
			ProfileDir:         profileDir,
			ProfileCooldown:    time.Hour,
			ProfileCPUDuration: 100 * time.Millisecond,
		},
	})
	defer rt.Close()
	gw := httptest.NewServer(rt)
	defer gw.Close()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Fprintf(out, "fleet up: 2 replicas behind %s (federating every 50ms)\n", gw.URL)

	drive := func(d time.Duration) {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			resp, err := client.Post(gw.URL+"/v1/diagnose", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// 3. Healthy traffic: the federated view is the exact sum of the
	// per-replica counters.
	drive(healthyDrive)
	var view obs.FleetView
	if err := getJSON(client, gw.URL+"/v1/fleet/metrics", &view); err != nil {
		return fmt.Errorf("fleet metrics: %w", err)
	}
	fleetReqs, _ := view.Fleet.Counter("http_diagnose_requests")
	fmt.Fprintf(out, "healthy: fleet served %d diagnoses —", fleetReqs)
	for _, r := range view.Replicas {
		n, _ := r.Export.Counter("http_diagnose_requests")
		fmt.Fprintf(out, " %d", n)
	}
	fmt.Fprintf(out, " per replica (sums exactly)\n")

	// 4. Fault injection: every request on both replicas now fails, the
	// error budget burns, the fast rule pages.
	r1.flaky.SetConfig(diagnet.FlakyConfig{ErrorRate: 1, Seed: 7})
	r2.flaky.SetConfig(diagnet.FlakyConfig{ErrorRate: 1, Seed: 7})
	fmt.Fprintf(out, "injecting faults: 100%% of replica responses now 5xx\n")
	deadline := time.Now().Add(alertDeadline)
	for {
		drive(100 * time.Millisecond)
		if st, err := sloState(client, gw.URL); err == nil && st.firing {
			fmt.Fprintf(out, "SLO alert FIRING: %s (budget %.1f%% remaining)\n", st.desc, st.budget*100)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("burn-rate alert never fired")
		}
	}

	// 5. The firing transition captured a CPU+heap pair into the ring.
	var profiles struct {
		Captures []obs.Capture `json:"captures"`
	}
	deadline = time.Now().Add(alertDeadline)
	for len(profiles.Captures) == 0 || profiles.Captures[0].CPUProfile == "" {
		if time.Now().After(deadline) {
			return fmt.Errorf("no profile captured")
		}
		time.Sleep(50 * time.Millisecond)
		if err := getJSON(client, gw.URL+"/v1/profiles", &profiles); err != nil {
			return fmt.Errorf("profiles: %w", err)
		}
	}
	c := profiles.Captures[0]
	fmt.Fprintf(out, "anomaly profile captured: %s (%s + %s, reason %q)\n",
		c.ID, c.CPUProfile, c.HeapProfile, c.Reason)

	// 6. Recovery: faults stop, the short window drains, the alert clears.
	r1.flaky.SetConfig(diagnet.FlakyConfig{})
	r2.flaky.SetConfig(diagnet.FlakyConfig{})
	fmt.Fprintf(out, "faults healed; waiting for the alert to clear\n")
	deadline = time.Now().Add(alertDeadline)
	for {
		drive(100 * time.Millisecond)
		if st, err := sloState(client, gw.URL); err == nil && !st.firing {
			fmt.Fprintf(out, "SLO alert cleared — fleet healthy again\n")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("alert never cleared")
		}
	}
}

// sloSummary is the fast-rule slice of /v1/slo.
type sloSummary struct {
	firing bool
	budget float64
	desc   string
}

func sloState(client *http.Client, base string) (sloSummary, error) {
	var doc struct {
		Objectives []struct {
			Name            string  `json:"name"`
			BudgetRemaining float64 `json:"budget_remaining"`
			Alerts          []struct {
				Rule     string `json:"rule"`
				Severity string `json:"severity"`
				Firing   bool   `json:"firing"`
			} `json:"alerts"`
		} `json:"objectives"`
	}
	if err := getJSON(client, base+"/v1/slo", &doc); err != nil {
		return sloSummary{}, err
	}
	for _, o := range doc.Objectives {
		for _, a := range o.Alerts {
			if a.Firing {
				return sloSummary{
					firing: true,
					budget: o.BudgetRemaining,
					desc:   fmt.Sprintf("%s/%s (%s)", o.Name, a.Rule, a.Severity),
				}, nil
			}
		}
	}
	return sloSummary{}, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
