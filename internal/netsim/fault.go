package netsim

import "fmt"

// FaultKind enumerates the six injected fault families of §IV-A-e.
type FaultKind int

const (
	// FaultRate shapes download bandwidth of flows served from the fault
	// region (paper: capped at 8 Mbit/s).
	FaultRate FaultKind = iota
	// FaultServiceDelay adds latency at the fault region's hosts
	// (paper: +50 ms).
	FaultServiceDelay
	// FaultGatewayDelay adds latency at the *client's* gateway in the
	// fault region (paper: +50 ms). Client-side fault.
	FaultGatewayDelay
	// FaultJitter adds delay variation at the fault region's hosts
	// (paper: up to 100 ms).
	FaultJitter
	// FaultLoss increases packet loss at the fault region's hosts
	// (paper: 8 %).
	FaultLoss
	// FaultCPUStress loads the client CPUs in the fault region, slowing
	// page rendering. Client-side fault.
	FaultCPUStress
	NumFaultKinds
)

var faultKindNames = [NumFaultKinds]string{
	"rate", "service-delay", "gateway-delay", "jitter", "loss", "cpu-stress",
}

// String returns the fault kind's short name.
func (k FaultKind) String() string {
	if k < 0 || k >= NumFaultKinds {
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
	return faultKindNames[k]
}

// ClientSide reports whether the fault attaches to clients of the region
// rather than to its hosts.
func (k FaultKind) ClientSide() bool {
	return k == FaultGatewayDelay || k == FaultCPUStress
}

// AllFaultKinds lists every injectable fault kind.
func AllFaultKinds() []FaultKind {
	ks := make([]FaultKind, NumFaultKinds)
	for i := range ks {
		ks[i] = FaultKind(i)
	}
	return ks
}

// Fault is one active netem-style rule: a kind and the region it is
// injected in. Magnitude scales the default paper magnitude; use 1.
type Fault struct {
	Kind      FaultKind
	Region    int
	Magnitude float64
}

// NewFault returns a fault with the paper's default magnitude.
func NewFault(kind FaultKind, region int) Fault {
	return Fault{Kind: kind, Region: region, Magnitude: 1}
}

// String renders the fault for logs.
func (f Fault) String() string {
	return fmt.Sprintf("%s@%d×%.1f", f.Kind, f.Region, f.Magnitude)
}

// Default fault magnitudes (§IV-A-e).
const (
	rateCapMbps     = 8.0   // (i) download shaping
	serviceDelayMs  = 50.0  // (ii) additional service latency
	gatewayDelayMs  = 50.0  // (iii) additional gateway latency
	jitterMaxMs     = 100.0 // (iv) additional jitter, uniform up to
	lossRate        = 0.08  // (v) increased packet loss
	cpuStressLoad   = 0.92  // (vi) CPU utilization under stress
	renderSlowdownX = 6.0   // navigation slowdown factor under full stress
)

// Env is one evaluation scenario: a point in time (Tick drives diurnal
// congestion) and the set of concurrently injected faults.
type Env struct {
	Tick   int64
	Faults []Fault
}

// WithoutFault returns a copy of the environment with fault index i
// removed, used when attributing QoE degradations to a single root cause.
func (e Env) WithoutFault(i int) Env {
	fs := make([]Fault, 0, len(e.Faults)-1)
	fs = append(fs, e.Faults[:i]...)
	fs = append(fs, e.Faults[i+1:]...)
	return Env{Tick: e.Tick, Faults: fs}
}

// OnlyFault returns a copy of the environment with only fault index i.
func (e Env) OnlyFault(i int) Env {
	return Env{Tick: e.Tick, Faults: []Fault{e.Faults[i]}}
}
