package netsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadSaveRegionsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveRegions(&buf, DefaultRegions()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != NumRegions {
		t.Fatalf("round trip lost regions: %d", len(got))
	}
	if got[GRAV] != DefaultRegions()[GRAV] {
		t.Fatal("region data changed")
	}
	// A world builds on custom regions.
	w := NewWorld(Config{Regions: got[:4], Seed: 1})
	if w.NumRegions() != 4 {
		t.Fatal("custom world wrong size")
	}
}

func TestLoadRegionsValidation(t *testing.T) {
	cases := map[string]string{
		"bad JSON":  `[{`,
		"too few":   `[{"name":"A","lat":0,"lon":0}]`,
		"no name":   `[{"lat":0,"lon":0},{"name":"B","lat":0,"lon":0}]`,
		"duplicate": `[{"name":"A","lat":0,"lon":0},{"name":"A","lat":1,"lon":1}]`,
		"bad lat":   `[{"name":"A","lat":95,"lon":0},{"name":"B","lat":0,"lon":0}]`,
		"bad lon":   `[{"name":"A","lat":0,"lon":999},{"name":"B","lat":0,"lon":0}]`,
	}
	for name, payload := range cases {
		if _, err := LoadRegions(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
