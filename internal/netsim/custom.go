package netsim

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadRegions reads a custom region set from JSON — an array of
// {"name", "provider", "lat", "lon"} objects — so adopters can model their
// own deployments instead of the paper's ten regions.
func LoadRegions(r io.Reader) ([]Region, error) {
	var raw []struct {
		Name     string  `json:"name"`
		Provider string  `json:"provider"`
		Lat      float64 `json:"lat"`
		Lon      float64 `json:"lon"`
	}
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("netsim: regions: %w", err)
	}
	if len(raw) < 2 {
		return nil, fmt.Errorf("netsim: need at least 2 regions, got %d", len(raw))
	}
	seen := map[string]bool{}
	regions := make([]Region, len(raw))
	for i, e := range raw {
		if e.Name == "" {
			return nil, fmt.Errorf("netsim: region %d has no name", i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("netsim: duplicate region %q", e.Name)
		}
		seen[e.Name] = true
		if e.Lat < -90 || e.Lat > 90 || e.Lon < -180 || e.Lon > 180 {
			return nil, fmt.Errorf("netsim: region %q has invalid coordinates (%v, %v)", e.Name, e.Lat, e.Lon)
		}
		regions[i] = Region{Name: e.Name, Provider: e.Provider, Lat: e.Lat, Lon: e.Lon}
	}
	return regions, nil
}

// SaveRegions writes a region set as JSON readable by LoadRegions.
func SaveRegions(w io.Writer, regions []Region) error {
	type entry struct {
		Name     string  `json:"name"`
		Provider string  `json:"provider"`
		Lat      float64 `json:"lat"`
		Lon      float64 `json:"lon"`
	}
	out := make([]entry, len(regions))
	for i, r := range regions {
		out[i] = entry{Name: r.Name, Provider: r.Provider, Lat: r.Lat, Lon: r.Lon}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
