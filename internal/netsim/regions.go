// Package netsim simulates the paper's geodistributed multi-cloud testbed:
// ten regions across four providers, links with latency/jitter/loss/
// bandwidth derived from geodesic distance and peering relationships,
// diurnal congestion, and tc-netem-style fault injection (§IV-A).
//
// The simulator is the substitution for the authors' AWS/Azure/GCP/OVH
// deployment (see DESIGN.md §2): it preserves the causal structure the
// learning problem depends on — a fault injected in region R perturbs
// exactly the metrics of flows whose endpoints sit in R, client-side faults
// perturb everything a client sees plus its local metrics, and nothing
// else.
package netsim

import "math"

// Region is one cloud region hosting a landmark, clients, and possibly
// service resources.
type Region struct {
	Name     string
	Provider string
	Lat, Lon float64 // degrees
}

// Region indices of the default world. The first six names follow the
// paper (Fig. 4); the remaining four stand in for the paper's unreadable
// region labels (documented in DESIGN.md §3).
const (
	SEAT = iota
	EAST
	BEAU
	GRAV
	AMST
	SING
	LOND
	FRNK
	TOKY
	SYDN
	NumRegions
)

// DefaultRegions returns the ten-region, four-provider deployment used in
// all experiments.
func DefaultRegions() []Region {
	return []Region{
		SEAT: {Name: "SEAT", Provider: "aws", Lat: 47.61, Lon: -122.33},
		EAST: {Name: "EAST", Provider: "azure", Lat: 39.04, Lon: -77.49},
		BEAU: {Name: "BEAU", Provider: "ovh", Lat: 45.31, Lon: -73.87},
		GRAV: {Name: "GRAV", Provider: "ovh", Lat: 50.99, Lon: 2.13},
		AMST: {Name: "AMST", Provider: "gcp", Lat: 52.37, Lon: 4.90},
		SING: {Name: "SING", Provider: "gcp", Lat: 1.35, Lon: 103.82},
		LOND: {Name: "LOND", Provider: "azure", Lat: 51.51, Lon: -0.13},
		FRNK: {Name: "FRNK", Provider: "aws", Lat: 50.11, Lon: 8.68},
		TOKY: {Name: "TOKY", Provider: "aws", Lat: 35.68, Lon: 139.69},
		SYDN: {Name: "SYDN", Provider: "azure", Lat: -33.87, Lon: 151.21},
	}
}

// HiddenLandmarks returns the landmark regions hidden during training in
// every paper experiment (§IV-A-d): EAST, GRAV and SEAT.
func HiddenLandmarks() []int { return []int{EAST, GRAV, SEAT} }

// FaultRegions returns the regions the paper injects faults into
// (§IV-A-e): the regions involving services — SEAT, BEAU, GRAV, AMST, SING.
func FaultRegions() []int { return []int{SEAT, BEAU, GRAV, AMST, SING} }

// ServiceRegions returns the regions hosting mock-up services (§IV-A-a).
func ServiceRegions() []int { return []int{GRAV, SEAT, SING} }

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// haversineKm returns the great-circle distance between two regions.
func haversineKm(a, b Region) float64 {
	const rad = math.Pi / 180
	la1, lo1 := a.Lat*rad, a.Lon*rad
	la2, lo2 := b.Lat*rad, b.Lon*rad
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}
