package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"diagnet/internal/stats"
)

func testWorld() *World { return NewWorld(Config{Seed: 1}) }

func TestDefaultRegionsCount(t *testing.T) {
	rs := DefaultRegions()
	if len(rs) != NumRegions || NumRegions != 10 {
		t.Fatalf("want 10 regions, got %d", len(rs))
	}
	providers := map[string]bool{}
	for _, r := range rs {
		providers[r.Provider] = true
		if r.Name == "" {
			t.Fatal("region without name")
		}
	}
	if len(providers) != 4 {
		t.Fatalf("want 4 providers (paper §IV-A), got %d", len(providers))
	}
}

func TestPaperRegionSets(t *testing.T) {
	if got := HiddenLandmarks(); len(got) != 3 || got[0] != EAST || got[1] != GRAV || got[2] != SEAT {
		t.Fatalf("HiddenLandmarks = %v", got)
	}
	if got := FaultRegions(); len(got) != 5 {
		t.Fatalf("FaultRegions = %v", got)
	}
	if got := ServiceRegions(); len(got) != 3 {
		t.Fatalf("ServiceRegions = %v", got)
	}
}

func TestHaversineSanity(t *testing.T) {
	rs := DefaultRegions()
	// Gravelines–Amsterdam is a few hundred km; Seattle–Sydney > 10000 km.
	if d := haversineKm(rs[GRAV], rs[AMST]); d < 100 || d > 500 {
		t.Fatalf("GRAV-AMST distance %v km", d)
	}
	if d := haversineKm(rs[SEAT], rs[SYDN]); d < 10000 {
		t.Fatalf("SEAT-SYDN distance %v km", d)
	}
	if haversineKm(rs[SEAT], rs[SEAT]) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestBaseRTTSymmetricAndMonotone(t *testing.T) {
	w := testWorld()
	for a := 0; a < w.NumRegions(); a++ {
		for b := 0; b < w.NumRegions(); b++ {
			if w.BaseRTT(a, b) != w.BaseRTT(b, a) {
				t.Fatalf("asymmetric RTT %d-%d", a, b)
			}
		}
	}
	// Nearby pair is faster than antipodal pair.
	if w.BaseRTT(GRAV, AMST) >= w.BaseRTT(SEAT, SYDN) {
		t.Fatal("distance should order base RTTs")
	}
	if w.BaseRTT(SEAT, SEAT) >= w.BaseRTT(SEAT, EAST) {
		t.Fatal("intra-region RTT must be lowest")
	}
}

func TestServiceDelayFaultOnlyAffectsItsRegion(t *testing.T) {
	w := testWorld()
	clean := Env{Tick: 10}
	faulty := Env{Tick: 10, Faults: []Fault{NewFault(FaultServiceDelay, GRAV)}}

	pGRAV0 := w.PathConditions(SEAT, GRAV, clean, nil)
	pGRAV1 := w.PathConditions(SEAT, GRAV, faulty, nil)
	if diff := pGRAV1.RTTMs - pGRAV0.RTTMs; math.Abs(diff-serviceDelayMs) > 1 {
		t.Fatalf("delay fault added %v ms, want ~%v", diff, serviceDelayMs)
	}
	pAMST0 := w.PathConditions(SEAT, AMST, clean, nil)
	pAMST1 := w.PathConditions(SEAT, AMST, faulty, nil)
	if pAMST0 != pAMST1 {
		t.Fatal("fault leaked to an unrelated host region")
	}
}

func TestGatewayDelayAffectsAllPathsOfClient(t *testing.T) {
	w := testWorld()
	clean := Env{Tick: 3}
	faulty := Env{Tick: 3, Faults: []Fault{NewFault(FaultGatewayDelay, SING)}}
	for host := 0; host < w.NumRegions(); host++ {
		d := w.PathConditions(SING, host, faulty, nil).RTTMs - w.PathConditions(SING, host, clean, nil).RTTMs
		if math.Abs(d-gatewayDelayMs) > 1 {
			t.Fatalf("host %d: gateway delay added %v", host, d)
		}
	}
	// Other clients unaffected.
	if w.PathConditions(SEAT, AMST, faulty, nil) != w.PathConditions(SEAT, AMST, clean, nil) {
		t.Fatal("gateway fault leaked to other clients")
	}
	// And the local gateway metric reflects it.
	l := w.ClientConditions(SING, faulty, nil)
	if l.GatewayRTTMs < gatewayDelayMs {
		t.Fatalf("gateway RTT %v under gateway fault", l.GatewayRTTMs)
	}
}

func TestLossFaultThrottlesThroughput(t *testing.T) {
	w := testWorld()
	clean := w.PathConditions(SEAT, SING, Env{}, nil)
	lossy := w.PathConditions(SEAT, SING, Env{Faults: []Fault{NewFault(FaultLoss, SING)}}, nil)
	if lossy.Loss < 0.07 {
		t.Fatalf("loss = %v under loss fault", lossy.Loss)
	}
	if lossy.DownMbps >= clean.DownMbps/2 {
		t.Fatalf("loss should throttle throughput: %v vs clean %v", lossy.DownMbps, clean.DownMbps)
	}
}

func TestRateFaultCapsBandwidth(t *testing.T) {
	w := testWorld()
	shaped := w.PathConditions(AMST, GRAV, Env{Faults: []Fault{NewFault(FaultRate, GRAV)}}, nil)
	if shaped.DownMbps > rateCapMbps+0.01 {
		t.Fatalf("down %v Mbps exceeds cap", shaped.DownMbps)
	}
	clean := w.PathConditions(AMST, GRAV, Env{}, nil)
	if clean.DownMbps <= rateCapMbps {
		t.Fatal("test premise broken: clean bandwidth should exceed the cap")
	}
}

func TestJitterFaultRaisesJitter(t *testing.T) {
	w := testWorld()
	clean := w.PathConditions(EAST, BEAU, Env{}, nil)
	jit := w.PathConditions(EAST, BEAU, Env{Faults: []Fault{NewFault(FaultJitter, BEAU)}}, nil)
	if jit.JitterMs < clean.JitterMs+jitterMaxMs/2-1 {
		t.Fatalf("jitter %v under jitter fault (clean %v)", jit.JitterMs, clean.JitterMs)
	}
}

func TestCPUStressOnlyLocal(t *testing.T) {
	w := testWorld()
	env := Env{Faults: []Fault{NewFault(FaultCPUStress, TOKY)}}
	if w.PathConditions(TOKY, AMST, env, nil) != w.PathConditions(TOKY, AMST, Env{}, nil) {
		t.Fatal("CPU stress should not change path conditions")
	}
	l := w.ClientConditions(TOKY, env, nil)
	if l.CPULoad < 0.9 {
		t.Fatalf("CPU load %v under stress", l.CPULoad)
	}
	if w.ClientConditions(SEAT, env, nil).CPULoad >= 0.9 {
		t.Fatal("CPU stress leaked to another region")
	}
	if w.CPULoadAt(TOKY, env) < 0.9 {
		t.Fatal("CPULoadAt disagrees")
	}
}

func TestCongestionVariesWithTick(t *testing.T) {
	w := testWorld()
	r0 := w.PathConditions(SEAT, SING, Env{Tick: 0}, nil).RTTMs
	different := false
	for tick := int64(1); tick < 96; tick++ {
		if math.Abs(w.PathConditions(SEAT, SING, Env{Tick: tick}, nil).RTTMs-r0) > 0.5 {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("congestion has no diurnal effect")
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	w := testWorld()
	env := Env{Tick: 5}
	a := w.PathConditions(SEAT, SING, env, stats.NewRand(9, 0))
	b := w.PathConditions(SEAT, SING, env, stats.NewRand(9, 0))
	if a != b {
		t.Fatal("same seed must give identical measurements")
	}
	c := w.PathConditions(SEAT, SING, env, stats.NewRand(10, 0))
	if a == c {
		t.Fatal("different seeds should differ")
	}
}

func TestEnvFaultSubsetting(t *testing.T) {
	env := Env{Tick: 7, Faults: []Fault{NewFault(FaultLoss, GRAV), NewFault(FaultRate, SING)}}
	only := env.OnlyFault(1)
	if len(only.Faults) != 1 || only.Faults[0].Kind != FaultRate || only.Tick != 7 {
		t.Fatalf("OnlyFault = %+v", only)
	}
	without := env.WithoutFault(0)
	if len(without.Faults) != 1 || without.Faults[0].Kind != FaultRate {
		t.Fatalf("WithoutFault = %+v", without)
	}
	// Originals untouched.
	if len(env.Faults) != 2 {
		t.Fatal("env mutated")
	}
}

func TestFaultKindStringAndSides(t *testing.T) {
	if FaultRate.String() != "rate" || FaultCPUStress.String() != "cpu-stress" {
		t.Fatal("fault names wrong")
	}
	if !FaultGatewayDelay.ClientSide() || !FaultCPUStress.ClientSide() {
		t.Fatal("client-side faults misclassified")
	}
	if FaultLoss.ClientSide() || FaultServiceDelay.ClientSide() {
		t.Fatal("server-side faults misclassified")
	}
	if len(AllFaultKinds()) != int(NumFaultKinds) {
		t.Fatal("AllFaultKinds incomplete")
	}
	if FaultKind(99).String() == "" {
		t.Fatal("out-of-range String should not be empty")
	}
}

// Property: all path conditions stay physically plausible under any fault
// combination, with and without noise.
func TestPathConditionsPlausibleProperty(t *testing.T) {
	w := testWorld()
	f := func(seed int64) bool {
		rng := stats.NewRand(seed, 0)
		env := Env{Tick: rng.Int63n(1000)}
		for i := 0; i < rng.Intn(3); i++ {
			env.Faults = append(env.Faults, Fault{
				Kind:      FaultKind(rng.Intn(int(NumFaultKinds))),
				Region:    rng.Intn(NumRegions),
				Magnitude: 1,
			})
		}
		client, host := rng.Intn(NumRegions), rng.Intn(NumRegions)
		for _, noisy := range []bool{false, true} {
			var r = rng
			if !noisy {
				r = nil
			}
			p := w.PathConditions(client, host, env, r)
			if p.RTTMs <= 0 || p.JitterMs <= 0 || p.Loss < 0 || p.Loss > 1 || p.DownMbps <= 0 || p.UpMbps <= 0 {
				return false
			}
			l := w.ClientConditions(client, env, r)
			if l.GatewayRTTMs <= 0 || l.CPULoad < 0 || l.CPULoad > 1 || l.MemLoad < 0 || l.MemLoad > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
