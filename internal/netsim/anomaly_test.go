package netsim

import (
	"testing"
)

func noisyWorld() *World {
	return NewWorld(Config{Seed: 1, BackgroundAnomalies: true, AnomalyRate: 0.05})
}

func TestBackgroundAnomaliesDeterministic(t *testing.T) {
	w1, w2 := noisyWorld(), noisyWorld()
	for tick := int64(0); tick < 200; tick++ {
		a := w1.PathConditions(SEAT, SING, Env{Tick: tick}, nil)
		b := w2.PathConditions(SEAT, SING, Env{Tick: tick}, nil)
		if a != b {
			t.Fatalf("tick %d: anomalies not deterministic", tick)
		}
	}
}

func TestBackgroundAnomaliesActuallyOccur(t *testing.T) {
	clean := NewWorld(Config{Seed: 1})
	noisy := noisyWorld()
	differs := 0
	for tick := int64(0); tick < 500; tick++ {
		for host := 0; host < NumRegions; host++ {
			a := clean.PathConditions(AMST, host, Env{Tick: tick}, nil)
			b := noisy.PathConditions(AMST, host, Env{Tick: tick}, nil)
			if a != b {
				differs++
			}
		}
	}
	// 5% rate over 5000 link-ticks → expect ~250 anomalies.
	if differs < 100 || differs > 600 {
		t.Fatalf("anomalies on %d of 5000 link-ticks (rate 0.05 expected ~250)", differs)
	}
}

func TestBackgroundAnomaliesMilderThanFaults(t *testing.T) {
	noisy := noisyWorld()
	clean := NewWorld(Config{Seed: 1})
	for tick := int64(0); tick < 300; tick++ {
		a := clean.PathConditions(AMST, GRAV, Env{Tick: tick}, nil)
		b := noisy.PathConditions(AMST, GRAV, Env{Tick: tick}, nil)
		if a == b {
			continue
		}
		// Latency anomaly ≤ 18·1.5+jitter effects << the 50 ms fault.
		if b.RTTMs-a.RTTMs > 40 {
			t.Fatalf("tick %d: anomaly added %v ms RTT, as strong as a fault", tick, b.RTTMs-a.RTTMs)
		}
		if b.Loss-a.Loss > 0.03 {
			t.Fatalf("tick %d: anomaly loss %v too strong", tick, b.Loss-a.Loss)
		}
	}
}

func TestAnomaliesOffByDefault(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	if w.anomalyRate != 0 {
		t.Fatal("anomalies must be opt-in")
	}
	// With the flag but no rate, the default applies.
	w = NewWorld(Config{Seed: 1, BackgroundAnomalies: true})
	if w.anomalyRate != 0.02 {
		t.Fatalf("default rate %v", w.anomalyRate)
	}
}

// Background anomalies must never flip ground-truth labels: QoE compares
// against the same-tick fault-free baseline, which includes them.
func TestAnomaliesPreserveGroundTruth(t *testing.T) {
	// Direct check at the netsim level: anomaly application is independent
	// of env.Faults, so clean-vs-faulty deltas are identical in both
	// worlds whenever the same anomaly draw applies.
	noisy := noisyWorld()
	fault := Env{Tick: 77, Faults: []Fault{NewFault(FaultServiceDelay, GRAV)}}
	cleanEnv := Env{Tick: 77}
	dNoisy := noisy.PathConditions(AMST, GRAV, fault, nil).RTTMs - noisy.PathConditions(AMST, GRAV, cleanEnv, nil).RTTMs
	if dNoisy < 49 || dNoisy > 66 {
		t.Fatalf("fault delta %v under anomalies, want ≈50-65 (incl. jitter coupling)", dNoisy)
	}
}
