package netsim

import (
	"math"
	"math/rand"

	"diagnet/internal/stats"
)

// Path carries the end-to-end network conditions between a client and a
// remote host: exactly the k = 5 per-landmark metric families the paper
// collects (RTT, jitter, retransmit/loss ratio, download and upload
// throughput).
type Path struct {
	RTTMs    float64
	JitterMs float64
	Loss     float64 // fraction in [0, 1]
	DownMbps float64
	UpMbps   float64
}

// Local carries a client's local metrics: gateway RTT and jitter (uplink
// family) and CPU/memory/IO load (load family).
type Local struct {
	GatewayRTTMs    float64
	GatewayJitterMs float64
	CPULoad         float64
	MemLoad         float64
	IOLoad          float64
}

// World is the simulated multi-cloud deployment.
type World struct {
	Regions []Region
	baseRTT [][]float64 // ms, symmetric
	baseBW  [][]float64 // Mbps, symmetric
	phase   [][]float64 // per-link diurnal congestion phase
	seed    int64

	anomalyRate float64 // 0 disables background anomalies
}

// Config controls world construction.
type Config struct {
	Regions []Region // nil means DefaultRegions
	Seed    int64
	// BackgroundAnomalies enables spurious transient link anomalies
	// (latency spikes, loss bursts, throughput dips) unrelated to any
	// injected fault — the constant stream of irrelevant outliers §II-B
	// says landmark probing is bound to record. They are deterministic in
	// (seed, tick, link), affect both the measured features and the
	// fault-free QoE baseline (so they never change the ground-truth
	// labels), and force models to disentangle real causes from
	// coincidental anomalies.
	BackgroundAnomalies bool
	// AnomalyRate is the per-(tick, link) probability of a background
	// anomaly; 0 means 0.02 when BackgroundAnomalies is set.
	AnomalyRate float64
}

// NewWorld builds the simulated deployment. Base link conditions derive
// from geodesic distance (fiber propagation at ~200 km/ms with path
// inflation) and provider peering (cross-provider paths pay a latency and
// bandwidth penalty), mirroring how multi-cloud paths behave.
func NewWorld(cfg Config) *World {
	regions := cfg.Regions
	if regions == nil {
		regions = DefaultRegions()
	}
	n := len(regions)
	w := &World{Regions: regions, seed: cfg.Seed}
	if cfg.BackgroundAnomalies {
		w.anomalyRate = cfg.AnomalyRate
		if w.anomalyRate <= 0 {
			w.anomalyRate = 0.02
		}
	}
	w.baseRTT = make([][]float64, n)
	w.baseBW = make([][]float64, n)
	w.phase = make([][]float64, n)
	rng := stats.NewRand(cfg.Seed, 0)
	for i := 0; i < n; i++ {
		w.baseRTT[i] = make([]float64, n)
		w.baseBW[i] = make([]float64, n)
		w.phase[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var rtt, bw float64
			if i == j {
				rtt = 2.0
				bw = 120
			} else {
				dist := haversineKm(regions[i], regions[j])
				// Propagation: 2·dist/200 km/ms, ×1.3 path inflation.
				rtt = 2*dist/200*1.3 + 5
				bw = 90 / (1 + dist/9000)
				if regions[i].Provider != regions[j].Provider {
					rtt += 8
					bw *= 0.7
				} else {
					rtt += 2
				}
			}
			ph := rng.Float64() * 2 * math.Pi
			w.baseRTT[i][j], w.baseRTT[j][i] = rtt, rtt
			w.baseBW[i][j], w.baseBW[j][i] = bw, bw
			w.phase[i][j], w.phase[j][i] = ph, ph
		}
	}
	return w
}

// NumRegions returns the number of regions in the world.
func (w *World) NumRegions() int { return len(w.Regions) }

// BaseRTT exposes the noiseless base RTT between two regions (for tests
// and baseline computations).
func (w *World) BaseRTT(a, b int) float64 { return w.baseRTT[a][b] }

// congestion returns the diurnal multiplier for link (a,b) at a tick:
// ≥ 1, peaking once per simulated day (96 ticks = 24 h at 15-min probes).
func (w *World) congestion(a, b int, tick int64) float64 {
	return 1 + 0.06*(1+math.Sin(2*math.Pi*float64(tick)/96+w.phase[a][b]))/2
}

// Background anomaly kinds.
const (
	anomalyLatency = iota
	anomalyLoss
	anomalyBandwidth
)

// backgroundAnomaly deterministically decides whether link (a, b) suffers
// a spurious transient anomaly at a tick, and of which kind/magnitude.
func (w *World) backgroundAnomaly(a, b int, tick int64) (kind int, mag float64, active bool) {
	if w.anomalyRate == 0 {
		return 0, 0, false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := uint64(stats.SplitSeed(w.seed+7777, tick*1024+int64(lo*32+hi)))
	if float64(h%1000000)/1000000 >= w.anomalyRate {
		return 0, 0, false
	}
	kind = int(h>>20) % 3
	mag = 0.5 + float64((h>>40)%1000)/1000 // 0.5 .. 1.5
	return kind, mag, true
}

// PathConditions returns the network conditions between a client in region
// `client` and a host in region `host` under env. rng adds measurement and
// stochastic path noise; pass nil for noiseless expectations (used for QoE
// baselines).
func (w *World) PathConditions(client, host int, env Env, rng *rand.Rand) Path {
	cong := w.congestion(client, host, env.Tick)
	rtt := w.baseRTT[client][host] * cong
	jitter := 1.5 + 0.02*rtt
	loss := 0.002
	down := w.baseBW[client][host] / cong
	up := down * 0.6

	// Spurious background anomalies (§II-B): milder than injected faults,
	// present in features and in the fault-free QoE baseline alike.
	if kind, mag, ok := w.backgroundAnomaly(client, host, env.Tick); ok {
		switch kind {
		case anomalyLatency:
			rtt += 18 * mag
			jitter += 4 * mag
		case anomalyLoss:
			loss += 0.012 * mag
		case anomalyBandwidth:
			down *= 1 - 0.35*mag
			up *= 1 - 0.35*mag
		}
	}

	for _, f := range env.Faults {
		mag := f.Magnitude
		if mag == 0 {
			mag = 1
		}
		switch f.Kind {
		case FaultServiceDelay:
			if f.Region == host {
				rtt += serviceDelayMs * mag
			}
		case FaultGatewayDelay:
			if f.Region == client {
				rtt += gatewayDelayMs * mag
			}
		case FaultJitter:
			if f.Region == host {
				// Uniform netem jitter up to 100 ms has mean 50 ms.
				jitter += jitterMaxMs * mag / 2
			}
		case FaultLoss:
			if f.Region == host {
				loss += lossRate * mag
			}
		case FaultRate:
			if f.Region == host {
				cap := rateCapMbps / mag
				if down > cap {
					down = cap
				}
				if up > cap {
					up = cap
				}
			}
		case FaultCPUStress:
			// Client-side only; no path effect.
		}
	}

	// Loss throttles TCP throughput (Mathis-style cap), a hidden
	// relationship the coarse classifier must disentangle (§III-B).
	if loss > 0.01 {
		cap := 180.0 / (rtt * math.Sqrt(loss)) // Mbps, tuned: 8 % @ 100 ms → ~6 Mbps
		if down > cap {
			down = cap
		}
		if up > cap*0.6 {
			up = cap * 0.6
		}
	}
	// High jitter inflates measured RTT spread and effective latency.
	rtt += jitter * 0.3

	if rng != nil {
		rtt = math.Max(0.5, rtt+rng.NormFloat64()*2+jitter*0.2*math.Abs(rng.NormFloat64()))
		jitter = math.Max(0.1, jitter*(1+0.15*rng.NormFloat64()))
		loss = stats.Clamp(loss*(1+0.2*rng.NormFloat64())+math.Abs(rng.NormFloat64())*5e-4, 0, 1)
		down = math.Max(0.1, down*(1+0.08*rng.NormFloat64()))
		up = math.Max(0.1, up*(1+0.08*rng.NormFloat64()))
	}
	return Path{RTTMs: rtt, JitterMs: jitter, Loss: loss, DownMbps: down, UpMbps: up}
}

// ClientConditions returns a client's local metrics under env. rng adds
// noise; pass nil for noiseless expectations.
func (w *World) ClientConditions(client int, env Env, rng *rand.Rand) Local {
	l := Local{
		GatewayRTTMs:    2.5,
		GatewayJitterMs: 0.6,
		CPULoad:         0.25,
		MemLoad:         0.45,
		IOLoad:          0.15,
	}
	for _, f := range env.Faults {
		if f.Region != client {
			continue
		}
		mag := f.Magnitude
		if mag == 0 {
			mag = 1
		}
		switch f.Kind {
		case FaultGatewayDelay:
			l.GatewayRTTMs += gatewayDelayMs * mag
			l.GatewayJitterMs += 2 * mag
		case FaultCPUStress:
			l.CPULoad = stats.Clamp(cpuStressLoad*mag, 0, 1)
			l.MemLoad = stats.Clamp(l.MemLoad+0.2*mag, 0, 1)
			l.IOLoad = stats.Clamp(l.IOLoad+0.25*mag, 0, 1)
		}
	}
	if rng != nil {
		l.GatewayRTTMs = math.Max(0.2, l.GatewayRTTMs+rng.NormFloat64()*0.4)
		l.GatewayJitterMs = math.Max(0.05, l.GatewayJitterMs*(1+0.2*rng.NormFloat64()))
		l.CPULoad = stats.Clamp(l.CPULoad+rng.NormFloat64()*0.06, 0, 1)
		l.MemLoad = stats.Clamp(l.MemLoad+rng.NormFloat64()*0.05, 0, 1)
		l.IOLoad = stats.Clamp(l.IOLoad+rng.NormFloat64()*0.05, 0, 1)
	}
	return l
}

// CPULoadAt returns the (noiseless) client CPU load under env, used by the
// QoE model to slow rendering under stress.
func (w *World) CPULoadAt(client int, env Env) float64 {
	return w.ClientConditions(client, env, nil).CPULoad
}
