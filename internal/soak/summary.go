package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Summary is the machine-readable record of one soak run. It carries the
// full event schedule, so two runs with the same seed can be diffed for
// determinism, and the raw resource samples behind the growth verdicts.
type Summary struct {
	Seed       int64 `json:"seed"`
	Replicas   int   `json:"replicas"`
	DurationMs int64 `json:"duration_ms"`

	// Schedule is the deterministic event script the run executed.
	Schedule []Event `json:"schedule"`

	// Requests tallies client-observed outcomes: ok, 4xx, 429, 5xx,
	// transport.
	Requests map[string]int64 `json:"requests"`

	// Event outcome counters.
	Checkpoints     int `json:"checkpoints"`
	CrashInjections int `json:"crash_injections"`
	Retrains        int `json:"retrains_accepted"`
	FleetChecks     int `json:"fleet_checks"`

	// FederatedCounters is how many http.* counters the exactness check
	// compared between the fleet view and the per-replica sums.
	FederatedCounters int `json:"federated_counters_checked"`

	// Resource samples on a 200ms cadence across the chaos phase.
	GoroutineSamples []int `json:"goroutine_samples"`
	FDSamples        []int `json:"fd_samples"`

	// LeakReport is leakcheck's full stack dump when teardown left
	// goroutines behind (empty on a clean run).
	LeakReport string `json:"leak_report,omitempty"`

	// StateRoot is preserved on failure for post-mortem (empty otherwise).
	StateRoot string `json:"state_root,omitempty"`

	// Violations lists every invariant that failed; empty means PASS.
	Violations []string `json:"violations"`
}

func (s *Summary) fail(format string, args ...any) {
	s.Violations = append(s.Violations, fmt.Sprintf(format, args...))
}

// checkGrowth compares the quiescent floor (minimum) of the last third
// of each resource series against the middle third's. Retrain cycles
// and restart bursts swing the instantaneous counts by dozens, so means
// are noisy — but between bursts the count returns to its floor, and
// only a real leak raises that floor. The first third is excluded from
// the baseline because it straddles the pre-chaos warmup (the continual
// loop's steady-state churn runs permanently higher than the boot
// quiet); middle and last thirds are both in steady state, so floor
// growth between them beyond the slack is a compounding leak — one the
// end-of-run snapshot alone could miss when teardown reaps it.
func (s *Summary) checkGrowth() {
	if v, ok := floorGrowth(s.GoroutineSamples, 5); ok {
		s.fail("goroutine floor grew over the run: middle-third min %d, last-third min %d", v[0], v[1])
	}
	if v, ok := floorGrowth(s.FDSamples, 8); ok {
		s.fail("fd floor grew over the run: middle-third min %d, last-third min %d", v[0], v[1])
	}
}

// floorGrowth returns ([middleMin, lastMin], true) when the minimum of
// the last third of the series exceeds the middle third's by more than
// slack.
func floorGrowth(samples []int, slack int) ([2]int, bool) {
	n := len(samples)
	if n < 9 {
		return [2]int{}, false // too short to call either way
	}
	third := n / 3
	minOf := func(xs []int) int {
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	}
	middle, last := minOf(samples[third:2*third]), minOf(samples[n-third:])
	if last > middle+slack {
		return [2]int{middle, last}, true
	}
	return [2]int{}, false
}

// Passed reports whether the run satisfied every invariant.
func (s *Summary) Passed() bool { return len(s.Violations) == 0 }

// WriteJSON writes the summary (indented) to path, creating parent
// directories as needed.
func (s *Summary) WriteJSON(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
