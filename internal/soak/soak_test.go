package soak

import (
	"testing"
	"time"

	"diagnet/internal/leakcheck"
)

func TestMain(m *testing.M) {
	// The soak harness is itself lifecycle code; it must not leak either.
	leakcheck.VerifyTestMain(m)
}

// TestBuildScheduleDeterministic pins the replayability contract: the
// schedule is a pure function of (seed, duration, replicas, step).
func TestBuildScheduleDeterministic(t *testing.T) {
	a := BuildSchedule(42, 30*time.Second, 3, 250*time.Millisecond)
	b := BuildSchedule(42, 30*time.Second, 3, 250*time.Millisecond)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := BuildSchedule(43, 30*time.Second, 3, 250*time.Millisecond)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBuildScheduleInvariants checks the structural rules every schedule
// must satisfy: time-ordered, replica 0 never killed, no kill of a
// replica the schedule already left down, every kill paired with a
// restart at a later offset.
func TestBuildScheduleInvariants(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		events := BuildSchedule(seed, time.Minute, 3, 250*time.Millisecond)
		down := map[int]bool{}
		var prev time.Duration
		for i, ev := range events {
			if ev.At < prev {
				t.Fatalf("seed %d: event %d out of order", seed, i)
			}
			prev = ev.At
			switch ev.Kind {
			case EvKill:
				if ev.Target == 0 {
					t.Fatalf("seed %d: schedule kills replica 0", seed)
				}
				if down[ev.Target] {
					t.Fatalf("seed %d: kill of already-down replica %d at %s", seed, ev.Target, ev.At)
				}
				down[ev.Target] = true
			case EvRestart:
				if !down[ev.Target] {
					t.Fatalf("seed %d: restart of up replica %d at %s", seed, ev.Target, ev.At)
				}
				down[ev.Target] = false
			}
		}
		for idx, d := range down {
			if d {
				t.Fatalf("seed %d: replica %d left down at end of schedule", seed, idx)
			}
		}
	}
}

// TestSoakShortRun boots the full fleet and runs a brief chaos window.
// CI's 60s soak lives in the workflow; this keeps a smoke-sized version
// in `go test` so harness regressions surface everywhere.
func TestSoakShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack soak skipped in -short mode")
	}
	sum, err := Run(Config{
		Seed:          1,
		Duration:      4 * time.Second,
		Replicas:      3,
		ClientWorkers: 2,
		EventStep:     200 * time.Millisecond,
		StateRoot:     t.TempDir(),
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("soak failed: %v\nleak report:\n%s", err, sum.LeakReport)
	}
	if !sum.Passed() {
		t.Fatalf("violations: %v", sum.Violations)
	}
	if sum.Requests["ok"] == 0 {
		t.Fatal("no traffic reached the fleet")
	}
	if sum.FederatedCounters == 0 {
		t.Fatal("federation exactness checked nothing")
	}
}
