// Package soak is the full-stack chaos soak harness: it boots a router,
// a replica fleet, and the continual-learning loop in one process, drives
// a deterministic seeded schedule of chaos events (replica kill/restart,
// checkpoints, injected journal crashes, retrain triggers) under constant
// client load, and asserts the fleet's lifecycle invariants — no
// goroutine or file-descriptor growth, no client-visible 5xx, journals
// that replay clean, and a federated metric view that exactly equals the
// sum of the per-replica registries. See DESIGN.md §17.
package soak

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/cluster"
	"diagnet/internal/continual"
	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/durable"
	"diagnet/internal/forest"
	"diagnet/internal/leakcheck"
	"diagnet/internal/netsim"
	"diagnet/internal/obs"
	"diagnet/internal/resilience"
	"diagnet/internal/stats"
	"diagnet/internal/tracing"
)

// Config parameterizes one soak run.
type Config struct {
	// Seed drives every random draw in the run: the event schedule, the
	// client request mix, the tracing IDs. Same seed, same schedule.
	Seed int64
	// Duration is how long the chaos phase runs (default 10s).
	Duration time.Duration
	// Replicas is the fleet size (default 3; minimum 2 so kills have a
	// target while replica 0 hosts the continual loop).
	Replicas int
	// ClientWorkers is the number of concurrent load generators
	// (default 4).
	ClientWorkers int
	// EventStep is the schedule's draw cadence (default 250ms).
	EventStep time.Duration
	// StateRoot holds the replicas' journals; empty uses a temp dir that
	// is removed on success and kept on failure for the post-mortem.
	StateRoot string
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Replicas < 2 {
		c.Replicas = 3
	}
	if c.ClientWorkers <= 0 {
		c.ClientWorkers = 4
	}
	if c.EventStep <= 0 {
		c.EventStep = 250 * time.Millisecond
	}
	return c
}

// Run executes one soak: boot, chaos, quiesce, invariant checks. The
// returned Summary is complete even when the run failed; err is non-nil
// iff at least one invariant was violated (the violations are also in
// the summary).
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sum := &Summary{
		Seed:       cfg.Seed,
		Replicas:   cfg.Replicas,
		DurationMs: cfg.Duration.Milliseconds(),
		Requests:   map[string]int64{},
	}
	tracing.SeedIDs(cfg.Seed)

	stateRoot := cfg.StateRoot
	if stateRoot == "" {
		var err error
		stateRoot, err = os.MkdirTemp("", "diagnet-soak-*")
		if err != nil {
			return sum, err
		}
	}

	// --- Boot -----------------------------------------------------------
	logf("soak: training fixture model (seed %d)", cfg.Seed)
	model, testData := trainFixture()

	logf("soak: booting %d replicas + router", cfg.Replicas)
	replicas := make([]*replica, cfg.Replicas)
	urls := make([]string, cfg.Replicas)
	for i := range replicas {
		r, err := startReplica(i, model, filepath.Join(stateRoot, fmt.Sprintf("replica-%d", i)))
		if err != nil {
			sum.fail("boot: %v", err)
			return sum, errors.New(sum.Violations[0])
		}
		replicas[i] = r
		urls[i] = r.url()
	}

	rt := cluster.NewRouter(urls, cluster.Config{
		HealthInterval: 50 * time.Millisecond,
		Obs:            cluster.ObsConfig{FederateInterval: 100 * time.Millisecond},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sum.fail("router listen: %v", err)
		return sum, errors.New(sum.Violations[0])
	}
	routerSrv := &http.Server{Handler: rt}
	go routerSrv.Serve(ln)
	routerURL := "http://" + ln.Addr().String()

	// Continual loop on replica 0 (which the schedule never kills).
	ctrl, store, err := startContinual(replicas[0], testData, cfg.Seed)
	if err != nil {
		sum.fail("continual boot: %v", err)
		return sum, errors.New(sum.Violations[0])
	}

	// --- Chaos phase ----------------------------------------------------
	schedule := BuildSchedule(cfg.Seed, cfg.Duration, cfg.Replicas, cfg.EventStep)
	sum.Schedule = schedule
	logf("soak: %d scheduled events over %s", len(schedule), cfg.Duration)

	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	var counts requestCounts
	for w := 0; w < cfg.ClientWorkers; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			clientLoad(routerURL, testData, stats.NewLockedStream(cfg.Seed, int64(w)+1), &counts, ctrl, stopLoad)
		}(w)
	}

	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		sampleResources(sum, stopSample)
	}()

	start := time.Now()
	runSchedule(schedule, replicas, ctrl, routerURL, stateRoot, sum, logf, start)

	// --- Quiesce --------------------------------------------------------
	remaining := cfg.Duration - time.Since(start)
	if remaining > 0 {
		time.Sleep(remaining)
	}
	close(stopLoad)
	loadWG.Wait()
	close(stopSample)
	sampleWG.Wait()
	counts.fill(sum.Requests)

	// Everything that generates traffic is stopped; the continual loop
	// goes next (it may be mid-cycle — Close cancels and waits).
	if err := ctrl.Close(); err != nil {
		sum.fail("continual close: %v", err)
	}
	store.Close()

	// Federation exactness while the fleet is quiet: one final sweep must
	// equal the sum of independent per-replica scrapes, counter for
	// counter. Sweep first — our own scrapes bump each replica's
	// obs.scrapes, which is why only http.* counters are compared.
	checkFederation(rt, replicas, sum)

	// --- Teardown (reverse dependency order) ----------------------------
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	routerSrv.Shutdown(shutCtx)
	cancel()
	rt.Close()
	rt.Close() // double-Close must stay a no-op
	for _, r := range replicas {
		if err := r.shutdown(); err != nil {
			sum.fail("replica %d shutdown: %v", r.index, err)
		}
	}

	// --- Final invariants -----------------------------------------------
	sum.checkGrowth()
	if leaked := leakcheck.Find(); leaked != nil {
		sum.LeakReport = leaked.Error()
		sum.fail("goroutine leak after teardown: %s", firstLine(leaked.Error()))
	}
	if n := sum.Requests["5xx"]; n > 0 {
		sum.fail("%d client-visible 5xx responses", n)
	}
	if sum.Requests["ok"] == 0 {
		sum.fail("no successful requests — the load never reached the fleet")
	}
	if len(sum.Violations) == 0 && cfg.StateRoot == "" {
		os.RemoveAll(stateRoot)
	} else if len(sum.Violations) > 0 {
		sum.StateRoot = stateRoot
	}
	if len(sum.Violations) > 0 {
		return sum, fmt.Errorf("soak: %d invariant violation(s): %s", len(sum.Violations), strings.Join(sum.Violations, "; "))
	}
	return sum, nil
}

// trainFixture trains the tiny shared model (same shape as the e2e test
// fixtures — small enough for CI under -race, rich enough for affinity
// and shadow evaluation to mean something).
func trainFixture() (*core.Model, *dataset.Dataset) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	d := dataset.Generate(dataset.GenConfig{
		World:          w,
		NominalSamples: 150,
		FaultSamples:   400,
		Seed:           21,
	})
	train, test := d.Split(0.8, netsim.HiddenLandmarks(), 23)
	mc := core.DefaultConfig()
	mc.Filters = 4
	mc.Hidden = []int{16, 8}
	mc.Epochs = 2
	mc.Forest = forest.Config{Trees: 5, Tree: forest.TreeConfig{MaxDepth: 4}}
	known := []int{netsim.BEAU, netsim.AMST, netsim.SING, netsim.LOND, netsim.FRNK, netsim.TOKY, netsim.SYDN}
	return core.TrainGeneral(train, known, mc).Model, test
}

// startContinual wires the closed learning loop onto replica 0's engine,
// pre-filling the sample store so retrain triggers have material.
func startContinual(rep *replica, d *dataset.Dataset, seed int64) (*continual.Controller, *continual.SampleStore, error) {
	store, err := continual.OpenStore(continual.StoreConfig{PerStratum: 32, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for i := range d.Samples {
		s := &d.Samples[i]
		store.Ingest(continual.Sample{
			Service:   s.Service,
			Landmarks: d.Layout.Landmarks,
			Features:  s.Features,
			Family:    int(s.Family),
			Cause:     s.Cause,
			Labeled:   true,
		})
	}
	tr, err := continual.NewTrainer(continual.TrainerConfig{Epochs: 1, Seed: seed, SpecializeMin: -1})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	ctrl, err := continual.NewController(continual.Config{
		Engine:  rep.Engine(),
		Store:   store,
		Trainer: tr,
		Gate: continual.GateConfig{
			MinShadowSamples: 8, MinGain: -1, MaxPSI: 100, MaxLatencyRatio: 100,
		},
		ShadowFraction:  1,
		ShadowTimeout:   2 * time.Second,
		CheckInterval:   20 * time.Millisecond,
		MinSamples:      16,
		WatchWindow:     500 * time.Millisecond,
		WatchWindowSize: 64,
		WatchPSI:        100, // the soak asserts lifecycle, not model quality
		Seed:            seed,
	})
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	ctrl.Start()
	return ctrl, store, nil
}

// requestCounts tallies client-observed outcomes.
type requestCounts struct {
	ok, s4xx, s429, s5xx, transport atomic.Int64
}

func (c *requestCounts) fill(m map[string]int64) {
	m["ok"] = c.ok.Load()
	m["4xx"] = c.s4xx.Load()
	m["429"] = c.s429.Load()
	m["5xx"] = c.s5xx.Load()
	m["transport"] = c.transport.Load()
}

// clientLoad drives diagnose traffic through the router until stopped,
// feeding every response's coarse view back to the continual loop (the
// live-sample path) and classifying the outcome. Retries are disabled —
// the soak wants the raw status the fleet actually produced, not one
// laundered by client-side resilience.
func clientLoad(routerURL string, d *dataset.Dataset, rng *stats.LockedRand, counts *requestCounts, ctrl *continual.Controller, stop <-chan struct{}) {
	client := analysis.NewClient(routerURL)
	client.Retry = resilience.RetryPolicy{MaxAttempts: 1}
	defer client.HTTP.CloseIdleConnections()
	deg := d.Degraded()
	if deg.Len() == 0 {
		return
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		s := &deg.Samples[rng.Intn(deg.Len())]
		req := &analysis.DiagnoseRequest{
			ServiceID: s.Service,
			Landmarks: d.Layout.Landmarks,
			Features:  s.Features,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := client.Diagnose(ctx, req)
		cancel()
		switch {
		case err == nil:
			counts.ok.Add(1)
			if resp != nil && len(resp.Coarse) > 0 {
				ctrl.ObserveServing(resp.Coarse)
			}
		default:
			var statusErr *resilience.HTTPStatusError
			switch {
			case errors.As(err, &statusErr) && statusErr.Code == http.StatusTooManyRequests:
				counts.s429.Add(1)
			case errors.As(err, &statusErr) && statusErr.Code >= 500:
				counts.s5xx.Add(1)
			case errors.As(err, &statusErr):
				counts.s4xx.Add(1)
			default:
				counts.transport.Add(1)
			}
		}
	}
}

// runSchedule dispatches the scripted events at their offsets.
func runSchedule(schedule []Event, replicas []*replica, ctrl *continual.Controller, routerURL, stateRoot string, sum *Summary, logf func(string, ...any), start time.Time) {
	crashDir := filepath.Join(stateRoot, "crash-scratch")
	crashes := 0
	for _, ev := range schedule {
		if wait := ev.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		switch ev.Kind {
		case EvKill:
			logf("soak: %6s  kill replica %d", ev.At.Truncate(time.Millisecond), ev.Target)
			replicas[ev.Target].kill()
		case EvRestart:
			logf("soak: %6s  restart replica %d", ev.At.Truncate(time.Millisecond), ev.Target)
			if err := replicas[ev.Target].restart(); err != nil {
				sum.fail("restart replica %d: %v", ev.Target, err)
			}
		case EvCheckpoint:
			if err := replicas[ev.Target].checkpoint(); err != nil {
				sum.fail("checkpoint replica %d: %v", ev.Target, err)
			} else {
				sum.Checkpoints++
			}
		case EvCrashJournal:
			site := crashSites[crashes%len(crashSites)]
			crashes++
			if err := crashAndRecover(crashDir, durable.CrashPoint(site)); err != nil {
				sum.fail("crash-inject %s: %v", site, err)
			} else {
				sum.CrashInjections++
			}
		case EvRetrain:
			if err := ctrl.TriggerRetrain("soak"); err == nil {
				sum.Retrains++
			} // refused mid-cycle: expected, the poke is the point
		case EvFleetCheck:
			fleetCheck(routerURL, sum)
		}
	}
}

// crashAndRecover arms one crash point, takes the injected crash on a
// scratch journal append, then reopens the directory — the replay must
// succeed and the records must be intact prefixes of what was written.
func crashAndRecover(dir string, site durable.CrashPoint) error {
	jn, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		return err
	}
	// A few survivor records, then the doomed one.
	for i := 0; i < 3; i++ {
		if err := jn.Append([]byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			jn.Close()
			return err
		}
	}
	durable.SetCrashPoint(site)
	var crashed bool
	func() {
		defer durable.RecoverCrash(&crashed)
		jn.Append([]byte(`{"n":"doomed"}`))
	}()
	durable.ClearCrashPoint()
	jn.Close()
	if !crashed {
		return fmt.Errorf("crash point %q did not fire", site)
	}
	// Recovery: reopen and replay; every surviving record must decode.
	re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways})
	if err != nil {
		return fmt.Errorf("reopen after %s: %w", site, err)
	}
	defer re.Close()
	n := 0
	if err := re.Replay(func(payload []byte) error {
		n++
		return nil
	}); err != nil {
		return fmt.Errorf("replay after %s: %w", site, err)
	}
	if n < 3 {
		return fmt.Errorf("replay after %s lost acknowledged records: %d < 3", site, n)
	}
	return nil
}

// fleetCheck polls the router's federated view; any 5xx is a violation
// (503 before the first sweep completes is part of the contract).
func fleetCheck(routerURL string, sum *Summary) {
	resp, err := http.Get(routerURL + "/v1/fleet/metrics")
	if err != nil {
		return // router teardown race at the window edge, not an invariant
	}
	drainClose(resp)
	sum.FleetChecks++
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		sum.fail("fleet view returned %d", resp.StatusCode)
	}
}

// sampleResources records goroutine and fd counts on a cadence; the
// growth invariant compares the run's first and last thirds.
func sampleResources(sum *Summary, stop <-chan struct{}) {
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			sum.GoroutineSamples = append(sum.GoroutineSamples, len(leakcheck.Interesting()))
			sum.FDSamples = append(sum.FDSamples, leakcheck.CountFDs())
		}
	}
}

// checkFederation asserts the exactness invariant: after quiesce, every
// http.* counter in the federated fleet view equals the sum of the same
// counter across independent per-replica scrapes. Scrape-order metrics
// (obs.scrapes bumps on every read) are excluded by the http.* filter.
func checkFederation(rt *cluster.Router, replicas []*replica, sum *Summary) {
	fed := rt.Federator()
	if fed == nil {
		sum.fail("federation disabled — harness bug")
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	view := fed.Sweep(ctx)
	cancel()
	for _, rm := range view.Replicas {
		if rm.Error != "" {
			sum.fail("final sweep: replica %s: %s", rm.Name, rm.Error)
			return
		}
	}
	// The fleet view carries exposition (Prom-sanitized) names, the local
	// registries dotted ones; sum the replicas under the sanitized name.
	want := map[string]int64{}
	for _, r := range replicas {
		ex := r.reg.Export()
		for i := range ex.Counters {
			want[obs.PromName(ex.Counters[i].Name)] += ex.Counters[i].Value
		}
	}
	checked := 0
	for i := range view.Fleet.Counters {
		name := view.Fleet.Counters[i].Name
		if !strings.HasPrefix(name, "http_") {
			continue
		}
		if got := view.Fleet.Counters[i].Value; got != want[name] {
			sum.fail("federation inexact: %s fleet=%d sum(replicas)=%d", name, got, want[name])
		}
		checked++
	}
	if checked == 0 {
		sum.fail("federation exactness checked zero counters")
	}
	sum.FederatedCounters = checked
}

// drainClose drains and closes a response body (bounded).
func drainClose(resp *http.Response) {
	b := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(b); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// firstLine truncates a multi-line report to its head for the violation
// list (the full report is in Summary.LeakReport).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
