package soak

import (
	"time"

	"diagnet/internal/stats"
)

// EventKind names one scripted chaos action.
type EventKind string

const (
	// EvKill abruptly closes a replica's listener (crash). The schedule
	// never kills replica 0 (the continual plane lives there) and never
	// kills a replica that is already down, so the fleet always has
	// capacity and a client-visible 5xx is a real bug, not scheduling.
	EvKill EventKind = "kill"
	// EvRestart brings a killed replica back on its stable address,
	// draining the old engine and replaying its journal (recovery).
	EvRestart EventKind = "restart"
	// EvCheckpoint runs the replica's state checkpoint — what diagnetd's
	// SIGHUP handler calls.
	EvCheckpoint EventKind = "checkpoint"
	// EvCrashJournal arms a durable crash point, takes the injected crash
	// on a scratch journal, then reopens and replays it — recovery must
	// be clean every time.
	EvCrashJournal EventKind = "crash-journal"
	// EvRetrain asks the continual controller for a cycle (drift-style
	// trigger). Refused mid-cycle; that is fine — the point is poking the
	// state machine from outside at arbitrary moments.
	EvRetrain EventKind = "retrain"
	// EvFleetCheck fetches the router's federated fleet view and records
	// whether it answered.
	EvFleetCheck EventKind = "fleet-check"
)

// Event is one scheduled action.
type Event struct {
	// At is the offset from soak start.
	At time.Duration `json:"at_ms"`
	// Kind is the action.
	Kind EventKind `json:"kind"`
	// Target is the replica index for kill/restart/checkpoint (-1 when
	// not applicable).
	Target int `json:"target"`
}

// crashSites is the rotation of injected crash points for EvCrashJournal.
var crashSites = []string{"mid-append", "pre-sync", "post-sync"}

// BuildSchedule generates the full event schedule for a run as a pure
// function of (seed, duration, replicas): the same inputs always yield
// the same schedule, so a failing soak replays exactly. Kill targets are
// drawn only from replicas 1..n-1 that the schedule itself has not left
// down, and every kill's restart is scheduled before the next event draw,
// so capacity tracking needs no runtime coordination.
func BuildSchedule(seed int64, duration time.Duration, replicas int, step time.Duration) []Event {
	if step <= 0 {
		step = 250 * time.Millisecond
	}
	rng := stats.NewLockedStream(seed, 0xC0DE)
	downUntil := make([]time.Duration, replicas) // replica i is down until this offset
	var events []Event

	// Leave a settle window at both ends: the first moments establish the
	// goroutine baseline, the last must let in-flight chaos finish before
	// teardown asserts invariants.
	settle := duration / 10
	if settle > 2*time.Second {
		settle = 2 * time.Second
	}
	for at := settle; at < duration-settle; at += step {
		// Deterministic jitter keeps events off exact multiples so they
		// interleave differently with timers at different seeds.
		jitter := time.Duration(rng.Int63() % int64(step/4))
		t := at + jitter
		switch p := rng.Float64(); {
		case p < 0.25 && replicas > 2:
			// Kill one of the disposable replicas, restart it well before
			// the end of the window.
			candidates := make([]int, 0, replicas)
			for i := 1; i < replicas; i++ {
				if downUntil[i] <= t {
					candidates = append(candidates, i)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			victim := candidates[rng.Intn(len(candidates))]
			events = append(events, Event{At: t, Kind: EvKill, Target: victim})
			back := t + step + time.Duration(rng.Int63()%int64(step))
			if back >= duration-settle {
				back = duration - settle
			}
			events = append(events, Event{At: back, Kind: EvRestart, Target: victim})
			downUntil[victim] = back
		case p < 0.45:
			events = append(events, Event{At: t, Kind: EvCheckpoint, Target: rng.Intn(replicas)})
		case p < 0.60:
			events = append(events, Event{At: t, Kind: EvCrashJournal, Target: -1})
		case p < 0.80:
			events = append(events, Event{At: t, Kind: EvRetrain, Target: -1})
		default:
			events = append(events, Event{At: t, Kind: EvFleetCheck, Target: -1})
		}
	}
	// Restore strict time order (restarts were appended out of order).
	sortEvents(events)
	return events
}

// sortEvents orders by At, stable for equal times (insertion order).
func sortEvents(events []Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}
