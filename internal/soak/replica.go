package soak

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/core"
	"diagnet/internal/durable"
	"diagnet/internal/obs"
	"diagnet/internal/serving"
	"diagnet/internal/telemetry"
)

// replica is one in-process diagnetd stack: serving engine, analysis
// server, durable state plane and an HTTP listener on a stable loopback
// address, with its OWN telemetry registry so the federation-exactness
// invariant sums genuinely distinct sources. kill closes the listener
// abruptly (what a crash looks like to the router); restart drains the
// old stack, replays the journal and comes back on the same address.
type replica struct {
	index    int
	model    *core.Model
	stateDir string

	reg *telemetry.Registry

	mu      sync.Mutex
	addr    string
	engine  *serving.Engine
	srv     *analysis.Server
	persist *serving.Persistence
	httpSrv *http.Server
	up      bool
}

// startReplica boots a replica on an ephemeral loopback port.
func startReplica(index int, model *core.Model, stateDir string) (*replica, error) {
	r := &replica{index: index, model: model, stateDir: stateDir, reg: telemetry.New()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("soak: replica %d listen: %w", index, err)
	}
	r.addr = ln.Addr().String()
	if err := r.boot(ln); err != nil {
		ln.Close()
		return nil, err
	}
	return r, nil
}

// boot builds the stack (engine, recovery, server) and serves on ln.
// Caller holds no locks.
func (r *replica) boot(ln net.Listener) error {
	e := serving.New(serving.Config{BatchMax: 8, BatchWait: time.Millisecond, QueueDepth: 256})
	fail := func(stage string, err error) error {
		e.Close(context.Background())
		return fmt.Errorf("soak: replica %d %s: %w", r.index, stage, err)
	}
	reg := e.Registry()
	// Same order as diagnetd: register the boot model, attach the state
	// log, replay it (recovery re-promotes the last acknowledged version),
	// and only fall back to promoting boot on a fresh state dir.
	if err := reg.AddModel("boot", r.model); err != nil {
		return fail("boot model", err)
	}
	persist, err := serving.OpenPersistence(r.stateDir, durable.FsyncBatch)
	if err != nil {
		return fail("persistence", err)
	}
	reg.AttachPersistence(persist)
	recovered, err := persist.Recover(reg)
	if err != nil {
		persist.Close()
		return fail("journal replay", err)
	}
	if recovered == "" {
		if err := reg.Promote("boot"); err != nil {
			persist.Close()
			return fail("boot promote", err)
		}
	}
	srv := analysis.NewServerFromEngine(e)
	srv.SetReady(true)

	// Per-replica instrumentation: the analysis handlers record into the
	// process-global registry (useless for federation when every replica
	// shares the process), so the federated routes are counted here, into
	// this replica's own registry — the same wiring the observability
	// example uses for multi-replica-in-one-process fleets.
	inner := srv.Handler()
	mux := http.NewServeMux()
	mux.Handle("/v1/diagnose", obs.Instrument(r.reg, "diagnose", inner))
	mux.Handle("/v1/diagnose-batch", obs.Instrument(r.reg, "diagnose_batch", inner))
	mux.Handle("/metrics", obs.ExpositionHandler(r.reg))
	mux.Handle("/", inner)

	hs := &http.Server{Handler: mux}
	r.mu.Lock()
	r.engine, r.srv, r.persist, r.httpSrv, r.up = e, srv, persist, hs, true
	r.mu.Unlock()
	go hs.Serve(ln)
	return nil
}

// url returns the replica's stable base URL.
func (r *replica) url() string { return "http://" + r.addr }

// Engine returns the live engine (nil while down).
func (r *replica) Engine() *serving.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine
}

// checkpoint compacts the replica's state journal — the SIGHUP path.
// No-op while down.
func (r *replica) checkpoint() error {
	r.mu.Lock()
	p := r.persist
	r.mu.Unlock()
	if p == nil {
		return nil
	}
	_, err := p.Checkpoint()
	return err
}

// kill abruptly closes the listener and every active connection — what
// the router sees when the process dies. The engine and journal stay
// allocated (a real crash frees them by exiting; in-process they are
// reclaimed by the restart). Idempotent.
func (r *replica) kill() {
	r.mu.Lock()
	s := r.httpSrv
	r.httpSrv = nil
	r.up = false
	r.mu.Unlock()
	if s != nil {
		s.Close()
	}
}

// restart tears down the killed stack (drain, close journal — the
// in-process stand-in for process exit) and boots a fresh one on the same
// address, replaying the journal. No-op when already up.
func (r *replica) restart() error {
	r.mu.Lock()
	if r.up {
		r.mu.Unlock()
		return nil
	}
	e, srv, persist := r.engine, r.srv, r.persist
	r.engine, r.srv, r.persist = nil, nil, nil
	r.mu.Unlock()

	if srv != nil {
		srv.Close() // drains the engine
	} else if e != nil {
		ctx, cancel := context.WithTimeout(context.Background(), serving.DrainTimeout)
		e.Close(ctx)
		cancel()
	}
	if persist != nil {
		persist.Close()
	}

	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", r.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("soak: replica %d rebind %s: %w", r.index, r.addr, err)
	}
	if err := r.boot(ln); err != nil {
		ln.Close()
		return err
	}
	return nil
}

// shutdown closes everything for good: listener, server (engine drain),
// journal. Idempotent.
func (r *replica) shutdown() error {
	r.kill()
	r.mu.Lock()
	e, srv, persist := r.engine, r.srv, r.persist
	r.engine, r.srv, r.persist = nil, nil, nil
	r.mu.Unlock()
	var firstErr error
	if srv != nil {
		firstErr = srv.Close()
	} else if e != nil {
		ctx, cancel := context.WithTimeout(context.Background(), serving.DrainTimeout)
		firstErr = e.Close(ctx)
		cancel()
	}
	if persist != nil {
		if err := persist.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
