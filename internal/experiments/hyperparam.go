package experiments

import (
	"fmt"
	"strings"
	"time"

	"diagnet/internal/core"
	"diagnet/internal/eval"
	"diagnet/internal/nn"
	"diagnet/internal/probe"
)

// HyperparamRow is one explored configuration (paper §III-C: "We explored
// several combinations of hyperparameters and kept the best configuration
// listed in Table I").
type HyperparamRow struct {
	Label    string
	Ops      int
	Filters  int
	AccKnown float64 // coarse accuracy, degraded test samples, known-region faults
	AccNew   float64 // same, hidden-region faults
	Recall1  float64 // combined Recall@1 of the full pipeline (general model)
	Recall5  float64
	Epochs   int
	Duration time.Duration
}

// HyperparamResult is the exploration table.
type HyperparamResult struct {
	Rows []HyperparamRow
}

// Hyperparams retrains the general model under alternative pooling-op sets
// and filter counts and evaluates each on the lab's test split (general
// model only — no per-service specialization — so rows are comparable at
// equal budget).
func (l *Lab) Hyperparams() *HyperparamResult {
	type variant struct {
		label     string
		ops       []string
		filters   int
		optimizer string
		dropout   float64
	}
	base := l.Profile.Config
	variants := []variant{
		{"Ω={avg}", []string{"avg"}, base.Filters, "sgd", 0},
		{"Ω={min,max}", []string{"min", "max"}, base.Filters, "sgd", 0},
		{"Ω={min,max,avg,var}", []string{"min", "max", "avg", "var"}, base.Filters, "sgd", 0},
		{"Ω=Table I (13 ops)", base.PoolOpNames, base.Filters, "sgd", 0},
		{"f=" + fmt.Sprint(base.Filters/3), base.PoolOpNames, base.Filters / 3, "sgd", 0},
		{"f=" + fmt.Sprint(base.Filters*2), base.PoolOpNames, base.Filters * 2, "sgd", 0},
		{"Adam instead of SGD", base.PoolOpNames, base.Filters, "adam", 0},
		{"dropout 0.2", base.PoolOpNames, base.Filters, "sgd", 0.2},
	}

	res := &HyperparamResult{}
	for vi, v := range variants {
		cfg := base
		cfg.PoolOpNames = v.ops
		cfg.Filters = v.filters
		cfg.Optimizer = v.optimizer
		cfg.Dropout = v.dropout
		l.logf("hyperparams: training variant %d/%d (%s)", vi+1, len(variants), v.label)
		start := time.Now()
		tr := core.TrainGeneral(l.Train, l.Known, cfg)
		row := HyperparamRow{
			Label:    v.label,
			Ops:      len(v.ops),
			Filters:  v.filters,
			Epochs:   tr.History.Epochs(),
			Duration: time.Since(start),
		}

		confKnown := eval.NewConfusion(int(probe.NumFamilies))
		confNew := eval.NewConfusion(int(probe.NumFamilies))
		var ranks []int
		deg := l.Test.Degraded()
		hidden := map[int]bool{}
		for _, r := range l.Hidden {
			hidden[r] = true
		}
		for i := range deg.Samples {
			s := &deg.Samples[i]
			probs := tr.Model.CoarsePredict(s.Features, l.Full)
			pred := nn.Argmax(probs)
			if hidden[s.FaultRegion] {
				confNew.Add(int(s.Family), pred)
			} else {
				confKnown.Add(int(s.Family), pred)
			}
			diag := tr.Model.Diagnose(s.Features, l.Full)
			ranks = append(ranks, eval.RankOf(diag.Final, s.Cause))
		}
		row.AccKnown = confKnown.Accuracy()
		row.AccNew = confNew.Accuracy()
		row.Recall1 = eval.RecallAtK(ranks, 1)
		row.Recall5 = eval.RecallAtK(ranks, 5)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the exploration table.
func (r *HyperparamResult) String() string {
	var b strings.Builder
	b.WriteString("Hyperparameter exploration (general model; paper kept Table I's best)\n")
	t := newTable("variant", "|Ω|", "f", "acc known", "acc new", "R@1", "R@5", "epochs", "train time")
	for _, row := range r.Rows {
		t.addRow(row.Label, fmt.Sprint(row.Ops), fmt.Sprint(row.Filters),
			fmt.Sprintf("%.2f", row.AccKnown), fmt.Sprintf("%.2f", row.AccNew),
			pct(row.Recall1), pct(row.Recall5),
			fmt.Sprint(row.Epochs), row.Duration.Round(time.Millisecond).String())
	}
	b.WriteString(t.String())
	return b.String()
}
