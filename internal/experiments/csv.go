package experiments

import (
	"fmt"
	"strings"
	"time"

	"diagnet/internal/netsim"
)

// CSV emitters: every figure result can render the plottable series behind
// its text report, one line per data point, for external plotting tools.

// CSV renders Fig. 5 as group,model,k,recall rows.
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("group,model,k,recall\n")
	emit := func(group string, data map[string][]float64) {
		for _, model := range Models() {
			for k, v := range data[model] {
				fmt.Fprintf(&b, "%s,%s,%d,%.4f\n", group, model, k+1, v)
			}
		}
	}
	emit("new", r.New)
	emit("known", r.Known)
	emit("combined", r.Combined)
	return b.String()
}

// CSV renders Fig. 6 as axis,group,model,recall rows.
func (r *Fig6Result) CSV() string {
	regions := netsim.DefaultRegions()
	var b strings.Builder
	b.WriteString("axis,group,model,recall\n")
	for _, model := range Models() {
		for _, fam := range r.Families {
			fmt.Fprintf(&b, "family,%s,%s,%.4f\n", fam, model, r.ByFamily[model][fam])
		}
		for _, reg := range r.Regions {
			name := regions[reg].Name
			if r.Hidden[reg] {
				name += "*"
			}
			fmt.Fprintf(&b, "region,%s,%s,%.4f\n", name, model, r.ByRegion[model][reg])
		}
	}
	return b.String()
}

// CSV renders Fig. 7 as split,family,f1 rows plus accuracy summary rows.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("split,metric,family,value\n")
	for _, fam := range r.Families {
		fmt.Fprintf(&b, "new,f1,%s,%.4f\n", fam, r.F1New[fam])
		fmt.Fprintf(&b, "known,f1,%s,%.4f\n", fam, r.F1Known[fam])
	}
	fmt.Fprintf(&b, "new,accuracy,,%.4f\n", r.AccNew)
	fmt.Fprintf(&b, "new,accuracy_stderr,,%.4f\n", r.AccNewStdErr)
	fmt.Fprintf(&b, "known,accuracy,,%.4f\n", r.AccKnown)
	fmt.Fprintf(&b, "known,accuracy_stderr,,%.4f\n", r.AccKnownStd)
	return b.String()
}

// CSV renders Fig. 8 as model,regions,recall5 rows.
func (r *Fig8Result) CSV() string {
	var b strings.Builder
	b.WriteString("model,active_regions,recall5\n")
	for _, model := range Models() {
		for li, lv := range r.Levels {
			fmt.Fprintf(&b, "%s,%d,%.4f\n", model, lv, r.Recall[model][li])
		}
	}
	return b.String()
}

// CSV renders Fig. 9's learning curves as model,epoch,split,loss rows.
func (r *Fig9Result) CSV() string {
	var b strings.Builder
	b.WriteString("model,epoch,split,loss\n")
	for e, v := range r.GeneralTrainLoss {
		fmt.Fprintf(&b, "general,%d,train,%.5f\n", e, v)
	}
	for e, v := range r.GeneralValLoss {
		fmt.Fprintf(&b, "general,%d,val,%.5f\n", e, v)
	}
	for _, svc := range r.Services {
		for e, v := range r.SpecTrain[svc] {
			fmt.Fprintf(&b, "svc%d,%d,train,%.5f\n", svc, e, v)
		}
		for e, v := range r.SpecVal[svc] {
			fmt.Fprintf(&b, "svc%d,%d,val,%.5f\n", svc, e, v)
		}
	}
	fmt.Fprintf(&b, "# total_params,%d\n", r.TotalParams)
	fmt.Fprintf(&b, "# trainable_spec_params,%d\n", r.TrainableSpecParams)
	fmt.Fprintf(&b, "# general_train_ms,%d\n", r.GeneralTrainTime/time.Millisecond)
	fmt.Fprintf(&b, "# specialize_mean_ms,%d\n", r.SpecializeTimeMean/time.Millisecond)
	fmt.Fprintf(&b, "# inference_mean_us,%d\n", r.InferenceMean/time.Microsecond)
	return b.String()
}

// CSV renders Fig. 10 as model,ground_truth,prediction,fraction rows.
func (r *Fig10Result) CSV() string {
	var b strings.Builder
	b.WriteString("model,ground_truth,prediction,fraction\n")
	emit := func(model string, cells map[Fig10GroundTruth]*Fig10Cell) {
		for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
			c := cells[gt]
			if c.N == 0 {
				continue
			}
			n := float64(c.N)
			fmt.Fprintf(&b, "%s,%s,BEAU,%.4f\n", model, gt, float64(c.PredBeau)/n)
			fmt.Fprintf(&b, "%s,%s,GRAV,%.4f\n", model, gt, float64(c.PredGrav)/n)
			fmt.Fprintf(&b, "%s,%s,other,%.4f\n", model, gt, float64(c.PredOther)/n)
			fmt.Fprintf(&b, "%s,%s,recall,%.4f\n", model, gt, c.Recall)
		}
	}
	emit("general", r.General)
	emit("specialized", r.Specialized)
	return b.String()
}

// CSV renders the ablation as variant,group,k,recall rows.
func (r *AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("variant,group,k,recall\n")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%s,new,1,%.4f\n", v, r.New1[v])
		fmt.Fprintf(&b, "%s,new,5,%.4f\n", v, r.New5[v])
		fmt.Fprintf(&b, "%s,known,1,%.4f\n", v, r.Known1[v])
		fmt.Fprintf(&b, "%s,known,5,%.4f\n", v, r.Known5[v])
	}
	return b.String()
}

// CSV renders the hyperparameter sweep.
func (r *HyperparamResult) CSV() string {
	var b strings.Builder
	b.WriteString("variant,ops,filters,acc_known,acc_new,recall1,recall5,epochs,train_ms\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%q,%d,%d,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
			row.Label, row.Ops, row.Filters, row.AccKnown, row.AccNew,
			row.Recall1, row.Recall5, row.Epochs, row.Duration/time.Millisecond)
	}
	return b.String()
}
