package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/eval"
)

// Fig5Result reproduces Fig. 5: Recall@k (k = 1..5) for faults near new
// landmarks (a) and near known landmarks (b), for the three models, plus
// the combined Recall@1 headline (§IV-C: 73.9 % for DiagNet).
type Fig5Result struct {
	MaxK         int
	New          map[string][]float64 // model → recall@1..maxK
	Known        map[string][]float64
	Combined     map[string][]float64
	NNew, NKnown int
	// R1CI is the 95 % bootstrap confidence interval of the combined
	// Recall@1 per model.
	R1CI map[string][2]float64
}

// Fig5 evaluates all three models on every degraded test sample.
func (l *Lab) Fig5() *Fig5Result {
	const maxK = 5
	res := &Fig5Result{
		MaxK:     maxK,
		New:      map[string][]float64{},
		Known:    map[string][]float64{},
		Combined: map[string][]float64{},
	}
	deg := l.Test.Degraded()
	ranksNew := map[string][]int{}
	ranksKnown := map[string][]int{}
	for i := range deg.Samples {
		s := &deg.Samples[i]
		isNew := l.IsNewFault(s)
		for _, model := range Models() {
			rank := eval.RankOf(l.Scores(model, s), s.Cause)
			if isNew {
				ranksNew[model] = append(ranksNew[model], rank)
			} else {
				ranksKnown[model] = append(ranksKnown[model], rank)
			}
		}
	}
	res.R1CI = map[string][2]float64{}
	for _, model := range Models() {
		res.New[model] = eval.RecallCurve(ranksNew[model], maxK)
		res.Known[model] = eval.RecallCurve(ranksKnown[model], maxK)
		all := append(append([]int(nil), ranksNew[model]...), ranksKnown[model]...)
		res.Combined[model] = eval.RecallCurve(all, maxK)
		lo, hi := eval.BootstrapRecallCI(all, 1, 1000, 0.05, l.Profile.DataSeed)
		res.R1CI[model] = [2]float64{lo, hi}
	}
	res.NNew = len(ranksNew[ModelDiagNet])
	res.NKnown = len(ranksKnown[ModelDiagNet])
	return res
}

// String renders the figure as two tables plus the headline.
func (r *Fig5Result) String() string {
	var b strings.Builder
	ks := make([]string, r.MaxK)
	for k := range ks {
		ks[k] = fmt.Sprintf("R@%d", k+1)
	}
	render := func(title string, data map[string][]float64, n int) {
		fmt.Fprintf(&b, "%s (n=%d)\n", title, n)
		t := newTable(append([]string{"model"}, ks...)...)
		for _, model := range Models() {
			cells := []string{model}
			for _, v := range data[model] {
				cells = append(cells, pct(v))
			}
			t.addRow(cells...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	render("Fig. 5 (a) — faults near NEW landmarks", r.New, r.NNew)
	render("Fig. 5 (b) — faults near KNOWN landmarks", r.Known, r.NKnown)
	render("Fig. 5 combined", r.Combined, r.NNew+r.NKnown)
	ci := r.R1CI[ModelDiagNet]
	fmt.Fprintf(&b, "Headline: DIAGNET combined Recall@1 = %s, 95%% CI [%s, %s] (paper: 73.9%%)\n",
		strings.TrimSpace(pct(r.Combined[ModelDiagNet][0])),
		strings.TrimSpace(pct(ci[0])), strings.TrimSpace(pct(ci[1])))
	// The paper's test mix had 23 %% of degraded samples near hidden
	// landmarks; ours differs, so also report the combined recall
	// reweighted to that mix.
	mix := 0.23*r.New[ModelDiagNet][0] + 0.77*r.Known[ModelDiagNet][0]
	fmt.Fprintf(&b, "          (reweighted to the paper's 23%%/77%% new/known mix: %s)\n",
		strings.TrimSpace(pct(mix)))
	return b.String()
}
