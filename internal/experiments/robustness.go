package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/stats"
)

// RobustnessResult reports the across-seed variability of the headline
// metrics: the paper gives point estimates from one testbed campaign; this
// experiment quantifies how much our numbers move when the world, dataset
// and training seeds all change.
type RobustnessResult struct {
	Seeds int
	// Combined R@1 and new-landmark R@5 per model: mean and std across
	// seeds.
	R1Mean, R1Std     map[string]float64
	NewR5Mean, NewStd map[string]float64
}

// Robustness builds one reduced pipeline per seed and aggregates Fig. 5's
// headline metrics.
func Robustness(p Profile, seeds int, log func(string, ...any)) *RobustnessResult {
	if seeds <= 0 {
		seeds = 3
	}
	res := &RobustnessResult{
		Seeds:  seeds,
		R1Mean: map[string]float64{}, R1Std: map[string]float64{},
		NewR5Mean: map[string]float64{}, NewStd: map[string]float64{},
	}
	acc := map[string]*stats.Online{}
	accNew := map[string]*stats.Online{}
	for _, m := range Models() {
		acc[m] = &stats.Online{}
		accNew[m] = &stats.Online{}
	}
	for s := 0; s < seeds; s++ {
		sub := p
		sub.Name = fmt.Sprintf("%s/seed%d", p.Name, s)
		sub.NominalSamples = p.Fig8Nominal
		sub.FaultSamples = p.Fig8Fault
		sub.WorldSeed = p.WorldSeed + int64(s)*101
		sub.DataSeed = p.DataSeed + int64(s)*103
		sub.SplitSeed = p.SplitSeed + int64(s)*107
		sub.Config.Seed = p.Config.Seed + int64(s)*109
		if log != nil {
			log("robustness: pipeline for seed set %d/%d", s+1, seeds)
		}
		lab := NewLab(sub, log)
		fig5 := lab.Fig5()
		for _, m := range Models() {
			acc[m].Add(fig5.Combined[m][0])
			accNew[m].Add(fig5.New[m][4])
		}
	}
	for _, m := range Models() {
		res.R1Mean[m] = acc[m].Mean()
		res.R1Std[m] = acc[m].StdDev()
		res.NewR5Mean[m] = accNew[m].Mean()
		res.NewStd[m] = accNew[m].StdDev()
	}
	return res
}

// String renders the across-seed table.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Across-seed robustness (%d independent worlds/datasets/trainings)\n", r.Seeds)
	t := newTable("model", "combined R@1", "±", "new R@5", "±")
	for _, m := range Models() {
		t.addRow(m, pct(r.R1Mean[m]), fmt.Sprintf("%.1fpp", 100*r.R1Std[m]),
			pct(r.NewR5Mean[m]), fmt.Sprintf("%.1fpp", 100*r.NewStd[m]))
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV renders the across-seed results.
func (r *RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("model,metric,mean,std\n")
	for _, m := range Models() {
		fmt.Fprintf(&b, "%s,combined_recall1,%.4f,%.4f\n", m, r.R1Mean[m], r.R1Std[m])
		fmt.Fprintf(&b, "%s,new_recall5,%.4f,%.4f\n", m, r.NewR5Mean[m], r.NewStd[m])
	}
	return b.String()
}
