package experiments

import (
	"strings"
	"testing"
)

func TestAvailabilitySweep(t *testing.T) {
	l := quickLab(t)
	r := l.Availability()
	if len(r.Ells) == 0 || r.Ells[0] != 10 {
		t.Fatalf("ells %v", r.Ells)
	}
	// Coverage: full layout represents everything; it shrinks with ℓ.
	if r.Coverage[0] < 0.999 {
		t.Fatalf("full-layout coverage %v", r.Coverage[0])
	}
	// Coverage shrinks with ℓ only in expectation (subsets are random per
	// level); require the smallest ℓ to cover strictly less than full.
	last := r.Coverage[len(r.Coverage)-1]
	if last >= r.Coverage[0] {
		t.Fatalf("coverage did not shrink: %v", r.Coverage)
	}
	for _, c := range r.Coverage {
		if c < 0 || c > 1 {
			t.Fatalf("coverage out of range: %v", r.Coverage)
		}
	}
	for _, model := range Models() {
		for i, v := range r.Recall5[model] {
			if v < 0 || v > 1 {
				t.Fatalf("%s recall[%d] = %v", model, i, v)
			}
		}
	}
	// DiagNet must stay usable at reduced availability.
	if r.Recall5[ModelDiagNet][1] < 0.3 {
		t.Fatalf("DiagNet Recall@5 at ℓ=7 is %v", r.Recall5[ModelDiagNet][1])
	}
	if r.String() == "" || r.CSV() == "" {
		t.Fatal("render empty")
	}
}

func TestPerService(t *testing.T) {
	l := quickLab(t)
	r := l.PerService()
	if len(r.Rows) == 0 {
		t.Fatal("no services evaluated")
	}
	for _, row := range r.Rows {
		if row.N < 5 {
			t.Fatalf("%s: below minimum support", row.Name)
		}
		for _, v := range []float64{row.GeneralR1, row.SpecialR1, row.GeneralMRR, row.SpecialMRR} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: metric out of range %v", row.Name, v)
			}
		}
	}
	if !strings.Contains(r.String(), "specialized R@1") || r.CSV() == "" {
		t.Fatal("render incomplete")
	}
}

func TestDisentangleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("two extra pipelines")
	}
	p := Quick()
	r := Disentangle(p, nil)
	for _, cond := range []string{"clean", "noisy"} {
		for _, model := range Models() {
			v := r.Recall[cond][model]
			if v[0] < 0 || v[0] > 1 || v[1] < v[0] {
				t.Fatalf("%s/%s recall %v", cond, model, v)
			}
		}
	}
	if r.String() == "" || r.CSV() == "" {
		t.Fatal("render empty")
	}
}

func TestRobustnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("one pipeline per seed")
	}
	p := Quick()
	r := Robustness(p, 2, nil)
	if r.Seeds != 2 {
		t.Fatalf("seeds %d", r.Seeds)
	}
	for _, m := range Models() {
		if r.R1Mean[m] < 0 || r.R1Mean[m] > 1 || r.R1Std[m] < 0 {
			t.Fatalf("%s stats out of range: %v ± %v", m, r.R1Mean[m], r.R1Std[m])
		}
	}
	if r.String() == "" || r.CSV() == "" {
		t.Fatal("render empty")
	}
}

func TestHyperparamsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains per variant")
	}
	l := quickLab(t)
	r := l.Hyperparams()
	if len(r.Rows) < 5 {
		t.Fatalf("%d variants", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Epochs == 0 || row.Duration == 0 {
			t.Fatalf("row %+v incomplete", row)
		}
		if row.Recall5 < row.Recall1 {
			t.Fatalf("row %s: recall curve inverted", row.Label)
		}
	}
	if r.String() == "" || r.CSV() == "" {
		t.Fatal("render empty")
	}
}
