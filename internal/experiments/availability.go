package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/eval"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/stats"
)

// AvailabilityResult quantifies root-cause extensibility in the *shrinking*
// direction (§II-D): the same trained models diagnose with only a subset
// of landmarks responding (maintenance, outages, probing budget).
type AvailabilityResult struct {
	Ells []int // landmarks available at inference
	// Coverage[i] is the fraction of degraded test samples whose root
	// cause is still representable with Ells[i] landmarks (local causes
	// always are; remote causes need their landmark present).
	Coverage []float64
	// Recall5[model][i] is Recall@5 over representable samples, averaged
	// over subset draws.
	Recall5 map[string][]float64
	Draws   int
}

// Availability diagnoses the degraded test set under random landmark
// subsets of decreasing size, using the already-trained lab models.
func (l *Lab) Availability() *AvailabilityResult {
	ells := []int{10, 7, 5, 3}
	const draws = 3
	res := &AvailabilityResult{
		Ells:     ells,
		Coverage: make([]float64, len(ells)),
		Recall5:  map[string][]float64{},
		Draws:    draws,
	}
	for _, model := range Models() {
		res.Recall5[model] = make([]float64, len(ells))
	}
	deg := l.Test.Degraded()
	full := l.Full

	for ei, ell := range ells {
		var coverage stats.Online
		sums := map[string]float64{}
		counts := map[string]int{}
		for draw := 0; draw < draws; draw++ {
			rng := stats.NewRand(l.Profile.DataSeed+900, int64(ei*10+draw))
			perm := rng.Perm(netsim.NumRegions)
			layout := probe.NewLayout(perm[:ell])

			ranks := map[string][]int{}
			representable, total := 0, 0
			for i := range deg.Samples {
				s := &deg.Samples[i]
				total++
				// Re-index the cause under the sub-layout.
				cause, ok := subCause(full, layout, s.Cause)
				if !ok {
					continue
				}
				representable++
				features := full.Project(s.Features, layout)
				m := l.ModelFor(s.Service)
				ranks[ModelDiagNet] = append(ranks[ModelDiagNet],
					eval.RankOf(m.Diagnose(features, layout).Final, cause))
				// Baselines evaluate on zero-filled full vectors but are
				// ranked over the sub-layout's causes for comparability.
				rfFull := l.General.Model.Aux.Scores(zeroFillFull(full, layout, features))
				nbFull := l.NB.Scores(zeroFillFull(full, layout, features))
				ranks[ModelRF] = append(ranks[ModelRF], eval.RankOf(projectScores(full, layout, rfFull), cause))
				ranks[ModelNB] = append(ranks[ModelNB], eval.RankOf(projectScores(full, layout, nbFull), cause))
			}
			coverage.Add(float64(representable) / float64(total))
			for model, rs := range ranks {
				sums[model] += eval.RecallAtK(rs, 5)
				counts[model]++
			}
		}
		res.Coverage[ei] = coverage.Mean()
		for _, model := range Models() {
			if counts[model] > 0 {
				res.Recall5[model][ei] = sums[model] / float64(counts[model])
			}
		}
	}
	return res
}

// subCause maps a full-layout cause index onto a sub-layout, reporting
// whether it is representable there.
func subCause(full, sub probe.Layout, cause int) (int, bool) {
	if full.IsLocal(cause) {
		return sub.LocalIndex(cause - full.NumLandmarks()*int(probe.NumMetrics)), true
	}
	region := full.Landmarks[cause/int(probe.NumMetrics)]
	pos := sub.LandmarkPos(region)
	if pos < 0 {
		return -1, false
	}
	return sub.FeatureIndex(pos, probe.Metric(cause%int(probe.NumMetrics))), true
}

// zeroFillFull expands sub-layout features to the full layout with zeros
// for missing landmarks (the baselines' missing-value policy).
func zeroFillFull(full, sub probe.Layout, features []float64) []float64 {
	out := make([]float64, full.NumFeatures())
	for pos, region := range full.Landmarks {
		if lp := sub.LandmarkPos(region); lp >= 0 {
			for m := 0; m < int(probe.NumMetrics); m++ {
				out[full.FeatureIndex(pos, probe.Metric(m))] = features[sub.FeatureIndex(lp, probe.Metric(m))]
			}
		}
	}
	for li := 0; li < probe.NumLocal; li++ {
		out[full.LocalIndex(li)] = features[sub.LocalIndex(li)]
	}
	return out
}

// projectScores extracts a full-layout score vector onto the sub-layout.
func projectScores(full, sub probe.Layout, scores []float64) []float64 {
	out := make([]float64, sub.NumFeatures())
	for j := range out {
		if sub.IsLocal(j) {
			out[j] = scores[full.LocalIndex(j-sub.NumLandmarks()*int(probe.NumMetrics))]
			continue
		}
		region := sub.Landmarks[j/int(probe.NumMetrics)]
		out[j] = scores[full.FeatureIndex(full.LandmarkPos(region), probe.Metric(j%int(probe.NumMetrics)))]
	}
	return out
}

// String renders the availability table.
func (r *AvailabilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Landmark availability (§II-D): Recall@5 on representable causes, avg over %d subset draws\n", r.Draws)
	headers := []string{"model"}
	for i, ell := range r.Ells {
		headers = append(headers, fmt.Sprintf("ℓ=%d (cov %.0f%%)", ell, 100*r.Coverage[i]))
	}
	t := newTable(headers...)
	for _, model := range Models() {
		cells := []string{model}
		for _, v := range r.Recall5[model] {
			cells = append(cells, pct(v))
		}
		t.addRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV renders the availability sweep.
func (r *AvailabilityResult) CSV() string {
	var b strings.Builder
	b.WriteString("model,landmarks,coverage,recall5\n")
	for _, model := range Models() {
		for i, ell := range r.Ells {
			fmt.Fprintf(&b, "%s,%d,%.4f,%.4f\n", model, ell, r.Coverage[i], r.Recall5[model][i])
		}
	}
	return b.String()
}
