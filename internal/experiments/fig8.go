package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/eval"
	"diagnet/internal/netsim"
	"diagnet/internal/stats"
)

// Fig8Result reproduces Fig. 8: Recall@5 for faults near new landmarks as
// the diversity of participating clients grows (number of regions with
// active clients).
type Fig8Result struct {
	K      int
	Levels []int
	// Recall[model][level index], averaged over region combinations.
	Recall map[string][]float64
	Combos int
}

// Fig8 retrains a full pipeline (DiagNet + both baselines) per diversity
// level and region combination, then averages Recall@5 on new-landmark
// faults. The paper measured every combination of active clients; we
// sample Profile.Fig8Combos seeded combinations per level.
func (l *Lab) Fig8() *Fig8Result {
	p := l.Profile
	res := &Fig8Result{
		K:      5,
		Levels: p.Fig8Levels,
		Recall: map[string][]float64{},
		Combos: p.Fig8Combos,
	}
	for _, model := range Models() {
		res.Recall[model] = make([]float64, len(p.Fig8Levels))
	}

	for li, level := range p.Fig8Levels {
		sums := map[string]float64{}
		counts := map[string]int{}
		for combo := 0; combo < p.Fig8Combos; combo++ {
			l.logf("fig8: diversity %d clients, combo %d/%d", level, combo+1, p.Fig8Combos)
			rng := stats.NewRand(p.DataSeed+100, int64(li*97+combo))
			perm := rng.Perm(netsim.NumRegions)
			active := append([]int(nil), perm[:level]...)

			recalls := l.fig8Pipeline(active, int64(combo))
			for model, r := range recalls {
				sums[model] += r
				counts[model]++
			}
		}
		for _, model := range Models() {
			if counts[model] > 0 {
				res.Recall[model][li] = sums[model] / float64(counts[model])
			}
		}
	}
	return res
}

// fig8Pipeline trains all three models on a dataset restricted to the
// active client regions and returns Recall@5 on new-landmark faults.
func (l *Lab) fig8Pipeline(active []int, stream int64) map[string]float64 {
	p := l.Profile
	data := dataset.Generate(dataset.GenConfig{
		World:          l.World,
		ClientRegions:  active,
		NominalSamples: p.Fig8Nominal,
		FaultSamples:   p.Fig8Fault,
		Seed:           p.DataSeed + 31*stream + 7,
	})
	train, test := data.Split(0.8, l.Hidden, p.SplitSeed+stream)
	if train.Len() == 0 {
		return nil
	}
	general := core.TrainGeneral(train, l.Known, p.Config)
	// Specialize for the services that actually appear in the test split.
	specialized := map[int]*core.Model{}
	svcSeen := map[int]bool{}
	for i := range test.Samples {
		if test.Samples[i].Degraded {
			svcSeen[test.Samples[i].Service] = true
		}
	}
	for svc := range svcSeen {
		if train.FilterService(svc).Len() > 0 {
			specialized[svc] = general.Model.Specialize(train, svc).Model
		}
	}
	nb := trainNB(train, l.Known)

	ranks := map[string][]int{}
	deg := test.Degraded()
	for i := range deg.Samples {
		s := &deg.Samples[i]
		if !l.IsNewFault(s) {
			continue
		}
		m := general.Model
		if sm, ok := specialized[s.Service]; ok {
			m = sm
		}
		ranks[ModelDiagNet] = append(ranks[ModelDiagNet], eval.RankOf(m.Diagnose(s.Features, l.Full).Final, s.Cause))
		ranks[ModelRF] = append(ranks[ModelRF], eval.RankOf(general.Model.Aux.Scores(s.Features), s.Cause))
		ranks[ModelNB] = append(ranks[ModelNB], eval.RankOf(nb.Scores(s.Features), s.Cause))
	}
	out := map[string]float64{}
	for model, rs := range ranks {
		out[model] = eval.RecallAtK(rs, 5)
	}
	return out
}

// String renders the sweep as a table.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — Recall@%d for new-landmark faults vs client diversity (avg over %d combos)\n", r.K, r.Combos)
	headers := []string{"model"}
	for _, lv := range r.Levels {
		headers = append(headers, fmt.Sprintf("%d regions", lv))
	}
	t := newTable(headers...)
	for _, model := range Models() {
		cells := []string{model}
		for _, v := range r.Recall[model] {
			cells = append(cells, pct(v))
		}
		t.addRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}
