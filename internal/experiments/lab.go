// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the simulated deployment: Fig. 5 (Recall@k,
// new vs known landmarks, three models), Fig. 6 (recall per fault family
// and region), Fig. 7 (coarse classifier F1), Fig. 8 (client diversity),
// Fig. 9 (training cost and transferability) and Fig. 10 (simultaneous
// faults), plus an ablation study of DiagNet's pipeline stages.
package experiments

import (
	"fmt"
	"time"

	"diagnet/internal/bayes"
	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/forest"
	"diagnet/internal/netsim"
	"diagnet/internal/nn"
	"diagnet/internal/probe"
	"diagnet/internal/services"
)

// Profile sizes an experiment run.
type Profile struct {
	Name string
	// Main dataset sizes (the paper collected 213k nominal + 30k faulty).
	NominalSamples int
	FaultSamples   int
	// Fig. 8 re-trains a pipeline per diversity level; its datasets are
	// sized separately and averaged over Fig8Combos region subsets.
	Fig8Nominal, Fig8Fault int
	Fig8Levels             []int
	Fig8Combos             int
	// Fig. 10 samples per (service, ground-truth) cell.
	Fig10PerService int
	Config          core.Config
	WorldSeed       int64
	DataSeed        int64
	SplitSeed       int64
	// BackgroundAnomalies enables spurious link anomalies in the world
	// (the §II-B disentanglement stressor).
	BackgroundAnomalies bool
}

// Quick is a CI-sized profile with a reduced architecture: it exercises
// every experiment in seconds.
func Quick() Profile {
	cfg := core.DefaultConfig()
	cfg.Filters = 8
	cfg.Hidden = []int{48, 24}
	cfg.Epochs = 10
	cfg.SpecializeEpochs = 4
	cfg.Forest = forest.Config{Trees: 15, Tree: forest.TreeConfig{MaxDepth: 8}}
	return Profile{
		Name:           "quick",
		NominalSamples: 900, FaultSamples: 2000,
		Fig8Nominal: 300, Fig8Fault: 700,
		Fig8Levels:      []int{2, 6, 10},
		Fig8Combos:      1,
		Fig10PerService: 6,
		Config:          cfg,
		WorldSeed:       1, DataSeed: 11, SplitSeed: 13,
	}
}

// Default uses the paper's Table I architecture on a laptop-scale dataset;
// a full -all run takes minutes on one core.
func Default() Profile {
	return Profile{
		Name:           "default",
		NominalSamples: 4000, FaultSamples: 7000,
		Fig8Nominal: 900, Fig8Fault: 2200,
		Fig8Levels:      []int{1, 2, 4, 7, 10},
		Fig8Combos:      2,
		Fig10PerService: 30,
		Config:          core.DefaultConfig(),
		WorldSeed:       1, DataSeed: 11, SplitSeed: 13,
	}
}

// Paper matches the paper's dataset scale (213k nominal + 30k faulty
// samples); expect a long run.
func Paper() Profile {
	p := Default()
	p.Name = "paper"
	p.NominalSamples = 213000
	p.FaultSamples = 30000
	p.Fig8Nominal, p.Fig8Fault = 4000, 8000
	p.Fig10PerService = 40
	return p
}

// Lab holds one fully trained pipeline: world, dataset, split, the general
// and per-service DiagNet models, and both baselines.
type Lab struct {
	Profile Profile
	World   *netsim.World
	Full    probe.Layout
	// Known lists the landmark regions visible during training; Hidden
	// the paper's hidden landmarks; HiddenFault the hidden regions faults
	// are injected in (GRAV, SEAT).
	Known       []int
	Hidden      []int
	HiddenFault []int

	Data, Train, Test *dataset.Dataset

	General     *core.TrainResult
	Specialized map[int]*core.Model
	SpecHist    map[int]*nn.History
	NB          *bayes.Model

	// Wall-clock costs (§IV-F).
	GeneralTrainTime   time.Duration
	SpecializeTimeMean time.Duration

	logf func(string, ...any)
}

// KnownRegionsOf returns all regions minus the hidden landmark set.
func KnownRegionsOf(hidden []int) []int {
	h := map[int]bool{}
	for _, r := range hidden {
		h[r] = true
	}
	var known []int
	for r := 0; r < netsim.NumRegions; r++ {
		if !h[r] {
			known = append(known, r)
		}
	}
	return known
}

// NewLab builds the world, generates and splits the dataset, trains the
// general model, all per-service specialized models, and the Naive Bayes
// baseline. log receives progress lines (nil silences them).
func NewLab(p Profile, log func(string, ...any)) *Lab {
	if log == nil {
		log = func(string, ...any) {}
	}
	l := &Lab{
		Profile:     p,
		World:       netsim.NewWorld(netsim.Config{Seed: p.WorldSeed, BackgroundAnomalies: p.BackgroundAnomalies}),
		Full:        probe.FullLayout(),
		Hidden:      netsim.HiddenLandmarks(),
		Specialized: map[int]*core.Model{},
		SpecHist:    map[int]*nn.History{},
		logf:        log,
	}
	l.Known = KnownRegionsOf(l.Hidden)
	hiddenSet := map[int]bool{}
	for _, r := range l.Hidden {
		hiddenSet[r] = true
	}
	for _, r := range netsim.FaultRegions() {
		if hiddenSet[r] {
			l.HiddenFault = append(l.HiddenFault, r)
		}
	}

	log("generating dataset (%d nominal + %d fault samples)...", p.NominalSamples, p.FaultSamples)
	l.Data = dataset.Generate(dataset.GenConfig{
		World:          l.World,
		NominalSamples: p.NominalSamples,
		FaultSamples:   p.FaultSamples,
		Seed:           p.DataSeed,
	})
	l.Train, l.Test = l.Data.Split(0.8, l.Hidden, p.SplitSeed)
	c := l.Data.Count(l.Hidden)
	tc := l.Test.Count(l.Hidden)
	log("dataset: %d samples (%d nominal, %d degraded); test degraded %d of which %d (%.0f%%) involve hidden faults",
		c.Total, c.Nominal, c.Degraded, tc.Degraded, tc.HiddenFaultDegraded,
		100*float64(tc.HiddenFaultDegraded)/float64(max(1, tc.Degraded)))

	log("training general DiagNet model...")
	start := time.Now()
	l.General = core.TrainGeneral(l.Train, l.Known, p.Config)
	l.GeneralTrainTime = time.Since(start)
	log("general model: %d epochs in %v", l.General.History.Epochs(), l.GeneralTrainTime.Round(time.Millisecond))

	var specTotal time.Duration
	for _, svc := range services.Catalog() {
		if l.Train.FilterService(svc.ID).Len() == 0 {
			continue
		}
		t0 := time.Now()
		res := l.General.Model.Specialize(l.Train, svc.ID)
		specTotal += time.Since(t0)
		l.Specialized[svc.ID] = res.Model
		l.SpecHist[svc.ID] = res.History
	}
	if n := len(l.Specialized); n > 0 {
		l.SpecializeTimeMean = specTotal / time.Duration(n)
	}
	log("specialized %d service models (mean %v each)", len(l.Specialized), l.SpecializeTimeMean.Round(time.Millisecond))

	l.NB = trainNB(l.Train, l.Known)
	log("baselines ready")
	return l
}

// trainNB fits the extensible Naive Bayes baseline on the degraded
// training samples.
func trainNB(train *dataset.Dataset, knownRegions []int) *bayes.Model {
	layout := train.Layout
	known := map[int]bool{}
	for _, r := range knownRegions {
		known[r] = true
	}
	mask := layout.KnownFeatureMask(known)
	fams := make([]int, layout.NumFeatures())
	for i := range fams {
		fams[i] = int(layout.FamilyOf(i))
	}
	deg := train.Degraded()
	x := make([][]float64, deg.Len())
	labels := make([]int, deg.Len())
	for i := range deg.Samples {
		x[i] = deg.Samples[i].Features
		labels[i] = deg.Samples[i].Cause
	}
	return bayes.Fit(x, labels, layout.NumFeatures(), fams, mask, bayes.Config{})
}

// ModelFor returns the specialized model for a service, falling back to the
// general model.
func (l *Lab) ModelFor(service int) *core.Model {
	if m, ok := l.Specialized[service]; ok {
		return m
	}
	return l.General.Model
}

// Model names used across figures.
const (
	ModelDiagNet = "DIAGNET"
	ModelRF      = "RANDOM FOREST"
	ModelNB      = "NAIVE BAYES"
)

// Models lists the three compared systems.
func Models() []string { return []string{ModelDiagNet, ModelRF, ModelNB} }

// Scores returns the per-feature root-cause scores of a model for a test
// sample (full layout).
func (l *Lab) Scores(model string, s *dataset.Sample) []float64 {
	switch model {
	case ModelDiagNet:
		return l.ModelFor(s.Service).Diagnose(s.Features, l.Full).Final
	case ModelRF:
		return l.General.Model.Aux.Scores(s.Features)
	case ModelNB:
		return l.NB.Scores(s.Features)
	default:
		panic(fmt.Sprintf("experiments: unknown model %q", model))
	}
}

// IsNewFault reports whether the sample's root-cause feature belongs to a
// hidden ("new") landmark. Client-side faults map to local features, which
// every model knows, so they count as known even when the client sits in a
// hidden region.
func (l *Lab) IsNewFault(s *dataset.Sample) bool {
	if s.Cause < 0 || l.Full.IsLocal(s.Cause) {
		return false
	}
	region := l.Full.Landmarks[s.Cause/int(probe.NumMetrics)]
	for _, r := range l.Hidden {
		if region == r {
			return true
		}
	}
	return false
}
