package experiments

import (
	"fmt"
	"sort"
	"strings"

	"diagnet/internal/eval"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
)

// Fig6Result reproduces Fig. 6: recall per fault family (top) and per
// fault region (bottom) for the three models. Hidden regions carry a ★.
type Fig6Result struct {
	K int // recall cutoff used per group
	// ByFamily[model][family] and ByRegion[model][region name].
	Families []probe.Family
	Regions  []int
	ByFamily map[string]map[probe.Family]float64
	ByRegion map[string]map[int]float64
	Support  map[string]int // per group label
	Hidden   map[int]bool
}

// Fig6 groups degraded test samples by the root cause's fault family and
// region and computes Recall@1 per group.
func (l *Lab) Fig6() *Fig6Result {
	const k = 1
	res := &Fig6Result{
		K:        k,
		ByFamily: map[string]map[probe.Family]float64{},
		ByRegion: map[string]map[int]float64{},
		Support:  map[string]int{},
		Hidden:   map[int]bool{},
	}
	for _, r := range l.Hidden {
		res.Hidden[r] = true
	}
	deg := l.Test.Degraded()

	famRanks := map[string]map[probe.Family][]int{}
	regRanks := map[string]map[int][]int{}
	for _, model := range Models() {
		famRanks[model] = map[probe.Family][]int{}
		regRanks[model] = map[int][]int{}
	}
	famSeen := map[probe.Family]bool{}
	regSeen := map[int]bool{}
	for i := range deg.Samples {
		s := &deg.Samples[i]
		famSeen[s.Family] = true
		regSeen[s.FaultRegion] = true
		for _, model := range Models() {
			rank := eval.RankOf(l.Scores(model, s), s.Cause)
			famRanks[model][s.Family] = append(famRanks[model][s.Family], rank)
			regRanks[model][s.FaultRegion] = append(regRanks[model][s.FaultRegion], rank)
		}
	}
	for fam := range famSeen {
		res.Families = append(res.Families, fam)
	}
	sort.Slice(res.Families, func(a, b int) bool { return res.Families[a] < res.Families[b] })
	for reg := range regSeen {
		res.Regions = append(res.Regions, reg)
	}
	sort.Ints(res.Regions)

	for _, model := range Models() {
		res.ByFamily[model] = map[probe.Family]float64{}
		res.ByRegion[model] = map[int]float64{}
		for _, fam := range res.Families {
			res.ByFamily[model][fam] = eval.RecallAtK(famRanks[model][fam], k)
			res.Support["fam:"+fam.String()] = len(famRanks[model][fam])
		}
		for _, reg := range res.Regions {
			res.ByRegion[model][reg] = eval.RecallAtK(regRanks[model][reg], k)
			res.Support[fmt.Sprintf("reg:%d", reg)] = len(regRanks[model][reg])
		}
	}
	return res
}

// String renders both charts as tables.
func (r *Fig6Result) String() string {
	regions := netsim.DefaultRegions()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 (top) — Recall@%d per fault family\n", r.K)
	t := newTable(append([]string{"model"}, famHeaders(r)...)...)
	for _, model := range Models() {
		cells := []string{model}
		for _, fam := range r.Families {
			cells = append(cells, pct(r.ByFamily[model][fam]))
		}
		t.addRow(cells...)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')

	fmt.Fprintf(&b, "Fig. 6 (bottom) — Recall@%d per fault region (★ = hidden during training)\n", r.K)
	var regHeaders []string
	for _, reg := range r.Regions {
		name := regions[reg].Name
		if r.Hidden[reg] {
			name += "★"
		}
		regHeaders = append(regHeaders, name)
	}
	t = newTable(append([]string{"model"}, regHeaders...)...)
	for _, model := range Models() {
		cells := []string{model}
		for _, reg := range r.Regions {
			cells = append(cells, pct(r.ByRegion[model][reg]))
		}
		t.addRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

func famHeaders(r *Fig6Result) []string {
	var hs []string
	for _, fam := range r.Families {
		hs = append(hs, fam.String())
	}
	return hs
}
