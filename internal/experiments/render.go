package experiments

import (
	"fmt"
	"strings"
)

// table renders a fixed-width ASCII table for figure reports.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addRowf(label string, format string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.addRow(cells...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }
