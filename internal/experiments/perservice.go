package experiments

import (
	"fmt"
	"sort"
	"strings"

	"diagnet/internal/eval"
	"diagnet/internal/services"
)

// PerServiceRow compares the general and the specialized model on one
// service's degraded test samples.
type PerServiceRow struct {
	Service    int
	Name       string
	N          int
	GeneralR1  float64
	SpecialR1  float64
	GeneralMRR float64
	SpecialMRR float64
}

// PerServiceResult quantifies the per-service specialization benefit
// (§III-D/§IV-F) service by service.
type PerServiceResult struct {
	Rows []PerServiceRow
}

// PerService evaluates every service with ≥5 degraded test samples.
func (l *Lab) PerService() *PerServiceResult {
	catalog := services.Catalog()
	byService := map[int][]int{}
	deg := l.Test.Degraded()
	for i := range deg.Samples {
		byService[deg.Samples[i].Service] = append(byService[deg.Samples[i].Service], i)
	}
	res := &PerServiceResult{}
	var ids []int
	for id := range byService {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		idxs := byService[id]
		if len(idxs) < 5 {
			continue
		}
		spec, ok := l.Specialized[id]
		if !ok {
			continue
		}
		var gRanks, sRanks []int
		for _, i := range idxs {
			s := &deg.Samples[i]
			gRanks = append(gRanks, eval.RankOf(l.General.Model.Diagnose(s.Features, l.Full).Final, s.Cause))
			sRanks = append(sRanks, eval.RankOf(spec.Diagnose(s.Features, l.Full).Final, s.Cause))
		}
		name := fmt.Sprintf("svc %d", id)
		if id < len(catalog) {
			name = catalog[id].Name()
		}
		res.Rows = append(res.Rows, PerServiceRow{
			Service:    id,
			Name:       name,
			N:          len(idxs),
			GeneralR1:  eval.RecallAtK(gRanks, 1),
			SpecialR1:  eval.RecallAtK(sRanks, 1),
			GeneralMRR: eval.MRR(gRanks),
			SpecialMRR: eval.MRR(sRanks),
		})
	}
	return res
}

// String renders the per-service comparison.
func (r *PerServiceResult) String() string {
	var b strings.Builder
	b.WriteString("Per-service specialization benefit (degraded test samples)\n")
	t := newTable("service", "n", "general R@1", "specialized R@1", "general MRR", "specialized MRR")
	for _, row := range r.Rows {
		t.addRow(row.Name, fmt.Sprint(row.N),
			pct(row.GeneralR1), pct(row.SpecialR1),
			fmt.Sprintf("%.3f", row.GeneralMRR), fmt.Sprintf("%.3f", row.SpecialMRR))
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV renders the per-service comparison.
func (r *PerServiceResult) CSV() string {
	var b strings.Builder
	b.WriteString("service,name,n,general_r1,specialized_r1,general_mrr,specialized_mrr\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%q,%d,%.4f,%.4f,%.4f,%.4f\n",
			row.Service, row.Name, row.N, row.GeneralR1, row.SpecialR1, row.GeneralMRR, row.SpecialMRR)
	}
	return b.String()
}
