package experiments

import (
	"strings"

	"diagnet/internal/eval"
)

// AblationResult quantifies how much each stage of DiagNet's pipeline
// contributes (DESIGN.md's design-choice study): raw attention (§III-E
// notes it is inaccurate alone), Algorithm 1 weighting, the auxiliary
// forest alone, and the full ensemble.
type AblationResult struct {
	Variants []string
	// Recall@1 and Recall@5 per variant, for new and known faults.
	New1, New5, Known1, Known5 map[string]float64
}

// Ablation variants.
const (
	VariantAttention = "attention only"
	VariantTuned     = "attention + Algorithm 1"
	VariantForest    = "auxiliary forest only"
	VariantFull      = "full DiagNet (ensemble)"
)

// Ablation evaluates each pipeline stage's scores on the degraded test
// samples.
func (l *Lab) Ablation() *AblationResult {
	res := &AblationResult{
		Variants: []string{VariantAttention, VariantTuned, VariantForest, VariantFull},
		New1:     map[string]float64{}, New5: map[string]float64{},
		Known1: map[string]float64{}, Known5: map[string]float64{},
	}
	ranksNew := map[string][]int{}
	ranksKnown := map[string][]int{}
	deg := l.Test.Degraded()
	for i := range deg.Samples {
		s := &deg.Samples[i]
		diag := l.ModelFor(s.Service).Diagnose(s.Features, l.Full)
		scores := map[string][]float64{
			VariantAttention: diag.Attention,
			VariantTuned:     diag.Tuned,
			VariantForest:    l.General.Model.Aux.Scores(s.Features),
			VariantFull:      diag.Final,
		}
		for v, sc := range scores {
			rank := eval.RankOf(sc, s.Cause)
			if l.IsNewFault(s) {
				ranksNew[v] = append(ranksNew[v], rank)
			} else {
				ranksKnown[v] = append(ranksKnown[v], rank)
			}
		}
	}
	for _, v := range res.Variants {
		res.New1[v] = eval.RecallAtK(ranksNew[v], 1)
		res.New5[v] = eval.RecallAtK(ranksNew[v], 5)
		res.Known1[v] = eval.RecallAtK(ranksKnown[v], 1)
		res.Known5[v] = eval.RecallAtK(ranksKnown[v], 5)
	}
	return res
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — contribution of each DiagNet stage\n")
	t := newTable("variant", "new R@1", "new R@5", "known R@1", "known R@5")
	for _, v := range r.Variants {
		t.addRow(v, pct(r.New1[v]), pct(r.New5[v]), pct(r.Known1[v]), pct(r.Known5[v]))
	}
	b.WriteString(t.String())
	return b.String()
}
