package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"diagnet/internal/services"
)

// Fig9Result reproduces Fig. 9 and the §IV-F cost analysis: learning
// curves of the general model and of specialized service models (trained
// with frozen convolutions), epochs-to-convergence, parameter counts and
// wall-clock costs.
type Fig9Result struct {
	GeneralTrainLoss []float64
	GeneralValLoss   []float64
	GeneralEpochs    int

	// Per specialized service: loss curves and epochs.
	Services   []int
	SpecTrain  map[int][]float64
	SpecVal    map[int][]float64
	SpecEpochs map[int]int

	TotalParams, TrainableSpecParams int
	GeneralTrainTime                 time.Duration
	SpecializeTimeMean               time.Duration
	InferenceMean                    time.Duration
}

// Fig9 collects histories already produced while building the lab and
// times inference.
func (l *Lab) Fig9() *Fig9Result {
	res := &Fig9Result{
		GeneralTrainLoss:   l.General.History.TrainLoss,
		GeneralValLoss:     l.General.History.ValLoss,
		GeneralEpochs:      l.General.History.BestEpoch + 1,
		SpecTrain:          map[int][]float64{},
		SpecVal:            map[int][]float64{},
		SpecEpochs:         map[int]int{},
		GeneralTrainTime:   l.GeneralTrainTime,
		SpecializeTimeMean: l.SpecializeTimeMean,
	}
	for svc, hist := range l.SpecHist {
		res.Services = append(res.Services, svc)
		res.SpecTrain[svc] = hist.TrainLoss
		res.SpecVal[svc] = hist.ValLoss
		res.SpecEpochs[svc] = hist.BestEpoch + 1
	}
	sort.Ints(res.Services)

	total, _ := l.General.Model.ParamCount()
	res.TotalParams = total
	for _, m := range l.Specialized {
		_, trainable := m.ParamCount()
		res.TrainableSpecParams = trainable
		break
	}

	// Inference latency over degraded test samples (paper: 45 ms).
	deg := l.Test.Degraded()
	n := deg.Len()
	if n > 100 {
		n = 100
	}
	if n > 0 {
		start := time.Now()
		for i := 0; i < n; i++ {
			s := &deg.Samples[i]
			l.ModelFor(s.Service).Diagnose(s.Features, l.Full)
		}
		res.InferenceMean = time.Since(start) / time.Duration(n)
	}
	return res
}

// String renders loss curves as sparkline-style rows plus the cost table.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 (a) — general model loss per epoch\n")
	b.WriteString(curveRow("train", r.GeneralTrainLoss))
	b.WriteString(curveRow("valid", r.GeneralValLoss))
	fmt.Fprintf(&b, "general model converged at epoch %d\n\n", r.GeneralEpochs)

	b.WriteString("Fig. 9 (b) — specialized service models (frozen convolution)\n")
	catalog := services.Catalog()
	var epochSum, epochN int
	for _, svc := range r.Services {
		name := fmt.Sprintf("svc %d", svc)
		if svc < len(catalog) {
			name = catalog[svc].Name()
		}
		b.WriteString(curveRow(name, r.SpecVal[svc]))
		epochSum += r.SpecEpochs[svc]
		epochN++
	}
	if epochN > 0 {
		fmt.Fprintf(&b, "specialized models converge in %.1f epochs on average (paper: <5)\n\n",
			float64(epochSum)/float64(epochN))
	}

	fmt.Fprintf(&b, "Parameters: %d total, %d trainable per specialized model (paper: 215,312 / 65,664)\n",
		r.TotalParams, r.TrainableSpecParams)
	fmt.Fprintf(&b, "Training cost: general %v, specialized %v mean (paper: 32 s / 4 s on a laptop CPU)\n",
		r.GeneralTrainTime.Round(time.Millisecond), r.SpecializeTimeMean.Round(time.Millisecond))
	fmt.Fprintf(&b, "Inference: %v mean per diagnosis (paper: 45 ms)\n", r.InferenceMean.Round(time.Microsecond))
	return b.String()
}

// curveRow renders a loss curve compactly: first/min/last values plus a
// coarse trend strip.
func curveRow(label string, losses []float64) string {
	if len(losses) == 0 {
		return fmt.Sprintf("%-18s (no curve)\n", label)
	}
	min, max := losses[0], losses[0]
	for _, v := range losses {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var strip strings.Builder
	for _, v := range losses {
		g := 0
		if max > min {
			g = int((v - min) / (max - min) * float64(len(glyphs)-1))
		}
		strip.WriteRune(glyphs[g])
	}
	return fmt.Sprintf("%-18s %s  first %.3f → last %.3f (min %.3f, %d epochs)\n",
		label, strip.String(), losses[0], losses[len(losses)-1], min, len(losses))
}
