package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/eval"
	"diagnet/internal/nn"
	"diagnet/internal/probe"
)

// Fig7Result reproduces Fig. 7: per-family F1 scores of the coarse
// classifier (step ④) split by samples with faults near known vs new
// landmarks, plus the overall accuracies the paper quotes
// (0.70 ± 0.013 new, 0.85 ± 0.005 known).
type Fig7Result struct {
	Families                   []probe.Family
	F1New, F1Known             map[probe.Family]float64
	AccNew, AccKnown           float64
	AccNewStdErr, AccKnownStd  float64
	NNew, NKnown               int
	ConfusionNew, ConfusionKno *eval.Confusion
}

// Fig7 evaluates the specialized coarse classifiers on degraded test
// samples. The known/new split follows §IV-A-d: a sample is "new" when its
// root-cause fault was injected in a hidden region — including client-side
// faults there, which is why this split differs from Fig. 5's
// cause-feature-based one.
func (l *Lab) Fig7() *Fig7Result {
	confNew := eval.NewConfusion(int(probe.NumFamilies))
	confKnown := eval.NewConfusion(int(probe.NumFamilies))
	hidden := map[int]bool{}
	for _, r := range l.Hidden {
		hidden[r] = true
	}
	deg := l.Test.Degraded()
	for i := range deg.Samples {
		s := &deg.Samples[i]
		probs := l.ModelFor(s.Service).CoarsePredict(s.Features, l.Full)
		pred := nn.Argmax(probs)
		if hidden[s.FaultRegion] {
			confNew.Add(int(s.Family), pred)
		} else {
			confKnown.Add(int(s.Family), pred)
		}
	}
	res := &Fig7Result{
		F1New:        map[probe.Family]float64{},
		F1Known:      map[probe.Family]float64{},
		AccNew:       confNew.Accuracy(),
		AccKnown:     confKnown.Accuracy(),
		AccNewStdErr: confNew.AccuracyStdErr(),
		AccKnownStd:  confKnown.AccuracyStdErr(),
		NNew:         confNew.N,
		NKnown:       confKnown.N,
		ConfusionNew: confNew,
		ConfusionKno: confKnown,
	}
	for fam := probe.FamUplink; fam < probe.NumFamilies; fam++ {
		if confNew.Support(int(fam))+confKnown.Support(int(fam)) == 0 {
			continue
		}
		res.Families = append(res.Families, fam)
		res.F1New[fam] = confNew.F1(int(fam))
		res.F1Known[fam] = confKnown.F1(int(fam))
	}
	return res
}

// String renders the per-family F1 table and accuracy summary.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — coarse classifier F1 per fault family\n")
	t := newTable(append([]string{"split"}, famNames(r.Families)...)...)
	rowNew := []string{"new landmarks"}
	rowKnown := []string{"known landmarks"}
	for _, fam := range r.Families {
		rowNew = append(rowNew, fmt.Sprintf("%.2f", r.F1New[fam]))
		rowKnown = append(rowKnown, fmt.Sprintf("%.2f", r.F1Known[fam]))
	}
	t.addRow(rowNew...)
	t.addRow(rowKnown...)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nAccuracy near new landmarks:   %.2f ± %.3f (n=%d; paper: 0.70 ± 0.013)\n",
		r.AccNew, r.AccNewStdErr, r.NNew)
	fmt.Fprintf(&b, "Accuracy near known landmarks: %.2f ± %.3f (n=%d; paper: 0.85 ± 0.005)\n",
		r.AccKnown, r.AccKnownStd, r.NKnown)
	return b.String()
}

func famNames(fams []probe.Family) []string {
	var ns []string
	for _, f := range fams {
		ns = append(ns, f.String())
	}
	return ns
}
