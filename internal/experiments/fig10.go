package experiments

import (
	"fmt"
	"strings"

	"diagnet/internal/core"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/qoe"
	"diagnet/internal/services"
	"diagnet/internal/stats"
)

// Fig10GroundTruth classifies which of the two simultaneous latency faults
// (near BEAU and near GRAV) actually degrade a given (client, service).
type Fig10GroundTruth int

const (
	GTBeau Fig10GroundTruth = iota
	GTGrav
	GTBoth
	NumGroundTruths
)

func (g Fig10GroundTruth) String() string {
	switch g {
	case GTBeau:
		return "BEAU only"
	case GTGrav:
		return "GRAV★ only"
	case GTBoth:
		return "both"
	default:
		return fmt.Sprintf("GT(%d)", int(g))
	}
}

// Fig10Cell is the prediction distribution for one ground-truth group.
type Fig10Cell struct {
	N         int
	PredBeau  int
	PredGrav  int
	PredOther int
	Recall    float64 // top-1 hits on the relevant cause(s)
}

// Fig10Result reproduces Fig. 10: predicted root causes under simultaneous
// latency faults near BEAU and GRAV, for the general model (a) and the
// specialized per-service models (b).
type Fig10Result struct {
	General     map[Fig10GroundTruth]*Fig10Cell
	Specialized map[Fig10GroundTruth]*Fig10Cell
}

// Fig10 injects both latency faults simultaneously, determines per
// (client, service) which fault(s) are the real root cause, and tallies
// each model's top-1 predictions.
func (l *Lab) Fig10() *Fig10Result {
	env := netsim.Env{Faults: []netsim.Fault{
		netsim.NewFault(netsim.FaultServiceDelay, netsim.BEAU),
		netsim.NewFault(netsim.FaultServiceDelay, netsim.GRAV),
	}}
	q := qoe.New(l.World)
	prober := probe.Prober{W: l.World}
	beauCause, _ := l.Full.CauseOf(env.Faults[0])
	gravCause, _ := l.Full.CauseOf(env.Faults[1])

	res := &Fig10Result{
		General:     map[Fig10GroundTruth]*Fig10Cell{},
		Specialized: map[Fig10GroundTruth]*Fig10Cell{},
	}
	for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
		res.General[gt] = &Fig10Cell{}
		res.Specialized[gt] = &Fig10Cell{}
	}

	perSvc := l.Profile.Fig10PerService
	for _, svc := range services.Catalog() {
		for i := 0; i < perSvc; i++ {
			rng := stats.NewRand(l.Profile.DataSeed+500, int64(svc.ID*1000+i))
			client := rng.Intn(netsim.NumRegions)
			tick := rng.Int63n(960)
			envT := netsim.Env{Tick: tick, Faults: env.Faults}

			beauHurts := q.Degraded(client, svc, envT.OnlyFault(0))
			gravHurts := q.Degraded(client, svc, envT.OnlyFault(1))
			var gt Fig10GroundTruth
			switch {
			case beauHurts && gravHurts:
				gt = GTBoth
			case beauHurts:
				gt = GTBeau
			case gravHurts:
				gt = GTGrav
			default:
				continue // QoE fine; no diagnosis requested
			}
			features := prober.Sample(client, l.Full, envT, rng)
			tally(res.General[gt], l.General.Model, features, l.Full, beauCause, gravCause, gt)
			tally(res.Specialized[gt], l.ModelFor(svc.ID), features, l.Full, beauCause, gravCause, gt)
		}
	}
	for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
		finishCell(res.General[gt])
		finishCell(res.Specialized[gt])
	}
	return res
}

func tally(cell *Fig10Cell, m *core.Model, features []float64, layout probe.Layout, beauCause, gravCause int, gt Fig10GroundTruth) {
	diag := m.Diagnose(features, layout)
	top := diag.Ranked()[0]
	cell.N++
	switch top {
	case beauCause:
		cell.PredBeau++
	case gravCause:
		cell.PredGrav++
	default:
		cell.PredOther++
	}
	hit := false
	switch gt {
	case GTBeau:
		hit = top == beauCause
	case GTGrav:
		hit = top == gravCause
	case GTBoth:
		hit = top == beauCause || top == gravCause
	}
	if hit {
		cell.Recall++ // finalized into a fraction by finishCell
	}
}

func finishCell(cell *Fig10Cell) {
	if cell.N > 0 {
		cell.Recall /= float64(cell.N)
	}
}

// String renders the general and specialized tallies.
func (r *Fig10Result) String() string {
	var b strings.Builder
	render := func(title string, cells map[Fig10GroundTruth]*Fig10Cell) {
		fmt.Fprintf(&b, "%s\n", title)
		t := newTable("relevant cause(s)", "n", "→BEAU", "→GRAV★", "→other", "recall")
		for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
			c := cells[gt]
			if c.N == 0 {
				t.addRow(gt.String(), "0", "-", "-", "-", "-")
				continue
			}
			t.addRow(gt.String(), fmt.Sprint(c.N),
				pct(float64(c.PredBeau)/float64(c.N)),
				pct(float64(c.PredGrav)/float64(c.N)),
				pct(float64(c.PredOther)/float64(c.N)),
				pct(c.Recall))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	render("Fig. 10 (a) — general model, simultaneous latency faults near BEAU and GRAV★", r.General)
	render("Fig. 10 (b) — specialized models (paper: recall 76% BEAU, 28% GRAV★, 71% both)", r.Specialized)
	return b.String()
}
