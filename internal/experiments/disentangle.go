package experiments

import (
	"fmt"
	"strings"
)

// DisentangleResult quantifies anomaly disentanglement (§II-B): how much
// each model's recall suffers when the Internet background is full of
// spurious transient anomalies unrelated to the user's problem.
type DisentangleResult struct {
	// Recall[condition][model] = [R@1, R@5] over all degraded test
	// samples; conditions are "clean" and "noisy".
	Recall map[string]map[string][2]float64
	NewR5  map[string]map[string]float64 // Recall@5 on new-landmark faults
}

// Disentangle trains two reduced pipelines — one on a clean world, one on
// a world with background anomalies — and compares the models. Real root
// causes keep their labels in both (anomalies also enter the fault-free
// QoE baseline), so any recall drop is pure disentanglement failure.
func Disentangle(p Profile, log func(string, ...any)) *DisentangleResult {
	res := &DisentangleResult{
		Recall: map[string]map[string][2]float64{},
		NewR5:  map[string]map[string]float64{},
	}
	for _, cond := range []struct {
		name  string
		noisy bool
	}{{"clean", false}, {"noisy", true}} {
		sub := p
		sub.Name = p.Name + "/" + cond.name
		sub.NominalSamples = p.Fig8Nominal
		sub.FaultSamples = p.Fig8Fault
		sub.BackgroundAnomalies = cond.noisy
		if log != nil {
			log("disentangle: building %s pipeline", cond.name)
		}
		lab := NewLab(sub, log)
		fig5 := lab.Fig5()
		res.Recall[cond.name] = map[string][2]float64{}
		res.NewR5[cond.name] = map[string]float64{}
		for _, model := range Models() {
			res.Recall[cond.name][model] = [2]float64{fig5.Combined[model][0], fig5.Combined[model][4]}
			res.NewR5[cond.name][model] = fig5.New[model][4]
		}
	}
	return res
}

// String renders the comparison.
func (r *DisentangleResult) String() string {
	var b strings.Builder
	b.WriteString("Anomaly disentanglement (§II-B): spurious background anomalies on vs off\n")
	t := newTable("model", "clean R@1", "clean R@5", "noisy R@1", "noisy R@5", "new R@5 clean", "new R@5 noisy")
	for _, model := range Models() {
		c := r.Recall["clean"][model]
		n := r.Recall["noisy"][model]
		t.addRow(model, pct(c[0]), pct(c[1]), pct(n[0]), pct(n[1]),
			pct(r.NewR5["clean"][model]), pct(r.NewR5["noisy"][model]))
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV renders the comparison as rows.
func (r *DisentangleResult) CSV() string {
	var b strings.Builder
	b.WriteString("condition,model,metric,value\n")
	for cond, models := range map[string]map[string][2]float64{"clean": r.Recall["clean"], "noisy": r.Recall["noisy"]} {
		for _, model := range Models() {
			v := models[model]
			fmt.Fprintf(&b, "%s,%s,recall1,%.4f\n", cond, model, v[0])
			fmt.Fprintf(&b, "%s,%s,recall5,%.4f\n", cond, model, v[1])
			fmt.Fprintf(&b, "%s,%s,new_recall5,%.4f\n", cond, model, r.NewR5[cond][model])
		}
	}
	return b.String()
}
