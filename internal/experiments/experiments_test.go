package experiments

import (
	"strings"
	"testing"
)

// The lab is expensive; build it once for the whole package.
var sharedLab *Lab

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("experiments lab skipped in -short mode")
	}
	if sharedLab == nil {
		sharedLab = NewLab(Quick(), nil)
	}
	return sharedLab
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Quick(), Default(), Paper()} {
		if p.NominalSamples <= 0 || p.FaultSamples <= 0 || len(p.Fig8Levels) == 0 {
			t.Fatalf("profile %s incomplete: %+v", p.Name, p)
		}
	}
	if Paper().NominalSamples != 213000 || Paper().FaultSamples != 30000 {
		t.Fatal("paper profile must match §IV-A-e dataset scale")
	}
}

func TestLabConstruction(t *testing.T) {
	l := quickLab(t)
	if len(l.Known) != 7 || len(l.Hidden) != 3 {
		t.Fatalf("known/hidden = %d/%d", len(l.Known), len(l.Hidden))
	}
	if len(l.HiddenFault) != 2 {
		t.Fatalf("hidden fault regions = %v (want GRAV, SEAT)", l.HiddenFault)
	}
	if l.Train.Len() == 0 || l.Test.Len() == 0 {
		t.Fatal("empty split")
	}
	if len(l.Specialized) == 0 {
		t.Fatal("no specialized models")
	}
	if l.NB == nil {
		t.Fatal("no NB baseline")
	}
}

func TestFig5ShapesHold(t *testing.T) {
	l := quickLab(t)
	r := l.Fig5()
	if r.NNew == 0 || r.NKnown == 0 {
		t.Fatalf("missing groups: new=%d known=%d", r.NNew, r.NKnown)
	}
	// Recall curves are monotone in k for every model.
	for _, m := range Models() {
		for _, curve := range [][]float64{r.New[m], r.Known[m], r.Combined[m]} {
			for k := 1; k < len(curve); k++ {
				if curve[k] < curve[k-1] {
					t.Fatalf("%s recall curve not monotone: %v", m, curve)
				}
			}
		}
	}
	// Core paper claims: RF near-ideal on known landmarks; DiagNet beats RF
	// on new landmarks; DiagNet respectable everywhere.
	if r.Known[ModelRF][4] < 0.7 {
		t.Fatalf("RF Recall@5 on known = %v; expected near-ideal", r.Known[ModelRF][4])
	}
	if r.New[ModelDiagNet][4] <= r.New[ModelRF][4] {
		t.Fatalf("DiagNet (%v) must beat RF (%v) on new landmarks",
			r.New[ModelDiagNet][4], r.New[ModelRF][4])
	}
	if r.Combined[ModelDiagNet][4] < 0.4 {
		t.Fatalf("DiagNet combined Recall@5 = %v too low", r.Combined[ModelDiagNet][4])
	}
	if !strings.Contains(r.String(), "Recall@1") && !strings.Contains(r.String(), "R@1") {
		t.Fatal("render misses recall columns")
	}
}

func TestFig6Coverage(t *testing.T) {
	l := quickLab(t)
	r := l.Fig6()
	if len(r.Families) < 4 {
		t.Fatalf("only %d families represented", len(r.Families))
	}
	if len(r.Regions) < 4 {
		t.Fatalf("only %d regions represented", len(r.Regions))
	}
	out := r.String()
	if !strings.Contains(out, "★") {
		t.Fatal("hidden regions not starred")
	}
	for _, m := range Models() {
		for _, fam := range r.Families {
			v := r.ByFamily[m][fam]
			if v < 0 || v > 1 {
				t.Fatalf("recall out of range: %v", v)
			}
		}
	}
}

func TestFig7AccuraciesOrdered(t *testing.T) {
	l := quickLab(t)
	r := l.Fig7()
	if r.NNew == 0 || r.NKnown == 0 {
		t.Fatal("missing splits")
	}
	if r.AccKnown < 0.5 {
		t.Fatalf("known-landmark coarse accuracy %v too low", r.AccKnown)
	}
	// Both splits must be far above the 1/7 random-family baseline. (The
	// paper's known > new ordering is mix-dependent: our "new" region
	// split is dominated by easy local faults, see DESIGN.md §7.)
	if r.AccNew < 0.3 {
		t.Fatalf("new-landmark coarse accuracy %v too low", r.AccNew)
	}
	if len(r.Families) == 0 {
		t.Fatal("no family F1 scores")
	}
	if !strings.Contains(r.String(), "±") {
		t.Fatal("render misses confidence")
	}
}

func TestFig9CostsAndTransfer(t *testing.T) {
	l := quickLab(t)
	r := l.Fig9()
	if len(r.GeneralTrainLoss) == 0 {
		t.Fatal("no general curve")
	}
	if len(r.Services) == 0 {
		t.Fatal("no specialized curves")
	}
	if r.TrainableSpecParams >= r.TotalParams {
		t.Fatal("specialization froze nothing")
	}
	if r.InferenceMean <= 0 {
		t.Fatal("inference not timed")
	}
	// Specialized models converge at least as fast as the general model.
	for _, svc := range r.Services {
		if r.SpecEpochs[svc] > r.GeneralEpochs+len(r.GeneralTrainLoss) {
			t.Fatalf("service %d took %d epochs", svc, r.SpecEpochs[svc])
		}
	}
	if !strings.Contains(r.String(), "Parameters") {
		t.Fatal("render incomplete")
	}
}

func TestFig10Populated(t *testing.T) {
	l := quickLab(t)
	r := l.Fig10()
	totalN := 0
	for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
		totalN += r.Specialized[gt].N
		if r.Specialized[gt].N != r.General[gt].N {
			t.Fatal("general/specialized sample counts diverge")
		}
	}
	if totalN == 0 {
		t.Fatal("no simultaneous-fault samples")
	}
	for gt := Fig10GroundTruth(0); gt < NumGroundTruths; gt++ {
		c := r.Specialized[gt]
		if c.N > 0 && c.PredBeau+c.PredGrav+c.PredOther != c.N {
			t.Fatal("prediction tallies inconsistent")
		}
		if c.Recall < 0 || c.Recall > 1 {
			t.Fatalf("recall %v out of range", c.Recall)
		}
	}
	if !strings.Contains(r.String(), "BEAU") {
		t.Fatal("render incomplete")
	}
}

func TestCSVExports(t *testing.T) {
	l := quickLab(t)
	csvs := map[string]string{
		"fig5":     l.Fig5().CSV(),
		"fig6":     l.Fig6().CSV(),
		"fig7":     l.Fig7().CSV(),
		"fig9":     l.Fig9().CSV(),
		"fig10":    l.Fig10().CSV(),
		"ablation": l.Ablation().CSV(),
	}
	for name, csv := range csvs {
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: CSV has %d lines", name, len(lines))
		}
		header := strings.Split(lines[0], ",")
		if len(header) < 2 {
			t.Fatalf("%s: header %q", name, lines[0])
		}
		for i, line := range lines[1:] {
			if strings.HasPrefix(line, "#") {
				continue // metadata rows (fig9 costs)
			}
			if got := len(strings.Split(line, ",")); got != len(header) {
				t.Fatalf("%s line %d: %d fields, header has %d", name, i+1, got, len(header))
			}
		}
	}
}

func TestAblationFullBeatsAttentionAlone(t *testing.T) {
	l := quickLab(t)
	r := l.Ablation()
	// §III-E: the attention mechanism alone gives inaccurate results; the
	// full pipeline must do at least as well on known landmarks.
	if r.Known5[VariantFull]+1e-9 < r.Known5[VariantAttention] {
		t.Fatalf("full pipeline (%v) worse than raw attention (%v) on known faults",
			r.Known5[VariantFull], r.Known5[VariantAttention])
	}
	if len(r.Variants) != 4 {
		t.Fatal("missing variants")
	}
	if !strings.Contains(r.String(), "Algorithm 1") {
		t.Fatal("render incomplete")
	}
}
