package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which Mul runs
// single-threaded: goroutine fan-out costs more than it saves on small
// products.
const parallelThreshold = 1 << 16

// Mul stores a·b into dst (allocating when dst is nil) and returns dst.
//
// The kernel uses the i-k-j loop order so the inner loop streams over
// contiguous rows of b and dst, and shards rows of a across GOMAXPROCS
// workers for large products. Row sharding keeps the reduction order within
// each output element sequential, so results are identical no matter how
// many workers run.
func Mul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul: inner dims %d vs %d", a.Cols, b.Rows))
	}
	dst = ensureShape(dst, a.Rows, b.Cols)
	if dst == a || dst == b {
		panic("mat: Mul: dst must not alias an operand")
	}
	dst.Zero()

	work := a.Rows * a.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers == 1 || a.Rows == 1 {
		mulRows(dst, a, b, 0, a.Rows)
		return dst
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// mulRows computes rows [lo, hi) of dst = a·b.
func mulRows(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpyTo(av, b.Data[k*n:(k+1)*n], drow)
		}
	}
}

// MulT1 returns aᵀ·b without materializing the transpose of a. Large
// products shard the output rows across GOMAXPROCS workers; each output
// element reduces over k sequentially, so results are independent of the
// worker count.
func MulT1(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulT1: inner dims %d vs %d", a.Rows, b.Rows))
	}
	dst = ensureShape(dst, a.Cols, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers == 1 || a.Cols == 1 {
		mulT1Rows(dst, a, b, 0, a.Cols)
		return dst
	}
	if workers > a.Cols {
		workers = a.Cols
	}
	chunk := (a.Cols + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Cols; lo += chunk {
		hi := lo + chunk
		if hi > a.Cols {
			hi = a.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulT1Rows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// mulT1Rows computes output rows [lo, hi) of dst = aᵀ·b.
func mulT1Rows(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*a.Cols+i]
			if av == 0 {
				continue
			}
			axpyTo(av, b.Data[k*n:(k+1)*n], drow)
		}
	}
}

// MulT2 returns a·bᵀ without materializing the transpose of b.
func MulT2(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT2: inner dims %d vs %d", a.Cols, b.Cols))
	}
	dst = ensureShape(dst, a.Rows, b.Rows)
	work := a.Rows * a.Cols * b.Rows
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers == 1 || a.Rows == 1 {
		mulT2Rows(dst, a, b, 0, a.Rows)
		return dst
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulT2Rows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

func mulT2Rows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// MulVec returns m·x as a new vector.
func MulVec(m *Matrix, x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec: len %d, want %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// Dot returns the inner product of equal-length vectors a and b.
//
// The loop is unrolled four-wide with a single accumulator added to in
// index order, so the result is bitwise identical to the scalar loop (the
// unroll only removes bounds checks and loop overhead, it does not reorder
// the floating-point reduction).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot: len %d vs %d", len(a), len(b)))
	}
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		a4 := a[i : i+4 : i+4]
		b4 := b[i : i+4 : i+4]
		s += a4[0] * b4[0]
		s += a4[1] * b4[1]
		s += a4[2] * b4[2]
		s += a4[3] * b4[3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy: len %d vs %d", len(x), len(y)))
	}
	axpyTo(alpha, x, y)
}

// axpyTo is the unchecked axpy kernel behind Axpy and the Mul inner loops:
// y[j] += alpha*x[j] for j < len(x), with len(y) >= len(x) assumed. The
// four-wide unroll updates independent elements, so results are bitwise
// identical to the scalar loop while giving the CPU four parallel
// multiply-add chains per iteration.
func axpyTo(alpha float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}
