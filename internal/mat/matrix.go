// Package mat provides small dense float64 matrix and vector kernels used
// throughout DiagNet: storage, BLAS-1 style helpers and a cache-friendly,
// optionally parallel matrix multiplication.
//
// The package is deliberately minimal — it implements exactly the
// operations the neural network and the baselines need, with deterministic
// results independent of GOMAXPROCS.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major float64 matrix.
//
// The zero value is an empty 0×0 matrix. Data holds Rows*Cols elements;
// element (i, j) lives at Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
// The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// FromSlice wraps (not copies) data as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice: %d elements for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Add stores a+b into dst (allocating when dst is nil) and returns dst.
func Add(dst, a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	dst = ensureShape(dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// Sub stores a-b into dst (allocating when dst is nil) and returns dst.
func Sub(dst, a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	dst = ensureShape(dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInPlace adds b to m element-wise.
func (m *Matrix) AddInPlace(b *Matrix) {
	checkSameShape("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// AddRowVector adds vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector: len %d, want %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s: shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func ensureShape(dst *Matrix, rows, cols int) *Matrix {
	if dst == nil {
		return New(rows, cols)
	}
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("mat: dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, rows, cols))
	}
	return dst
}
