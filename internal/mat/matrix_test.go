package mat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 {
		t.Fatalf("At mismatch: %v", m.Data)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set did not persist")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowSharesStorage(t *testing.T) {
	m := New(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr.Data)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := Add(nil, a, b)
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", sum.Data)
	}
	diff := Sub(nil, b, a)
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub wrong: %v", diff.Data)
	}
	diff.Scale(2)
	if diff.At(0, 0) != 18 {
		t.Fatalf("Scale wrong: %v", diff.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector([]float64{10, 100})
	want := FromRows([][]float64{{11, 102}, {13, 104}})
	if !Equal(m, want, 0) {
		t.Fatalf("AddRowVector = %v", m.Data)
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(nil, a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Mul(nil, New(2, 3), New(2, 3))
}

// mulNaive is the reference implementation used to validate the optimized
// and parallel kernels.
func mulNaive(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulMatchesNaiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 65, 93)
	b := randomMatrix(rng, 93, 77)
	got := Mul(nil, a, b)
	want := mulNaive(a, b)
	if !Equal(got, want, 1e-9) {
		t.Fatal("parallel Mul diverges from naive")
	}
}

func TestMulDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 120, 64)
	b := randomMatrix(rng, 64, 96)
	old := runtime.GOMAXPROCS(1)
	seq := Mul(nil, a, b)
	runtime.GOMAXPROCS(4)
	par := Mul(nil, a, b)
	runtime.GOMAXPROCS(old)
	if !Equal(seq, par, 0) {
		t.Fatal("Mul result depends on GOMAXPROCS")
	}
}

func TestMulT1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 31, 17)
	b := randomMatrix(rng, 31, 23)
	got := MulT1(nil, a, b)
	want := mulNaive(a.T(), b)
	if !Equal(got, want, 1e-9) {
		t.Fatal("MulT1 diverges from naive")
	}
}

func TestMulT1DeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomMatrix(rng, 64, 96)
	b := randomMatrix(rng, 64, 80)
	old := runtime.GOMAXPROCS(1)
	seq := MulT1(nil, a, b)
	runtime.GOMAXPROCS(4)
	par := MulT1(nil, a, b)
	runtime.GOMAXPROCS(old)
	if !Equal(seq, par, 0) {
		t.Fatal("MulT1 result depends on GOMAXPROCS")
	}
}

func TestMulT2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 40, 19)
	b := randomMatrix(rng, 33, 19)
	got := MulT2(nil, a, b)
	want := mulNaive(a, b.T())
	if !Equal(got, want, 1e-9) {
		t.Fatal("MulT2 diverges from naive")
	}
}

func TestMulVecAndDot(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := MulVec(m, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-5, 2}, {3, -4}})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		left := Mul(nil, a, b).T()
		right := Mul(nil, b.T(), a.T())
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		d := randomMatrix(rng, k, c)
		left := Mul(nil, a, Add(nil, b, d))
		right := Add(nil, Mul(nil, a, b), Mul(nil, a, d))
		return Equal(left, right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Fill(3)
	if m.At(0, 0) != 3 || m.At(0, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), math.Inf(1)) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randomMatrix(rng, 128, 128)
	y := randomMatrix(rng, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, x, y)
	}
}
