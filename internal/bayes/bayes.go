// Package bayes implements the paper's extensible Naive Bayes baseline
// (§IV-B-b): per-(feature, class) Gaussian-KDE likelihoods, unit priors
// P(C_k) = 1 for every root cause (cancelling dataset imbalance and letting
// never-seen causes compete), and generic *union* KDE likelihoods — merged
// across every landmark available during training — standing in whenever a
// specific likelihood is missing for a feature or a class.
package bayes

import (
	"fmt"
	"math"

	"diagnet/internal/kde"
)

// Config controls the baseline.
type Config struct {
	// MaxKDEPoints caps the support of each likelihood KDE (deterministic
	// stride subsampling); <=0 means 64, keeping density evaluation cheap.
	MaxKDEPoints int
	// Bandwidth overrides Silverman bandwidth selection when positive.
	Bandwidth float64
}

func (c Config) withDefaults() Config {
	if c.MaxKDEPoints <= 0 {
		c.MaxKDEPoints = 64
	}
	return c
}

type likeKey struct{ feature, class int }

// Model is a fitted extensible Naive Bayes classifier over root causes.
// Causes are identified with input features (the paper's design), so the
// family of cause k is the family of feature k.
type Model struct {
	causes int
	family []int // family of each feature/cause

	// specific[(j, k)] = P(x_j | C_k) for pairs observed during training.
	specific map[likeKey]*kde.KDE
	// genericFam[(fam_j, fam_k)] = union KDE over all observed specific
	// likelihoods with those families.
	genericFam map[likeKey]*kde.KDE
	// genericFeat[fam_j] = union KDE over all observed values of family
	// fam_j features across faulty samples, the last-resort fallback.
	genericFeat map[int]*kde.KDE
}

// Fit trains on faulty samples only: x rows are feature vectors, labels are
// cause indices in [0, causes). family maps each feature (and hence each
// cause) to its measure family. known[j] tells whether feature j carried
// real measurements during training (hidden landmarks are zero-filled and
// must be excluded from likelihood estimation).
func Fit(x [][]float64, labels []int, causes int, family []int, known []bool, cfg Config) *Model {
	cfg = cfg.withDefaults()
	if len(x) == 0 {
		panic("bayes: empty training set")
	}
	numFeat := len(x[0])
	if len(family) != numFeat {
		panic(fmt.Sprintf("bayes: %d families for %d features", len(family), numFeat))
	}
	if causes > numFeat {
		panic("bayes: more causes than features")
	}

	// Gather raw values per (feature, class).
	values := make(map[likeKey][]float64)
	featValues := make(map[int][]float64)
	for i, row := range x {
		y := labels[i]
		if y < 0 || y >= causes {
			panic(fmt.Sprintf("bayes: label %d out of range at row %d", y, i))
		}
		if !known[y] {
			// Causes at hidden landmarks must not leak into training.
			continue
		}
		for j := 0; j < numFeat; j++ {
			if !known[j] {
				continue
			}
			values[likeKey{j, y}] = append(values[likeKey{j, y}], row[j])
			featValues[family[j]] = append(featValues[family[j]], row[j])
		}
	}

	m := &Model{
		causes:      causes,
		family:      append([]int(nil), family...),
		specific:    make(map[likeKey]*kde.KDE),
		genericFam:  make(map[likeKey]*kde.KDE),
		genericFeat: make(map[int]*kde.KDE),
	}
	famValues := make(map[likeKey][]float64)
	for key, vals := range values {
		sub := kde.Subsample(vals, cfg.MaxKDEPoints)
		m.specific[key] = kde.New(sub, cfg.Bandwidth)
		fk := likeKey{family[key.feature], family[key.class]}
		famValues[fk] = append(famValues[fk], sub...)
	}
	for fk, vals := range famValues {
		m.genericFam[fk] = kde.New(kde.Subsample(vals, cfg.MaxKDEPoints), cfg.Bandwidth)
	}
	for fam, vals := range featValues {
		m.genericFeat[fam] = kde.New(kde.Subsample(vals, cfg.MaxKDEPoints), cfg.Bandwidth)
	}
	return m
}

// likelihood returns P(x_j | C_k) with the paper's fallback chain:
// specific → generic per family pair → generic per feature family → a flat
// floor density.
func (m *Model) likelihood(j, k int, xj float64) float64 {
	if l, ok := m.specific[likeKey{j, k}]; ok {
		return l.Density(xj)
	}
	if l, ok := m.genericFam[likeKey{m.family[j], m.family[k]}]; ok {
		return l.Density(xj)
	}
	if l, ok := m.genericFeat[m.family[j]]; ok {
		return l.Density(xj)
	}
	return 1e-12
}

// Scores returns a normalized score per cause for the sample x, computed
// as exp of the naive-Bayes log posterior with unit priors. Higher is more
// likely.
func (m *Model) Scores(x []float64) []float64 {
	logp := make([]float64, m.causes)
	for k := 0; k < m.causes; k++ {
		var s float64
		for j, xj := range x {
			d := m.likelihood(j, k, xj)
			if d < 1e-300 {
				d = 1e-300
			}
			s += math.Log(d)
		}
		logp[k] = s
	}
	// Normalize in log space for a comparable, overflow-free score vector.
	max := logp[0]
	for _, v := range logp[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	out := make([]float64, m.causes)
	for k, v := range logp {
		out[k] = math.Exp(v - max)
		sum += out[k]
	}
	for k := range out {
		out[k] /= sum
	}
	return out
}

// Causes returns the number of root-cause classes.
func (m *Model) Causes() int { return m.causes }

// SpecificLikelihoods returns how many (feature, class) KDEs were fitted.
func (m *Model) SpecificLikelihoods() int { return len(m.specific) }
