package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// tinyWorld builds a 4-feature, 4-cause dataset: cause j inflates feature j.
// Features 0,1 are family 0; features 2,3 are family 1.
func tinyWorld(rng *rand.Rand, n int, known []bool) ([][]float64, []int) {
	var x [][]float64
	var labels []int
	for i := 0; i < n; i++ {
		cause := rng.Intn(4)
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64() * 0.3
			if !known[j] {
				row[j] = 0 // hidden features are zero-filled in training data
			}
		}
		if known[cause] {
			row[cause] += 5
		}
		x = append(x, row)
		labels = append(labels, cause)
	}
	return x, labels
}

var tinyFamily = []int{0, 0, 1, 1}

func TestFitAndRankKnownCause(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	known := []bool{true, true, true, true}
	x, labels := tinyWorld(rng, 400, known)
	m := Fit(x, labels, 4, tinyFamily, known, Config{})

	// A sample with feature 2 inflated should rank cause 2 first.
	probe := []float64{0, 0, 5, 0}
	scores := m.Scores(probe)
	best := 0
	for k, s := range scores {
		if s > scores[best] {
			best = k
		}
	}
	if best != 2 {
		t.Fatalf("ranked cause %d first, want 2 (scores %v)", best, scores)
	}
}

func TestScoresNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	known := []bool{true, true, true, true}
	x, labels := tinyWorld(rng, 200, known)
	m := Fit(x, labels, 4, tinyFamily, known, Config{})
	scores := m.Scores([]float64{1, 2, 3, 4})
	var s float64
	for _, v := range scores {
		if v < 0 {
			t.Fatalf("negative score %v", v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("scores sum to %v", s)
	}
}

func TestHiddenCauseUsesGenericLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	known := []bool{true, true, true, false} // feature/cause 3 hidden
	x, labels := tinyWorld(rng, 400, known)
	m := Fit(x, labels, 4, tinyFamily, known, Config{})

	// No specific likelihood may exist for the hidden feature or cause.
	for j := 0; j < 4; j++ {
		if _, ok := m.specific[likeKey{j, 3}]; ok {
			t.Fatal("hidden cause leaked a specific likelihood")
		}
		if _, ok := m.specific[likeKey{3, j}]; ok {
			t.Fatal("hidden feature leaked a specific likelihood")
		}
	}
	// The hidden cause still receives a non-zero score (extensibility).
	scores := m.Scores([]float64{0, 0, 0, 5})
	if scores[3] <= 0 {
		t.Fatalf("hidden cause scored %v", scores[3])
	}
}

func TestUnknownCauseCanWinOnItsFeature(t *testing.T) {
	// The paper observes NB is usable for *new* landmarks: an extreme value
	// on a hidden feature should push its cause up the ranking relative to
	// a nominal-looking sample.
	rng := rand.New(rand.NewSource(4))
	known := []bool{true, true, true, false}
	x, labels := tinyWorld(rng, 600, known)
	m := Fit(x, labels, 4, tinyFamily, known, Config{})

	calm := m.Scores([]float64{0, 0, 0, 0})
	spike := m.Scores([]float64{0, 0, 0, 25})
	if spike[3] < calm[3] {
		t.Fatalf("hidden-cause score should not drop when its feature spikes: %v -> %v", calm[3], spike[3])
	}
}

func TestFitRejectsBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Fit([][]float64{{1, 2, 3, 4}}, []int{9}, 4, tinyFamily, []bool{true, true, true, true}, Config{})
}

func TestFitRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Fit(nil, nil, 4, tinyFamily, nil, Config{})
}

func TestFitRejectsFamilyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Fit([][]float64{{1, 2}}, []int{0}, 2, []int{0}, []bool{true, true}, Config{})
}

func TestMaxKDEPointsCapsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	known := []bool{true, true, true, true}
	x, labels := tinyWorld(rng, 1000, known)
	m := Fit(x, labels, 4, tinyFamily, known, Config{MaxKDEPoints: 16})
	for key, k := range m.specific {
		if k.Len() > 16 {
			t.Fatalf("likelihood %v has %d support points", key, k.Len())
		}
	}
	if m.SpecificLikelihoods() == 0 {
		t.Fatal("no specific likelihoods fitted")
	}
}
