package tcpinfo

import (
	"io"
	"net"
	"testing"
)

// loopbackPair returns a connected TCP pair over loopback.
func loopbackPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestGetOnLiveConnection(t *testing.T) {
	if !Supported() {
		t.Skip("TCP_INFO unsupported on this platform")
	}
	client, server := loopbackPair(t)
	// Push some traffic so the counters move.
	payload := make([]byte, 256<<10)
	go func() {
		client.Write(payload)
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}

	info, err := Get(client)
	if err != nil {
		t.Fatal(err)
	}
	// TCP_ESTABLISHED = 1.
	if info.State != 1 {
		t.Fatalf("state %d, want ESTABLISHED", info.State)
	}
	if info.SndMSS == 0 || info.SndMSS > 65535 {
		t.Fatalf("implausible MSS %d", info.SndMSS)
	}
	if info.RTTUs == 0 || info.RTTUs > 5_000_000 {
		t.Fatalf("implausible loopback RTT %d µs", info.RTTUs)
	}
	if info.SndCwnd == 0 {
		t.Fatal("zero congestion window")
	}
	// Loopback must not retransmit.
	if info.TotalRetrans != 0 {
		t.Fatalf("loopback retransmitted %d segments", info.TotalRetrans)
	}
}

func TestGetRejectsNonTCP(t *testing.T) {
	if !Supported() {
		t.Skip("TCP_INFO unsupported on this platform")
	}
	c1, c2 := net.Pipe() // in-memory, not a syscall.Conn
	defer c1.Close()
	defer c2.Close()
	if _, err := Get(c1); err == nil {
		t.Fatal("want error for non-syscall conn")
	}
}

func TestSupportedConsistent(t *testing.T) {
	// On unsupported platforms Get must return ErrUnsupported; this test
	// just pins the contract both ways.
	if !Supported() {
		if _, err := Get(nil); err != ErrUnsupported {
			t.Fatalf("err = %v, want ErrUnsupported", err)
		}
	}
}
