//go:build !linux

package tcpinfo

import (
	"errors"
	"net"
)

// Info is the decoded subset of struct tcp_info (see the linux build).
type Info struct {
	State        uint8
	Retransmits  uint8
	RTOUs        uint32
	SndMSS       uint32
	RcvMSS       uint32
	Unacked      uint32
	Lost         uint32
	Retrans      uint32
	RTTUs        uint32
	RTTVarUs     uint32
	SndCwnd      uint32
	Reordering   uint32
	TotalRetrans uint32
}

// ErrUnsupported is returned on platforms without TCP_INFO.
var ErrUnsupported = errors.New("tcpinfo: unsupported platform or connection type")

// Get is unavailable off Linux.
func Get(net.Conn) (Info, error) { return Info{}, ErrUnsupported }

// Supported reports whether this platform can read TCP_INFO.
func Supported() bool { return false }
