//go:build linux

// Package tcpinfo reads kernel TCP statistics from live sockets via the
// getsockopt(TCP_INFO) syscall — the mechanism the paper's landmarks use
// to expose retransmission and reordering counters to their clients
// (§IV-A-b: "we use the getsockopt linux syscall on each landmark server
// to make raw TCP statistics available").
//
// Only the stable prefix of struct tcp_info (unchanged since Linux 2.6) is
// decoded; offsets are documented inline against include/uapi/linux/tcp.h.
package tcpinfo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// Info is the decoded subset of struct tcp_info.
type Info struct {
	State        uint8
	Retransmits  uint8  // consecutive retransmits of the current segment
	RTOUs        uint32 // retransmission timeout (µs)
	SndMSS       uint32
	RcvMSS       uint32
	Unacked      uint32
	Lost         uint32 // segments currently considered lost
	Retrans      uint32 // segments currently retransmitted
	RTTUs        uint32 // smoothed RTT (µs)
	RTTVarUs     uint32
	SndCwnd      uint32
	Reordering   uint32
	TotalRetrans uint32 // lifetime retransmitted segments
}

// Field offsets within struct tcp_info (linux/tcp.h, stable ABI prefix):
//
//	0   u8  tcpi_state
//	1   u8  tcpi_ca_state
//	2   u8  tcpi_retransmits
//	3   u8  tcpi_probes
//	4   u8  tcpi_backoff
//	5   u8  tcpi_options
//	6   u8  tcpi_snd_wscale:4, tcpi_rcv_wscale:4
//	7   u8  (padding / tcpi_delivery_rate_app_limited on newer kernels)
//	8   u32 tcpi_rto            12 u32 tcpi_ato
//	16  u32 tcpi_snd_mss        20 u32 tcpi_rcv_mss
//	24  u32 tcpi_unacked        28 u32 tcpi_sacked
//	32  u32 tcpi_lost           36 u32 tcpi_retrans
//	40  u32 tcpi_fackets        44 u32 tcpi_last_data_sent
//	48  u32 tcpi_last_ack_sent  52 u32 tcpi_last_data_recv
//	56  u32 tcpi_last_ack_recv  60 u32 tcpi_pmtu
//	64  u32 tcpi_rcv_ssthresh   68 u32 tcpi_rtt
//	72  u32 tcpi_rttvar         76 u32 tcpi_snd_ssthresh
//	80  u32 tcpi_snd_cwnd       84 u32 tcpi_advmss
//	88  u32 tcpi_reordering     92 u32 tcpi_rcv_rtt
//	96  u32 tcpi_rcv_space      100 u32 tcpi_total_retrans
const infoBufLen = 104

// ErrUnsupported is returned on platforms without TCP_INFO.
var ErrUnsupported = errors.New("tcpinfo: unsupported platform or connection type")

// Get reads TCP_INFO from a *net.TCPConn (or any syscall.Conn wrapping a
// TCP socket).
func Get(conn net.Conn) (Info, error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return Info{}, ErrUnsupported
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return Info{}, err
	}
	var buf [infoBufLen]byte
	var sysErr error
	ctrlErr := raw.Control(func(fd uintptr) {
		l := uint32(len(buf))
		_, _, errno := syscall.Syscall6(
			syscall.SYS_GETSOCKOPT,
			fd,
			uintptr(syscall.IPPROTO_TCP),
			uintptr(syscall.TCP_INFO),
			uintptr(unsafe.Pointer(&buf[0])),
			uintptr(unsafe.Pointer(&l)),
			0,
		)
		if errno != 0 {
			sysErr = fmt.Errorf("tcpinfo: getsockopt: %w", errno)
			return
		}
		if l < infoBufLen {
			sysErr = fmt.Errorf("tcpinfo: kernel returned %d bytes, want ≥%d", l, infoBufLen)
		}
	})
	if ctrlErr != nil {
		return Info{}, ctrlErr
	}
	if sysErr != nil {
		return Info{}, sysErr
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(buf[off : off+4]) }
	return Info{
		State:        buf[0],
		Retransmits:  buf[2],
		RTOUs:        u32(8),
		SndMSS:       u32(16),
		RcvMSS:       u32(20),
		Unacked:      u32(24),
		Lost:         u32(32),
		Retrans:      u32(36),
		RTTUs:        u32(68),
		RTTVarUs:     u32(72),
		SndCwnd:      u32(80),
		Reordering:   u32(88),
		TotalRetrans: u32(100),
	}, nil
}

// Supported reports whether this platform can read TCP_INFO.
func Supported() bool { return true }
