// Package qoe models the client-side Quality of Experience the paper
// derives from window.performance timings: a page-load-time model over the
// simulated network, a binary degradation indicator relative to the
// fault-free load time, and the root-cause attribution rule used to label
// training samples ("at most one fault was the real root cause for QoE
// degradation", §IV-A-e).
package qoe

import (
	"math"
	"math/rand"

	"diagnet/internal/netsim"
	"diagnet/internal/services"
)

// Degradation thresholds: a load is degraded when it exceeds
// ratio·baseline + slack, where the baseline is the fault-free, noise-free
// load time at the same tick.
const (
	degradedRatio   = 1.25
	degradedSlackMs = 40
)

// Render-time model: pages cost a fixed parse time plus a per-byte cost,
// multiplied when the client CPU is stressed (Chromium navigation slowdown,
// §IV-A-e fault vi).
const (
	renderBaseMs  = 10.0
	renderPerMBMs = 30.0
)

// Model evaluates page load times and QoE over a simulated world.
type Model struct {
	W       *netsim.World
	nearest []int // nearest region per client region (CDN mapping)
}

// New builds a QoE model; the CDN "nearest region" mapping is precomputed
// from base RTTs.
func New(w *netsim.World) *Model {
	m := &Model{W: w, nearest: make([]int, w.NumRegions())}
	for c := 0; c < w.NumRegions(); c++ {
		best := 0
		for r := 1; r < w.NumRegions(); r++ {
			if w.BaseRTT(c, r) < w.BaseRTT(c, best) {
				best = r
			}
		}
		m.nearest[c] = best
	}
	return m
}

// Nearest returns the CDN region serving a client region.
func (m *Model) Nearest(client int) int { return m.nearest[client] }

// LoadTime returns the page load time in milliseconds for a client loading
// svc under env. rng adds measurement noise; nil gives the deterministic
// expectation (used for baselines and ground-truth attribution).
func (m *Model) LoadTime(client int, svc services.Service, env netsim.Env, rng *rand.Rand) float64 {
	resources := svc.Resources(client, m.Nearest)
	cpu := m.W.CPULoadAt(client, env)
	cpuFactor := 1.0
	if cpu > 0.5 {
		cpuFactor = 1 + (6-1)*(cpu-0.5)/0.5
	}
	var total float64
	var bytes int
	for _, r := range resources {
		p := m.W.PathConditions(client, r.Host, env, rng)
		// Effective per-round-trip latency: RTT inflated by jitter and by
		// loss-induced retransmissions.
		eff := p.RTTMs*(1+4*p.Loss) + 0.4*p.JitterMs
		rounds := 1.0 // request/response
		if !r.ReuseConn {
			rounds += 3 // DNS + TCP handshake + TLS setup
			total += 5  // resolver cache / local stack
		}
		total += rounds * eff
		total += float64(r.Bytes) * 8 / (p.DownMbps * 1000) // transfer ms
		bytes += r.Bytes
	}
	render := (renderBaseMs + renderPerMBMs*float64(bytes)/(1<<20)) * cpuFactor
	total += render
	if rng != nil {
		total *= 1 + 0.04*rng.NormFloat64()
		total = math.Max(1, total)
	}
	return total
}

// Baseline returns the fault-free, noise-free load time at the same tick.
func (m *Model) Baseline(client int, svc services.Service, tick int64) float64 {
	return m.LoadTime(client, svc, netsim.Env{Tick: tick}, nil)
}

// Degraded reports whether the (noise-free) load under env exceeds the
// degradation threshold relative to the fault-free baseline.
func (m *Model) Degraded(client int, svc services.Service, env netsim.Env) bool {
	lt := m.LoadTime(client, svc, env, nil)
	base := m.Baseline(client, svc, env.Tick)
	return lt > base*degradedRatio+degradedSlackMs
}

// RootCause attributes a degradation to the single injected fault whose
// individual presence explains it, following the paper's ground-truth
// policy. It returns the index into env.Faults of the root cause and true,
// or -1 and false when the QoE is not degraded under env. When several
// faults individually degrade the QoE, the one causing the largest
// individual load time wins.
func (m *Model) RootCause(client int, svc services.Service, env netsim.Env) (int, bool) {
	if len(env.Faults) == 0 || !m.Degraded(client, svc, env) {
		return -1, false
	}
	best, bestLoad := -1, 0.0
	for i := range env.Faults {
		solo := env.OnlyFault(i)
		if !m.Degraded(client, svc, solo) {
			continue
		}
		lt := m.LoadTime(client, svc, solo, nil)
		if lt > bestLoad {
			best, bestLoad = i, lt
		}
	}
	if best < 0 {
		// Degradation emerges only from the combination; attribute to the
		// fault whose removal helps most.
		worstDrop := math.Inf(-1)
		full := m.LoadTime(client, svc, env, nil)
		for i := range env.Faults {
			drop := full - m.LoadTime(client, svc, env.WithoutFault(i), nil)
			if drop > worstDrop {
				worstDrop, best = drop, i
			}
		}
	}
	return best, true
}
