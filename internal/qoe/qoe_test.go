package qoe

import (
	"testing"

	"diagnet/internal/netsim"
	"diagnet/internal/services"
	"diagnet/internal/stats"
)

func newModel() *Model { return New(netsim.NewWorld(netsim.Config{Seed: 1})) }

func svcOf(kind services.Kind, host int) services.Service {
	return services.Service{ID: 0, Kind: kind, Host: host}
}

func TestNearestIsSelfRegion(t *testing.T) {
	m := newModel()
	for c := 0; c < m.W.NumRegions(); c++ {
		if m.Nearest(c) != c {
			t.Fatalf("nearest CDN for %d is %d; intra-region PoP should win", c, m.Nearest(c))
		}
	}
}

func TestBaselineNoFaultNotDegraded(t *testing.T) {
	m := newModel()
	for _, svc := range services.Catalog() {
		for client := 0; client < m.W.NumRegions(); client++ {
			if m.Degraded(client, svc, netsim.Env{Tick: 42}) {
				t.Fatalf("clean env degraded for %s client %d", svc.Name(), client)
			}
		}
	}
}

func TestFarClientsLoadSlower(t *testing.T) {
	m := newModel()
	svc := svcOf(services.ImageFar, netsim.GRAV)
	near := m.LoadTime(netsim.AMST, svc, netsim.Env{}, nil)
	far := m.LoadTime(netsim.SYDN, svc, netsim.Env{}, nil)
	if far <= near {
		t.Fatalf("far load %v <= near load %v", far, near)
	}
}

func TestRateFaultDegradesImageButNotSingle(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultRate, netsim.GRAV)}}
	img := svcOf(services.ImageLocal, netsim.GRAV)
	single := svcOf(services.Single, netsim.GRAV)
	client := netsim.AMST
	if !m.Degraded(client, img, env) {
		t.Fatal("8 Mbit/s shaping should degrade a 5 MB page")
	}
	if m.Degraded(client, single, env) {
		t.Fatal("paper: small HTML QoE unaffected by shaped bandwidth")
	}
}

func TestServiceDelayDegradesDependentService(t *testing.T) {
	m := newModel()
	// script.far depends on BEAU; delay BEAU hosts.
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultServiceDelay, netsim.BEAU)}}
	svc := svcOf(services.ScriptFar, netsim.GRAV)
	if !m.Degraded(netsim.GRAV, svc, env) {
		t.Fatal("BEAU delay should degrade script.far for a nearby client")
	}
	// An image.cdn service of a distant client does not touch BEAU.
	cdn := svcOf(services.ImageCDN, netsim.SING)
	if m.Degraded(netsim.TOKY, cdn, env) {
		t.Fatal("BEAU delay leaked into a service that never touches BEAU")
	}
}

func TestGatewayDelayDegradesEverySmallService(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultGatewayDelay, netsim.SING)}}
	svc := svcOf(services.Single, netsim.SING)
	if !m.Degraded(netsim.SING, svc, env) {
		t.Fatal("gateway delay should degrade a latency-bound page")
	}
	// Clients elsewhere are untouched.
	if m.Degraded(netsim.SEAT, svc, env) {
		t.Fatal("gateway fault leaked to another region's clients")
	}
}

func TestLossFaultDegrades(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.SEAT)}}
	if !m.Degraded(netsim.EAST, svcOf(services.ImageLocal, netsim.SEAT), env) {
		t.Fatal("8% loss should degrade a 5MB page from the lossy region")
	}
}

func TestCPUStressDegradesHeavyPage(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultCPUStress, netsim.AMST)}}
	if !m.Degraded(netsim.AMST, svcOf(services.ImageCDN, netsim.GRAV), env) {
		t.Fatal("CPU stress should degrade a render-heavy page")
	}
}

func TestRootCauseSingleFault(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultRate, netsim.GRAV)}}
	idx, degraded := m.RootCause(netsim.AMST, svcOf(services.ImageLocal, netsim.GRAV), env)
	if !degraded || idx != 0 {
		t.Fatalf("RootCause = %d, %v", idx, degraded)
	}
	// Non-degrading fault: no root cause.
	env2 := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultRate, netsim.GRAV)}}
	idx, degraded = m.RootCause(netsim.AMST, svcOf(services.Single, netsim.GRAV), env2)
	if degraded || idx != -1 {
		t.Fatal("single page should stay nominal under shaping")
	}
}

func TestRootCausePicksTheDegradingFault(t *testing.T) {
	m := newModel()
	// Rate fault at GRAV degrades the image; rate fault at SING is irrelevant
	// to this service.
	env := netsim.Env{Faults: []netsim.Fault{
		netsim.NewFault(netsim.FaultRate, netsim.SING),
		netsim.NewFault(netsim.FaultRate, netsim.GRAV),
	}}
	idx, degraded := m.RootCause(netsim.AMST, svcOf(services.ImageLocal, netsim.GRAV), env)
	if !degraded || idx != 1 {
		t.Fatalf("RootCause picked fault %d (degraded=%v), want 1", idx, degraded)
	}
}

func TestRootCauseEmptyEnv(t *testing.T) {
	m := newModel()
	if idx, deg := m.RootCause(netsim.AMST, svcOf(services.Single, netsim.GRAV), netsim.Env{}); deg || idx != -1 {
		t.Fatal("no faults must give no cause")
	}
}

func TestLoadTimeNoiseBoundedAndDeterministic(t *testing.T) {
	m := newModel()
	svc := svcOf(services.ScriptCDN, netsim.SEAT)
	env := netsim.Env{Tick: 17}
	a := m.LoadTime(netsim.SEAT, svc, env, stats.NewRand(5, 0))
	b := m.LoadTime(netsim.SEAT, svc, env, stats.NewRand(5, 0))
	if a != b {
		t.Fatal("noisy load time not reproducible for same seed")
	}
	clean := m.LoadTime(netsim.SEAT, svc, env, nil)
	if a < clean*0.5 || a > clean*2 {
		t.Fatalf("noisy load %v too far from clean %v", a, clean)
	}
}
