package qoe

import (
	"testing"

	"diagnet/internal/netsim"
	"diagnet/internal/services"
)

// Two individually harmless faults can degrade jointly; attribution must
// then pick the fault whose removal helps most instead of returning -1.
func TestRootCauseCombinationOnly(t *testing.T) {
	m := newModel()
	svc := svcOf(services.ScriptFar, netsim.GRAV)
	client := netsim.SYDN // far client: large baseline, single faults too weak

	// Half-magnitude latency faults at the service host and the dependency.
	mk := func(region int, mag float64) netsim.Fault {
		f := netsim.NewFault(netsim.FaultServiceDelay, region)
		f.Magnitude = mag
		return f
	}
	// Search a magnitude where neither alone degrades but both do.
	for _, mag := range []float64{0.4, 0.6, 0.8, 1.0, 1.4} {
		env := netsim.Env{Faults: []netsim.Fault{mk(netsim.GRAV, mag), mk(netsim.BEAU, mag)}}
		aloneA := m.Degraded(client, svc, env.OnlyFault(0))
		aloneB := m.Degraded(client, svc, env.OnlyFault(1))
		both := m.Degraded(client, svc, env)
		if both && !aloneA && !aloneB {
			idx, degraded := m.RootCause(client, svc, env)
			if !degraded {
				t.Fatal("RootCause lost the degradation")
			}
			if idx != 0 && idx != 1 {
				t.Fatalf("idx %d", idx)
			}
			return // exercised the combination path
		}
	}
	t.Skip("no magnitude produced a combination-only degradation for this geometry")
}

func TestMagnitudeScalesSeverity(t *testing.T) {
	m := newModel()
	svc := svcOf(services.Single, netsim.GRAV)
	client := netsim.AMST
	mk := func(mag float64) netsim.Env {
		f := netsim.NewFault(netsim.FaultServiceDelay, netsim.GRAV)
		f.Magnitude = mag
		return netsim.Env{Faults: []netsim.Fault{f}}
	}
	light := m.LoadTime(client, svc, mk(0.5), nil)
	heavy := m.LoadTime(client, svc, mk(2.0), nil)
	if heavy <= light {
		t.Fatalf("magnitude has no effect: %v vs %v", light, heavy)
	}
}

func TestJitterFaultDegradesNearbyClient(t *testing.T) {
	m := newModel()
	env := netsim.Env{Faults: []netsim.Fault{netsim.NewFault(netsim.FaultJitter, netsim.GRAV)}}
	if !m.Degraded(netsim.GRAV, svcOf(services.Single, netsim.GRAV), env) {
		t.Fatal("jitter fault should degrade a latency-bound nearby page")
	}
}

func TestBaselineStableAcrossTicks(t *testing.T) {
	m := newModel()
	svc := svcOf(services.ImageCDN, netsim.SING)
	// The baseline is computed at the same tick, so congestion cancels and
	// no clean tick may cross the degradation threshold.
	for tick := int64(0); tick < 96; tick += 7 {
		if m.Degraded(netsim.TOKY, svc, netsim.Env{Tick: tick}) {
			t.Fatalf("clean env degraded at tick %d", tick)
		}
	}
}
