package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/forest"
	"diagnet/internal/netsim"
	"diagnet/internal/serving"
)

var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureTest  *dataset.Dataset
)

// fixture trains one tiny model for the whole test package (same shape as
// the serving and analysis fixtures).
func fixture(t testing.TB) (*core.Model, *dataset.Dataset) {
	t.Helper()
	fixtureOnce.Do(func() {
		w := netsim.NewWorld(netsim.Config{Seed: 1})
		d := dataset.Generate(dataset.GenConfig{
			World:          w,
			NominalSamples: 300,
			FaultSamples:   800,
			Seed:           21,
		})
		train, test := d.Split(0.8, netsim.HiddenLandmarks(), 23)
		cfg := core.DefaultConfig()
		cfg.Filters = 6
		cfg.Hidden = []int{24, 12}
		cfg.Epochs = 6
		cfg.Forest = forest.Config{Trees: 10, Tree: forest.TreeConfig{MaxDepth: 6}}
		known := []int{netsim.BEAU, netsim.AMST, netsim.SING, netsim.LOND, netsim.FRNK, netsim.TOKY, netsim.SYDN}
		fixtureModel = core.TrainGeneral(train, known, cfg).Model
		fixtureTest = test
	})
	return fixtureModel, fixtureTest
}

// diagnoseRequest returns a valid degraded-sample request.
func diagnoseRequest(t testing.TB) analysis.DiagnoseRequest {
	t.Helper()
	_, test := fixture(t)
	deg := test.Degraded()
	if deg.Len() == 0 {
		t.Fatal("no degraded samples")
	}
	s := &deg.Samples[0]
	return analysis.DiagnoseRequest{
		ServiceID: s.Service,
		Landmarks: test.Layout.Landmarks,
		Features:  s.Features,
	}
}

// diagnoseBody returns the request as a JSON body.
func diagnoseBody(t testing.TB) []byte {
	t.Helper()
	req := diagnoseRequest(t)
	b, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// ---------------------------------------------------------------------------
// Real replica: a full diagnetd stack (serving engine + analysis server)
// on a loopback listener, with kill/restart on a stable address.

type realReplica struct {
	t      testing.TB
	addr   string // stable host:port, survives kill/restart
	engine *serving.Engine
	srv    *analysis.Server

	mu      sync.Mutex
	httpSrv *http.Server
}

// startRealReplica boots a replica on an ephemeral loopback port serving
// the shared tiny fixture model.
func startRealReplica(t testing.TB) *realReplica {
	t.Helper()
	m, _ := fixture(t)
	return startRealReplicaWith(t, m)
}

// startRealReplicaWith boots a replica serving the given model.
func startRealReplicaWith(t testing.TB, m *core.Model) *realReplica {
	t.Helper()
	e := serving.New(serving.Config{BatchMax: 8, BatchWait: time.Millisecond, QueueDepth: 256})
	if err := e.Registry().AddModel("boot", m); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Promote("boot"); err != nil {
		t.Fatal(err)
	}
	srv := analysis.NewServerFromEngine(e)
	srv.SetReady(true)
	r := &realReplica{t: t, engine: e, srv: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.addr = ln.Addr().String()
	r.serve(ln)
	t.Cleanup(func() {
		r.kill()
		ctx, cancel := context.WithTimeout(context.Background(), serving.DrainTimeout)
		defer cancel()
		e.Close(ctx)
	})
	return r
}

func (r *realReplica) serve(ln net.Listener) {
	s := &http.Server{Handler: r.srv.Handler()}
	r.mu.Lock()
	r.httpSrv = s
	r.mu.Unlock()
	go s.Serve(ln)
}

// url returns the replica's base URL.
func (r *realReplica) url() string { return "http://" + r.addr }

// kill abruptly closes the listener and every active connection — the
// crash the e2e test injects. Idempotent.
func (r *realReplica) kill() {
	r.mu.Lock()
	s := r.httpSrv
	r.httpSrv = nil
	r.mu.Unlock()
	if s != nil {
		s.Close()
	}
}

// restart brings the replica back on the same address. The port was just
// freed by kill, but give the OS a few tries in case something raced us
// onto it.
func (r *realReplica) restart() {
	r.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", r.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		r.t.Errorf("restart on %s: %v", r.addr, err)
		return
	}
	r.serve(ln)
}

// ---------------------------------------------------------------------------
// Fake replica: a scriptable stand-in for unit tests (affinity,
// backpressure, hedging, scatter-gather) where a real model would only
// add noise.

type fakeReplica struct {
	srv   *httptest.Server
	ready atomic.Bool
	hits  atomic.Int64 // diagnose + batch requests received
}

// newFakeReplica serves /readyz from the ready flag and routes diagnose
// and batch traffic through handle (wrapped however the test likes).
func newFakeReplica(t testing.TB, handle http.Handler) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	count := func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		handle.ServeHTTP(w, r)
	}
	mux.HandleFunc("/v1/diagnose", count)
	mux.HandleFunc("/v1/diagnose-batch", count)
	mux.HandleFunc("/v1/model", count)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) url() string { return f.srv.URL }

// okDiagnose answers every diagnose with a fixed response stamped with
// the given version (so tests can tell replicas apart by body).
func okDiagnose(version string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&analysis.DiagnoseResponse{
			Family:       "congestion",
			ModelService: -1,
			ModelVersion: version,
		})
	}
}

// echoBatch answers a batch by echoing each request's ServiceID into its
// response's ModelService and stamping the serving replica's version —
// enough to verify merge order and chunk placement.
func echoBatch(version string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req analysis.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := analysis.BatchResponse{
			Responses: make([]*analysis.DiagnoseResponse, len(req.Requests)),
			Errors:    make([]string, len(req.Requests)),
		}
		for i := range req.Requests {
			resp.Responses[i] = &analysis.DiagnoseResponse{
				ModelService: req.Requests[i].ServiceID,
				ModelVersion: version,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&resp)
	}
}

// newTestRouter builds a router over the given URLs with a fast health
// sweep and registers its shutdown.
func newTestRouter(t testing.TB, urls []string, cfg Config) *Router {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	rt := NewRouter(urls, cfg)
	t.Cleanup(rt.Close)
	return rt
}

// postJSON posts body to the router and returns status + response body.
func postJSON(t testing.TB, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, out
}
