package cluster

import (
	"sync/atomic"
	"time"

	"diagnet/internal/resilience"
)

// Replica is one diagnetd instance behind the router: its base URL plus
// the health state the routing policy reads — readiness (from the active
// /readyz sweep), a circuit breaker fed by live request outcomes, an EWMA
// of attempt latency, the in-flight count for pick-two least-loaded, and
// the backpressure window a 429's Retry-After opened.
type Replica struct {
	name string // base URL, also the rendezvous-hash identity

	breaker *resilience.Breaker
	lat     *resilience.EWMA // attempt latency, milliseconds

	outstanding atomic.Int64
	healthy     atomic.Bool
	loadedUntil atomic.Int64 // unix nanos; 0 = not loaded
	transitions atomic.Int64 // health flips, for the snapshot
}

// newReplica builds a replica in the unknown-health state (the first
// sweep decides).
func newReplica(name string, cfg Config) *Replica {
	return &Replica{
		name: name,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: cfg.BreakerThreshold,
			Cooldown:         cfg.BreakerCooldown,
			Now:              cfg.Now,
			OnTransition: func(from, to resilience.BreakerState) {
				mBreakerTransitions.Inc()
			},
		}),
		lat: resilience.NewEWMA(0.3),
	}
}

// Name returns the replica's base URL.
func (r *Replica) Name() string { return r.name }

// Healthy reports the last /readyz verdict.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// setHealthy records a sweep verdict, reporting whether it flipped.
func (r *Replica) setHealthy(v bool) bool {
	if r.healthy.Swap(v) == v {
		return false
	}
	r.transitions.Add(1)
	return true
}

// Loaded reports whether the replica is inside a 429 backpressure window.
func (r *Replica) Loaded(now time.Time) bool {
	return now.UnixNano() < r.loadedUntil.Load()
}

// markLoaded parks the replica until now+d (its advertised Retry-After):
// the router honors the replica's own recovery estimate instead of
// retrying into a queue the replica just said is full.
func (r *Replica) markLoaded(now time.Time, d time.Duration) {
	r.loadedUntil.Store(now.Add(d).UnixNano())
}

// Outstanding returns the in-flight attempt count.
func (r *Replica) Outstanding() int64 { return r.outstanding.Load() }

// LatencyMs returns the attempt-latency EWMA (0 before any sample).
func (r *Replica) LatencyMs() float64 { return r.lat.Value() }

// ReplicaStatus is one replica's externally visible state (GET
// /v1/replicas).
type ReplicaStatus struct {
	Name        string  `json:"name"`
	Healthy     bool    `json:"healthy"`
	Loaded      bool    `json:"loaded"`
	Breaker     string  `json:"breaker"`
	Outstanding int64   `json:"outstanding"`
	LatencyMs   float64 `json:"latency_ms"`
	Transitions int64   `json:"health_transitions"`
}

// status snapshots the replica.
func (r *Replica) status(now time.Time) ReplicaStatus {
	return ReplicaStatus{
		Name:        r.name,
		Healthy:     r.healthy.Load(),
		Loaded:      r.Loaded(now),
		Breaker:     r.breaker.State().String(),
		Outstanding: r.outstanding.Load(),
		LatencyMs:   r.lat.Value(),
		Transitions: r.transitions.Load(),
	}
}
