// Package cluster is DiagNet's replicated serving tier: a front-end
// router (cmd/diagnet-router) that fans client traffic across N diagnetd
// replicas, turning the single-process analysis service into the
// horizontally scaled localization tier an Internet-scale deployment
// needs (§II "heavy traffic from millions of users"; NetRCA-style
// replicated localization).
//
// The routing policy has five pillars (DESIGN.md §14):
//
//   - Health-aware replica pool. Every replica is actively probed on its
//     /readyz endpoint; a replica that is recovering, draining or dead
//     takes no traffic. Per-replica EWMA latency and an
//     internal/resilience circuit breaker (fed by live request outcomes)
//     catch the failure modes a readiness probe is too slow or too coarse
//     to see.
//
//   - Pick-two least-loaded routing with consistent-hash affinity. The
//     request's service ID selects a rendezvous-hashed pair of preferred
//     replicas, and the less-loaded of the two serves it. Affinity keeps a
//     service's traffic on the same replicas, so per-service specialized
//     models and their session caches stay warm; pick-two bounds the
//     damage when the hash concentrates load.
//
//   - Tail-latency hedging. If the chosen replica has not answered after a
//     p9x-derived delay, the router issues a duplicate to the next
//     candidate; the first answer wins and the loser is canceled. The
//     serving engine sheds the canceled duplicate before it consumes a
//     batch slot (serving.Stats.ShedCanceled), so hedges trade a little
//     admission work for a lot of tail latency.
//
//   - Scatter-gather batches. A large /v1/diagnose-batch is split into
//     contiguous chunks across the ready replicas, executed in parallel,
//     and merged back in request order.
//
//   - Backpressure propagation. A replica's 429 is honored, never blindly
//     retried against the same replica: the advertised Retry-After parks
//     the replica for its own stated recovery window, and only when every
//     replica is loaded does the 429 (with the advice) reach the client.
//
// Every hop is traced (router route → replica attempt → hedge) with W3C
// traceparent propagation into the replicas, and counted in
// internal/telemetry; the router serves /healthz, /readyz and /v1/metrics
// like the other daemons.
package cluster

import (
	"errors"
	"net/http"
	"time"
)

// maxBody bounds request and proxied response bodies (mirrors the
// analysis plane's 8 MiB request bound).
const maxBody = 8 << 20

// maxBatch bounds a single batch request (mirrors the analysis plane).
const maxBatch = 1024

// ErrNoReplicas reports that no replica could take the request: none are
// ready, or every candidate's circuit is open.
var ErrNoReplicas = errors.New("cluster: no replica available")

// Config tunes a Router. The zero value selects the documented defaults.
type Config struct {
	// HedgeAfter is the hedging delay: how long the first attempt may run
	// before a duplicate is issued to the next replica. Zero derives the
	// delay from the observed attempt-latency tail (p90 once enough
	// samples exist, HedgeDefault before that); a negative value disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeDefault seeds the adaptive delay before the latency histogram
	// has enough samples to trust its tail (default 25ms).
	HedgeDefault time.Duration
	// HedgeMin floors the adaptive delay (default 1ms) so a fast-replica
	// tail cannot collapse hedging into doubling every request.
	HedgeMin time.Duration
	// NoAffinity disables consistent-hash service affinity; requests then
	// go to the least-loaded ready replica regardless of service.
	NoAffinity bool
	// HealthInterval is the /readyz sweep period (default 500ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one readiness probe (default 1s).
	HealthTimeout time.Duration
	// AttemptTimeout bounds one proxied attempt (default 30s).
	AttemptTimeout time.Duration
	// LoadedFallback parks a 429-ing replica when it advertised no
	// Retry-After (default 1s).
	LoadedFallback time.Duration
	// BatchChunk is the smallest scatter-gather chunk; batches are split
	// into at most ceil(len/BatchChunk) chunks, never more than there are
	// ready replicas (default 8).
	BatchChunk int
	// Breaker tunes the per-replica circuit breakers. The zero value uses
	// a threshold of 3 consecutive failures and a 5s cooldown — shorter
	// than the probing plane's default because a replica behind a router
	// also has a readiness probe vouching for its recovery.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the outbound round tripper (tests).
	Transport http.RoundTripper
	// Now substitutes a fake clock in tests (default time.Now).
	Now func() time.Time
	// Obs configures the fleet observability plane: metric federation,
	// SLO burn-rate alerting, anomaly-triggered profiling. The zero value
	// disables it.
	Obs ObsConfig
}

// defaultTransport is the router's outbound transport: DefaultTransport
// semantics with a per-replica idle pool sized for fan-in. The stock
// transport keeps only 2 idle connections per host, so under concurrent
// load nearly every proxied attempt would pay a fresh TCP handshake —
// measured as ~3× p99 inflation in BenchmarkRouter before this existed.
func defaultTransport() http.RoundTripper {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return http.DefaultTransport
	}
	t = t.Clone()
	t.MaxIdleConns = 1024
	t.MaxIdleConnsPerHost = 256
	return t
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.HedgeDefault <= 0 {
		c.HedgeDefault = 25 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.LoadedFallback <= 0 {
		c.LoadedFallback = time.Second
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Transport == nil {
		c.Transport = defaultTransport()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time view of the router's hedging and failover
// counters (the full picture, per-route latencies included, is in the
// telemetry registry served by /v1/metrics).
type Stats struct {
	// Hedges counts hedge duplicates actually issued.
	Hedges int64 `json:"hedges"`
	// HedgeWins counts requests the hedge duplicate answered first.
	HedgeWins int64 `json:"hedge_wins"`
	// LosersCanceled counts in-flight attempts canceled because another
	// attempt won (hedge losers and overtaken failovers).
	LosersCanceled int64 `json:"losers_canceled"`
	// Failovers counts attempts relaunched on another replica after a
	// transient failure.
	Failovers int64 `json:"failovers"`
	// Backpressure counts replica 429s honored (replica parked for its
	// advertised Retry-After).
	Backpressure int64 `json:"backpressure"`
}
