package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
	"diagnet/internal/tracing"
)

// Router fans client traffic across a pool of diagnetd replicas with
// health-aware selection, tail-latency hedging, scatter-gather batches
// and honored backpressure. See the package comment for the policy.
type Router struct {
	cfg    Config
	pool   *Pool
	client *http.Client

	// latHist is the router-local attempt-latency histogram the adaptive
	// hedge delay reads its p90 from (private so concurrent routers in
	// one process — tests — do not pollute each other's tails).
	latHist *telemetry.Histogram

	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	losersCanceled atomic.Int64
	failovers      atomic.Int64
	backpressure   atomic.Int64

	// obs is the fleet observability plane (federation, SLO engine,
	// anomaly profiler); nil unless Config.Obs enables it.
	obs *routerObs

	handler http.Handler
}

// NewRouter builds a router over the given replica base URLs and starts
// the pool's health sweeper. Call Close to stop it.
func NewRouter(urls []string, cfg Config) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:  cfg,
		pool: NewPool(urls, cfg),
		client: &http.Client{
			// Per-attempt deadlines come from the attempt context; the
			// client itself must not cut hedged winners short.
			Transport: cfg.Transport,
		},
		latHist: telemetry.NewHistogram(nil),
	}
	rt.obs = newRouterObs(rt.pool, cfg.Obs)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/diagnose", instrument("diagnose", rt.handleDiagnose))
	mux.HandleFunc("/v1/diagnose-batch", instrument("diagnose_batch", rt.handleBatch))
	mux.HandleFunc("/v1/model", instrument("model", rt.handleModel))
	mux.HandleFunc("/v1/metrics", instrument("metrics", handleMetrics))
	mux.HandleFunc("/v1/replicas", instrument("replicas", rt.handleReplicas))
	mux.Handle("/metrics", obs.ExpositionHandler(telemetry.Default()))
	mux.HandleFunc("/v1/fleet/metrics", rt.handleFleetMetrics)
	mux.HandleFunc("/v1/slo", rt.handleSLO)
	mux.HandleFunc("/v1/profiles", rt.handleProfiles)
	mux.HandleFunc("/v1/profiles/", rt.handleProfiles)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	// The router is ready when it can route: at least one replica passed
	// its last readiness probe. Load balancers in front of a router fleet
	// use this exactly like the per-replica /readyz.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if rt.pool.HealthyCount() == 0 {
			http.Error(w, "no ready replicas", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	rt.handler = mux
	return rt
}

// Close stops the observability plane, then the health sweeper, then
// releases the shared transport's idle upstream connections. In-flight
// requests finish on their own contexts. Idempotent.
func (rt *Router) Close() {
	if rt.obs != nil {
		rt.obs.close()
	}
	rt.pool.Close()
	if tr, ok := rt.cfg.Transport.(interface{ CloseIdleConnections() }); ok {
		tr.CloseIdleConnections()
	}
}

// Pool exposes the replica pool (status, tests).
func (rt *Router) Pool() *Pool { return rt.pool }

// Stats returns the hedging/failover counters.
func (rt *Router) Stats() Stats {
	return Stats{
		Hedges:         rt.hedges.Load(),
		HedgeWins:      rt.hedgeWins.Load(),
		LosersCanceled: rt.losersCanceled.Load(),
		Failovers:      rt.failovers.Load(),
		Backpressure:   rt.backpressure.Load(),
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

// hedgeDelay returns the current hedging delay, or a negative duration
// when hedging is disabled. With HedgeAfter unset the delay tracks the
// observed attempt-latency p90 (floored at HedgeMin): hedge only the
// requests already slower than nine in ten, so the duplicate-work rate
// stays around 10% while the p99 collapses toward the p90.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter != 0 {
		return rt.cfg.HedgeAfter
	}
	s := rt.latHist.Snapshot()
	if s.Count < 20 {
		return rt.cfg.HedgeDefault
	}
	d := time.Duration(s.P90 * float64(time.Millisecond))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	return d
}

// attemptOutcome is one replica attempt's result.
type attemptOutcome struct {
	rep    *Replica
	hedged bool
	status int
	header http.Header
	body   []byte
	err    error
}

// writeUpstream relays an upstream response (or routing failure) to the
// client.
func writeUpstream(w http.ResponseWriter, out attemptOutcome) {
	if out.err != nil {
		http.Error(w, "cluster: "+out.err.Error(), http.StatusServiceUnavailable)
		return
	}
	if ct := out.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := out.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// route sends one request to the pool: primary attempt on the best-ranked
// replica, an optional hedge to the next after hedgeDelay, failover on
// transient failures, honored backpressure on 429. Each candidate is
// tried at most once; the first definitive answer wins and every other
// in-flight attempt is canceled.
func (rt *Router) route(ctx context.Context, method, path string, body []byte, key string, hedge bool) attemptOutcome {
	cands := rt.pool.Ranked(key)
	if len(cands) == 0 {
		return attemptOutcome{err: ErrNoReplicas}
	}
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	ch := make(chan attemptOutcome, len(cands)) // buffered: a loser finishing late never blocks

	next, inflight := 0, 0
	launch := func(hedged bool) bool {
		for next < len(cands) {
			rep := cands[next]
			next++
			// The breaker gate sits here, not in Ranked: Allow may hand us
			// the single half-open trial slot, which obliges this attempt
			// to report an outcome — attempt() always does.
			if _, ok := rep.breaker.Allow(); !ok {
				continue
			}
			if hedged {
				rt.hedges.Add(1)
				mHedges.Inc()
			}
			inflight++
			// Count the attempt as outstanding before the goroutine is
			// scheduled, so a concurrently-ranked request (e.g. a sibling
			// scatter chunk) sees this replica as busy and spreads out.
			rep.outstanding.Add(1)
			go rt.attempt(actx, rep, method, path, body, hedged, ch)
			return true
		}
		return false
	}
	if !launch(false) {
		return attemptOutcome{err: ErrNoReplicas}
	}

	var hedgeC <-chan time.Time
	if hedge {
		if d := rt.hedgeDelay(); d >= 0 && len(cands) > 1 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var lastFail, loaded429 attemptOutcome
	saw429 := false
	for {
		select {
		case out := <-ch:
			inflight--
			switch {
			case out.err == nil && out.status != http.StatusTooManyRequests && out.status < 500:
				// Definitive: success, or a terminal client error every
				// replica would agree on. Cancel the losers.
				if out.hedged {
					rt.hedgeWins.Add(1)
					mHedgeWins.Inc()
				}
				if inflight > 0 {
					rt.losersCanceled.Add(int64(inflight))
					mLosersCanceled.Add(int64(inflight))
				}
				return out
			case out.err == nil && out.status == http.StatusTooManyRequests:
				// Backpressure: park the replica for its advertised window
				// and try the next candidate — never the same one again.
				ra := analysis.ParseRetryAfter(out.header)
				if ra <= 0 {
					ra = rt.cfg.LoadedFallback
				}
				out.rep.markLoaded(rt.cfg.Now(), ra)
				rt.backpressure.Add(1)
				mBackpressure.Inc()
				loaded429, saw429 = out, true
				if !launch(false) && inflight == 0 {
					return out // every candidate is loaded: honor the 429
				}
			default:
				// Transient: transport error or 5xx. Fail over to the next
				// candidate; the attempt already fed the breaker.
				lastFail = out
				if launch(false) {
					rt.failovers.Add(1)
					mFailovers.Inc()
				} else if inflight == 0 {
					if saw429 {
						return loaded429 // a "come back later" beats a hard failure
					}
					return lastFail
				}
			}
		case <-hedgeC:
			hedgeC = nil
			launch(true)
		case <-ctx.Done():
			return attemptOutcome{err: ctx.Err()}
		}
	}
}

// attempt runs one proxied request against one replica, feeding the
// breaker, the latency EWMA and the attempt histogram, and tracing the
// hop as a "cluster.attempt" child span with the traceparent injected so
// the replica's route span joins the same trace.
func (rt *Router) attempt(ctx context.Context, rep *Replica, method, path string, body []byte, hedged bool, ch chan<- attemptOutcome) {
	out := attemptOutcome{rep: rep, hedged: hedged}
	defer rep.outstanding.Add(-1) // matches the Add(1) at the launch site
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	actx, span := tracing.StartSpan(actx, "cluster.attempt")
	span.SetAttr("replica", rep.name)
	span.SetAttr("hedge", hedged)
	defer span.End()

	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, rep.name+path, reader)
	if err != nil {
		// A malformed URL is the router's bug, not the replica's failure.
		out.err = err
		span.SetError(err)
		rep.breaker.Success()
		ch <- out
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	tracing.Inject(actx, req.Header)

	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		out.err = err
		span.SetError(err)
		if errors.Is(err, context.Canceled) {
			// A canceled hedge loser says nothing about the replica's
			// health; only real failures may open the breaker.
			rep.breaker.Success()
		} else {
			rep.breaker.Failure()
		}
		ch <- out
		return
	}
	// Bounded tail drain before Close: readResponse may stop short of EOF
	// (Content-Length fast path, maxBody cap), and an undrained body costs
	// the keep-alive connection on every proxied request.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 32<<10))
		resp.Body.Close()
	}()
	out.status = resp.StatusCode
	out.header = resp.Header
	if out.body, err = readResponse(resp); err != nil {
		out.err = err
		out.body = nil
		span.SetError(err)
		if errors.Is(err, context.Canceled) {
			rep.breaker.Success()
		} else {
			rep.breaker.Failure()
		}
		ch <- out
		return
	}
	lat := telemetry.Millis(time.Since(start))
	rep.lat.Observe(lat)
	rt.latHist.Observe(lat)
	mAttemptLatency.ObserveExemplar(lat, span.TraceID())
	span.SetAttr("http.status", resp.StatusCode)
	if resp.StatusCode >= 500 {
		span.SetError(fmt.Errorf("replica %s: http %d", rep.name, resp.StatusCode))
		rep.breaker.Failure()
	} else {
		rep.breaker.Success()
	}
	ch <- out
}

// readResponse reads a bounded upstream response body, preallocating
// from Content-Length when the replica sent one.
func readResponse(resp *http.Response) ([]byte, error) {
	if cl := resp.ContentLength; cl > 0 && cl <= maxBody {
		body := make([]byte, cl)
		n, err := io.ReadFull(resp.Body, body)
		return body[:n], err
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxBody))
}

// readBody reads a bounded request body, mapping oversize to 413. When
// the client sent a Content-Length the buffer is allocated once at that
// size — io.ReadAll's doubling growth costs several copies on a typical
// multi-kilobyte diagnose body, and the proxy path reads every request
// into memory (hedging needs a replayable body).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	lr := http.MaxBytesReader(w, r.Body, maxBody)
	var body []byte
	var err error
	if cl := r.ContentLength; cl > 0 && cl <= maxBody {
		body = make([]byte, cl)
		var n int
		n, err = io.ReadFull(lr, body)
		body = body[:n]
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			err = nil // a short body is the client's problem downstream
		}
	} else {
		body, err = io.ReadAll(lr)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}

// affinityKey extracts the consistent-hash key from a diagnose payload:
// the service ID, so per-service specialized models stay cache-warm on
// their replicas. The scan is byte-level, not a JSON decode — a diagnose
// body is dominated by the feature vector, and fully unmarshaling it just
// to read one int costs more than the rest of the proxy hop combined. A
// missing or unparsable ID yields no key (affinity is a placement hint;
// validation stays the replica's job).
func (rt *Router) affinityKey(body []byte) string {
	if rt.cfg.NoAffinity {
		return ""
	}
	id, ok := scanServiceID(body)
	if !ok {
		return ""
	}
	return "svc:" + strconv.Itoa(id)
}

// scanServiceID finds `"service_id": <int>` in a JSON object without
// decoding the document. A pathological body could hide the pattern
// inside a string value and skew the key, but the key only steers
// placement — every replica serves every service — so the cheap scan is
// safe.
func scanServiceID(body []byte) (int, bool) {
	i := bytes.Index(body, []byte(`"service_id"`))
	if i < 0 {
		return 0, false
	}
	i += len(`"service_id"`)
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i >= len(body) || body[i] != ':' {
		return 0, false
	}
	i++
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	j := i
	if j < len(body) && body[j] == '-' {
		j++
	}
	for j < len(body) && body[j] >= '0' && body[j] <= '9' {
		j++
	}
	id, err := strconv.Atoi(string(body[i:j]))
	if err != nil {
		return 0, false
	}
	return id, true
}

func (rt *Router) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	out := rt.route(r.Context(), http.MethodPost, "/v1/diagnose", body, rt.affinityKey(body), true)
	writeUpstream(w, out)
}

func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeUpstream(w, rt.route(r.Context(), http.MethodGet, "/v1/model", nil, "", false))
}

func (rt *Router) handleReplicas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.pool.Status())
}

// handleMetrics serves the router's process-wide telemetry snapshot
// (JSON), or the OpenMetrics exposition when the Accept header asks for
// it — same negotiation as the analysis plane's /v1/metrics.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if obs.WantsExposition(r) {
		obs.ServeExposition(w, r, telemetry.Default())
		return
	}
	writeJSON(w, telemetry.Default().Snapshot())
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleBatch scatter-gathers a batch: the request list is split into
// contiguous chunks (one per ready replica, no smaller than BatchChunk),
// the chunks run in parallel through the same failover machinery as
// single requests, and the per-chunk responses are merged back in request
// order. One failed chunk fails the whole batch with that chunk's status
// — partial batches would silently drop incidents from bulk post-mortems.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req analysis.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	n := len(req.Requests)
	if n == 0 || n > maxBatch {
		http.Error(w, fmt.Sprintf("batch size must be in [1, %d]", maxBatch), http.StatusBadRequest)
		return
	}

	ways := rt.pool.HealthyCount()
	if ways < 1 {
		ways = 1
	}
	if max := (n + rt.cfg.BatchChunk - 1) / rt.cfg.BatchChunk; ways > max {
		ways = max
	}
	mScatterChunks.Observe(float64(ways))
	if span := tracing.FromContext(r.Context()); span != nil {
		span.SetAttr("batch.size", n)
		span.SetAttr("batch.chunks", ways)
	}

	merged := analysis.BatchResponse{
		Responses: make([]*analysis.DiagnoseResponse, n),
		Errors:    make([]string, n),
	}
	type chunkFail struct {
		out attemptOutcome
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail *chunkFail
	)
	chunk := (n + ways - 1) / ways
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(off, end int) {
			defer wg.Done()
			payload, err := json.Marshal(analysis.BatchRequest{Requests: req.Requests[off:end]})
			if err != nil {
				mu.Lock()
				if fail == nil {
					fail = &chunkFail{attemptOutcome{err: err}}
				}
				mu.Unlock()
				return
			}
			out := rt.route(r.Context(), http.MethodPost, "/v1/diagnose-batch", payload, "", false)
			if out.err != nil || out.status != http.StatusOK {
				mu.Lock()
				if fail == nil {
					fail = &chunkFail{out}
				}
				mu.Unlock()
				return
			}
			var part analysis.BatchResponse
			if err := json.Unmarshal(out.body, &part); err != nil || len(part.Responses) != end-off {
				mu.Lock()
				if fail == nil {
					fail = &chunkFail{attemptOutcome{err: fmt.Errorf("cluster: replica %s returned a malformed batch chunk", out.rep.Name())}}
				}
				mu.Unlock()
				return
			}
			copy(merged.Responses[off:end], part.Responses)
			copy(merged.Errors[off:end], part.Errors)
		}(off, end)
	}
	wg.Wait()
	if fail != nil {
		writeUpstream(w, fail.out)
		return
	}
	writeJSON(w, merged)
}
