package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRouterDoubleClose pins the double-Close contract: a router with the
// full observability plane enabled must survive Close being called twice
// (newTestRouter's cleanup always runs after a test's own explicit Close,
// so every such test is a second caller). Before routerObs.close gained
// its sync.Once, the second call panicked on close(ro.stop).
func TestRouterDoubleClose(t *testing.T) {
	rep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer rep.Close()

	rt := NewRouter([]string{rep.URL}, Config{
		HealthInterval: 10 * time.Millisecond,
		Obs: ObsConfig{
			FederateInterval: 10 * time.Millisecond,
			SLOTarget:        0.999,
			ProfileDir:       t.TempDir(),
		},
	})
	rt.Close()
	rt.Close() // must be a no-op, not a panic
}

// TestRouterCloseWhileReplicaRecovering pins shutdown-while-recovering:
// closing a router whose only replica still answers 503 (mid-recovery)
// must return promptly without stranding the sweeper or the federation
// loop — the package leak check would catch either.
func TestRouterCloseWhileReplicaRecovering(t *testing.T) {
	rep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	}))
	defer rep.Close()

	rt := NewRouter([]string{rep.URL}, Config{
		HealthInterval: 10 * time.Millisecond,
		Obs:            ObsConfig{FederateInterval: 10 * time.Millisecond},
	})
	time.Sleep(30 * time.Millisecond) // let a few sweeps hit the 503

	done := make(chan struct{})
	go func() {
		rt.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Router.Close hung while the replica was recovering")
	}
}
