package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/forest"
	"diagnet/internal/netsim"
)

// benchConcurrency are the client fan-ins the serving paths are measured
// at; results land in results/BENCH_router.json via cmd/bench2json.
var benchConcurrency = []int{1, 16, 64}

var (
	benchOnce  sync.Once
	benchModel *core.Model
	benchTest  *dataset.Dataset
)

// benchFixture trains a paper-scale network (DefaultConfig width) for one
// epoch, mirroring the serving benchmark's reasoning: against the tiny
// test fixture, per-request inference is so cheap that the proxy hop
// dwarfs it and the measured overhead ratio says nothing about a real
// deployment, where inference dominates the hop.
func benchFixture(b *testing.B) (*core.Model, *dataset.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		w := netsim.NewWorld(netsim.Config{Seed: 1})
		d := dataset.Generate(dataset.GenConfig{
			World:          w,
			NominalSamples: 150,
			FaultSamples:   400,
			Seed:           21,
		})
		train, test := d.Split(0.8, netsim.HiddenLandmarks(), 23)
		cfg := core.DefaultConfig()
		cfg.Epochs = 1 // weights just need realistic shape, not accuracy
		cfg.Forest = forest.Config{Trees: 10, Tree: forest.TreeConfig{MaxDepth: 6}}
		known := []int{netsim.BEAU, netsim.AMST, netsim.SING, netsim.LOND, netsim.FRNK, netsim.TOKY, netsim.SYDN}
		benchModel = core.TrainGeneral(train, known, cfg).Model
		benchTest = test
	})
	return benchModel, benchTest
}

// benchDiagnose returns a degraded-sample request against the bench
// model.
func benchDiagnose(b *testing.B) analysis.DiagnoseRequest {
	b.Helper()
	_, test := benchFixture(b)
	deg := test.Degraded()
	if deg.Len() == 0 {
		b.Fatal("no degraded samples")
	}
	s := &deg.Samples[0]
	return analysis.DiagnoseRequest{
		ServiceID: s.Service,
		Landmarks: test.Layout.Landmarks,
		Features:  s.Features,
	}
}

// benchCluster boots three paper-scale replicas and returns their URLs.
func benchCluster(b *testing.B) []string {
	b.Helper()
	m, _ := benchFixture(b)
	urls := make([]string, 3)
	for i := range urls {
		urls[i] = startRealReplicaWith(b, m).url()
	}
	return urls
}

// benchThink is the per-client pause between requests. Pacing the closed
// loop keeps c16 below CPU saturation on small hosts: at saturation a
// closed loop measures inverse throughput, where any proxy's CPU share
// inflates every percentile by that share, not by the latency it actually
// adds to a request. c64 still drives the fleet past saturation, so the
// overload regime stays covered.
const benchThink = 25 * time.Millisecond

// runClients distributes b.N requests over c client goroutines, each
// posting through fn with jittered think time between requests, and
// reports p50/p99 per-request latency alongside ns/op (which includes
// think time — compare p50/p99 across paths, not ns/op). Any request
// failure fails the benchmark — a router that sheds its way to a good
// p99 is not faster.
func runClients(b *testing.B, c int, fn func() error) {
	b.Helper()
	if b.N < c {
		c = b.N
	}
	// Warm up untimed: establish the client→router→replica connection
	// pools and let the serving engines reach steady state, so the timed
	// p99 measures the path, not per-subbenchmark cold starts (the direct
	// path would otherwise reuse pools warmed by earlier subbenchmarks
	// while every routed run pays fresh TCP setup in its tail).
	var warm sync.WaitGroup
	for g := 0; g < c; g++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			for i := 0; i < 3; i++ {
				fn()
			}
		}()
	}
	warm.Wait()
	lat := make([][]float64, c)
	var failed atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < c; g++ {
		n := b.N / c
		if g == 0 {
			n += b.N % c
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			ls := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				// Jittered think time desynchronizes the workers so the
				// offered load is a stream, not lockstep waves.
				time.Sleep(time.Duration((0.5 + rng.Float64()) * float64(benchThink)))
				start := time.Now()
				if err := fn(); err != nil {
					failed.Add(1)
				}
				ls = append(ls, float64(time.Since(start).Nanoseconds())/1e6)
			}
			lat[g] = ls
		}(g, n)
	}
	wg.Wait()
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d/%d requests failed", n, b.N)
	}
	var all []float64
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	if len(all) > 0 {
		b.ReportMetric(all[len(all)/2], "p50_ms")
		b.ReportMetric(all[len(all)*99/100], "p99_ms")
	}
}

// post issues one diagnose and drains the response.
func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("http %d", resp.StatusCode)
	}
	return nil
}

// BenchmarkRouter compares serving paths at matched client fan-in:
//
//	direct       client-side round-robin straight at the 3 replicas — the
//	             same fleet with the routing tier deleted, and the
//	             baseline the overhead gate (routed p99 ≤ 1.15× direct
//	             p99 at c16) is read against
//	direct-1     all load on one replica — informational; on a
//	             CPU-starved host consolidation maximizes micro-batch
//	             density, so this bounds what any 3-way spread (routed or
//	             not) can reach
//	routed       the 3-replica fleet through diagnet-router, hedging off
//	routed-hedge same, with adaptive hedging
//
// Results land in results/BENCH_router.json via cmd/bench2json.
func BenchmarkRouter(b *testing.B) {
	urls := benchCluster(b)
	// Internet-scale traffic spans many services; a single service ID
	// would let affinity (correctly) pin the whole benchmark onto one
	// replica and measure queueing, not routing. 32 distinct IDs spread
	// the rendezvous keys across the fleet. Unknown IDs fall back to the
	// general model on the replica, so every body costs the same.
	req := benchDiagnose(b)
	bodies := make([][]byte, 32)
	for i := range bodies {
		r := req
		r.ServiceID = 1000 + i
		var err error
		if bodies[i], err = json.Marshal(&r); err != nil {
			b.Fatal(err)
		}
	}
	// The bench client gets the same fan-in-sized idle pool as the router's
	// outbound transport, so neither path pays client-side handshake churn.
	client := &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport()}

	b.Run("direct", func(b *testing.B) {
		var next atomic.Int64
		for _, c := range benchConcurrency {
			b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
				runClients(b, c, func() error {
					i := int(next.Add(1))
					return post(client, urls[i%len(urls)], bodies[i%len(bodies)])
				})
			})
		}
	})

	b.Run("direct-1", func(b *testing.B) {
		var next atomic.Int64
		for _, c := range benchConcurrency {
			b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
				runClients(b, c, func() error {
					i := int(next.Add(1))
					return post(client, urls[0], bodies[i%len(bodies)])
				})
			})
		}
	})

	bench := func(name string, cfg Config) {
		b.Run(name, func(b *testing.B) {
			rt := newTestRouter(b, urls, cfg)
			ts := httptest.NewServer(rt)
			defer ts.Close()
			var next atomic.Int64
			for _, c := range benchConcurrency {
				b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
					runClients(b, c, func() error {
						i := int(next.Add(1))
						return post(client, ts.URL, bodies[i%len(bodies)])
					})
				})
			}
		})
	}
	bench("routed", Config{HedgeAfter: -1})
	bench("routed-hedge", Config{}) // adaptive hedging (attempt-latency p90)
}
