package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"diagnet/internal/analysis"
)

// TestClusterE2E is the whole-tier test from ISSUE §e2e: three real
// diagnetd replicas (serving engine + analysis server) on loopback behind
// one router, concurrent diagnose and batch load from a raw non-retrying
// client, and a replica killed and restarted mid-run. The router alone
// must absorb the chaos: zero client-visible failures, and every response
// — including every entry of every batch — attributed to one model
// version.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e cluster test in -short mode")
	}
	replicas := []*realReplica{
		startRealReplica(t),
		startRealReplica(t),
		startRealReplica(t),
	}
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.url()
	}
	rt := newTestRouter(t, urls, Config{
		HealthInterval:  20 * time.Millisecond,
		HealthTimeout:   500 * time.Millisecond,
		AttemptTimeout:  10 * time.Second,
		BreakerCooldown: 200 * time.Millisecond,
		// Adaptive hedging on: the kill adds transport-error latency noise
		// and the hedges must stay harmless, not rescue correctness.
	})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// Raw client: no retry layer. Any failure below surfaces here.
	client := &http.Client{Timeout: 15 * time.Second}
	diagBody := diagnoseBody(t)
	one := diagnoseRequest(t)

	// Batch with two deliberately invalid entries at fixed indices: their
	// Errors slots prove the scatter-gather merge kept request order.
	const batchN = 12
	badIdx := map[int]bool{3: true, 9: true}
	var batchReq analysis.BatchRequest
	for i := 0; i < batchN; i++ {
		if badIdx[i] {
			batchReq.Requests = append(batchReq.Requests,
				analysis.DiagnoseRequest{Landmarks: []int{0}, Features: []float64{1}}) // wrong width
		} else {
			batchReq.Requests = append(batchReq.Requests, one)
		}
	}
	batchBody, err := json.Marshal(&batchReq)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		perW    = 25
	)
	var (
		mu       sync.Mutex
		failures []string
		versions = map[string]int{}
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	seen := func(v string) {
		mu.Lock()
		versions[v]++
		mu.Unlock()
	}

	post := func(path string, body []byte) (int, []byte, error) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if g%4 == 3 {
					// Every fourth worker sends batches.
					status, out, err := post("/v1/diagnose-batch", batchBody)
					if err != nil || status != http.StatusOK {
						fail("batch w%d req%d: status=%d err=%v body=%.200s", g, i, status, err, out)
						continue
					}
					var resp analysis.BatchResponse
					if err := json.Unmarshal(out, &resp); err != nil {
						fail("batch w%d req%d: decode: %v", g, i, err)
						continue
					}
					if len(resp.Responses) != batchN {
						fail("batch w%d req%d: %d responses, want %d", g, i, len(resp.Responses), batchN)
						continue
					}
					// Order check via the invalid sentinels, and
					// no-mixed-versions within the batch.
					batchVersions := map[string]bool{}
					for j := 0; j < batchN; j++ {
						if badIdx[j] {
							if resp.Errors[j] == "" || resp.Responses[j] != nil {
								fail("batch w%d req%d: slot %d should be the invalid sentinel — merge order broken", g, i, j)
							}
							continue
						}
						if resp.Responses[j] == nil {
							fail("batch w%d req%d: slot %d null: %s", g, i, j, resp.Errors[j])
							continue
						}
						batchVersions[resp.Responses[j].ModelVersion] = true
						seen(resp.Responses[j].ModelVersion)
					}
					if len(batchVersions) > 1 {
						fail("batch w%d req%d: mixed model versions %v in one batch", g, i, batchVersions)
					}
				} else {
					status, out, err := post("/v1/diagnose", diagBody)
					if err != nil || status != http.StatusOK {
						fail("diagnose w%d req%d: status=%d err=%v body=%.200s", g, i, status, err, out)
						continue
					}
					var resp analysis.DiagnoseResponse
					if err := json.Unmarshal(out, &resp); err != nil {
						fail("diagnose w%d req%d: decode: %v", g, i, err)
						continue
					}
					if resp.Family == "" || len(resp.Causes) == 0 {
						fail("diagnose w%d req%d: empty diagnosis %.200s", g, i, out)
					}
					seen(resp.ModelVersion)
				}
			}
		}(g)
	}

	// Chaos: kill replica 0 while the load is in flight, leave it dead for
	// a few health sweeps, then bring it back on the same address.
	time.Sleep(150 * time.Millisecond)
	replicas[0].kill()
	t.Log("killed replica 0")
	time.Sleep(400 * time.Millisecond)
	replicas[0].restart()
	t.Log("restarted replica 0")

	wg.Wait()

	if len(failures) > 0 {
		max := len(failures)
		if max > 10 {
			max = 10
		}
		for _, f := range failures[:max] {
			t.Error(f)
		}
		t.Fatalf("%d client-visible failures (want 0)", len(failures))
	}
	if len(versions) != 1 {
		t.Fatalf("responses attributed to %d model versions %v, want exactly one", len(versions), versions)
	}
	for v := range versions {
		if v != "boot" {
			t.Fatalf("responses attributed to %q, want boot", v)
		}
	}

	// The killed replica must have actually left and rejoined the pool —
	// otherwise this test proved nothing about failover.
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := rt.Pool().Status()
		if st[0].Healthy && st[0].Transitions >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 0 never went down+up: %+v", st[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("router stats: %+v", rt.Stats())
}
