package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"diagnet/internal/analysis"
	"diagnet/internal/landmark"
)

// TestHedgeRescuesSlowPrimary is the deterministic hedging scenario from
// DESIGN.md §14: two replicas, the rendezvous primary shaped slow by a
// latency-injecting FlakyHandler (every request +400ms), a fixed 40ms
// hedging delay. Exactly one hedge fires, the fast secondary wins it, and
// the slow loser is canceled — the client sees a fast success, never the
// injected latency.
func TestHedgeRescuesSlowPrimary(t *testing.T) {
	t.Parallel()
	// Both replicas get a runtime-configurable FlakyHandler in front of
	// their diagnose route (readiness stays clean — the probe plane must
	// not absorb the chaos meant for the data plane). Which one is slow is
	// decided after the URLs exist, because the rendezvous primary depends
	// on the ephemeral ports.
	flakyA := landmark.NewFlakyHandler(okDiagnose("a"), landmark.FlakyConfig{Seed: 1})
	flakyB := landmark.NewFlakyHandler(okDiagnose("b"), landmark.FlakyConfig{Seed: 1})
	a := newFakeReplica(t, flakyA)
	b := newFakeReplica(t, flakyB)
	reps := []*fakeReplica{a, b}

	const svc = 7
	primary := byAffinity(fmt.Sprintf("svc:%d", svc), reps)[0]
	slow, fastVersion := flakyA, "b"
	if primary == b {
		slow, fastVersion = flakyB, "a"
	}
	slow.SetConfig(landmark.FlakyConfig{LatencyRate: 1, Latency: 400 * time.Millisecond, Seed: 1})

	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{
		HedgeAfter: 40 * time.Millisecond, // fixed: the test controls the timeline
	})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	body, _ := json.Marshal(analysis.DiagnoseRequest{ServiceID: svc, Landmarks: []int{0}, Features: []float64{1}})
	start := time.Now()
	status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var resp analysis.DiagnoseResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion != fastVersion {
		t.Errorf("answer came from %q, want the fast secondary %q", resp.ModelVersion, fastVersion)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("client waited %v — the hedge did not rescue the injected 400ms", elapsed)
	}

	s := rt.Stats()
	if s.Hedges != 1 {
		t.Errorf("Hedges = %d, want exactly 1", s.Hedges)
	}
	if s.HedgeWins != 1 {
		t.Errorf("HedgeWins = %d, want 1", s.HedgeWins)
	}
	if s.LosersCanceled != 1 {
		t.Errorf("LosersCanceled = %d, want 1 (the slow primary)", s.LosersCanceled)
	}
	if s.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0 — a hedge is not a failover", s.Failovers)
	}
}

// TestHedgeQuietWhenPrimaryFast: a fast primary answers before the hedge
// delay, so no hedge fires and no duplicate work reaches the secondary.
func TestHedgeQuietWhenPrimaryFast(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, okDiagnose("a"))
	b := newFakeReplica(t, okDiagnose("b"))
	reps := []*fakeReplica{a, b}
	const svc = 3
	primary := byAffinity(fmt.Sprintf("svc:%d", svc), reps)[0]
	secondary := a
	if primary == a {
		secondary = b
	}

	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: 250 * time.Millisecond})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	body, _ := json.Marshal(analysis.DiagnoseRequest{ServiceID: svc, Landmarks: []int{0}, Features: []float64{1}})
	for i := 0; i < 5; i++ {
		if status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, out)
		}
	}
	if s := rt.Stats(); s.Hedges != 0 || s.HedgeWins != 0 || s.LosersCanceled != 0 {
		t.Errorf("fast primary still produced hedges: %+v", s)
	}
	if got := secondary.hits.Load(); got != 0 {
		t.Errorf("secondary served %d requests with no hedge fired", got)
	}
}

// TestHedgeDisabled: HedgeAfter < 0 switches hedging off even when the
// primary is slow — the client just waits.
func TestHedgeDisabled(t *testing.T) {
	t.Parallel()
	flaky := landmark.NewFlakyHandler(okDiagnose("a"), landmark.FlakyConfig{
		LatencyRate: 1, Latency: 120 * time.Millisecond, Seed: 1,
	})
	a := newFakeReplica(t, flaky)
	b := newFakeReplica(t, flaky)
	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	start := time.Now()
	status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", diagnoseFake(t))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Errorf("answer in %v — something dodged the injected latency with hedging off", elapsed)
	}
	if s := rt.Stats(); s.Hedges != 0 {
		t.Errorf("Hedges = %d with hedging disabled", s.Hedges)
	}
}

// TestAdaptiveHedgeDelay exercises hedgeDelay's three regimes directly:
// seed default before enough samples, observed p90 after, HedgeMin floor.
func TestAdaptiveHedgeDelay(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, okDiagnose("a"))
	rt := newTestRouter(t, []string{a.url()}, Config{
		HedgeDefault: 30 * time.Millisecond,
		HedgeMin:     5 * time.Millisecond,
	})

	if d := rt.hedgeDelay(); d != 30*time.Millisecond {
		t.Errorf("cold delay %v, want the 30ms default", d)
	}
	// 100 samples at ~80ms: p90 ≈ 80ms.
	for i := 0; i < 100; i++ {
		rt.latHist.Observe(80)
	}
	if d := rt.hedgeDelay(); d < 60*time.Millisecond || d > 120*time.Millisecond {
		t.Errorf("warm delay %v, want ≈80ms (the observed p90)", d)
	}
	// A very fast tail floors at HedgeMin instead of hedging everything.
	rt2 := newTestRouter(t, []string{a.url()}, Config{HedgeMin: 5 * time.Millisecond})
	for i := 0; i < 100; i++ {
		rt2.latHist.Observe(0.01)
	}
	if d := rt2.hedgeDelay(); d != 5*time.Millisecond {
		t.Errorf("floored delay %v, want the 5ms HedgeMin", d)
	}
	// Fixed setting wins over everything.
	rt3 := newTestRouter(t, []string{a.url()}, Config{HedgeAfter: 70 * time.Millisecond})
	if d := rt3.hedgeDelay(); d != 70*time.Millisecond {
		t.Errorf("fixed delay %v, want 70ms", d)
	}
}
