package cluster

import (
	"fmt"
	"net/http"

	"diagnet/internal/telemetry"
	"diagnet/internal/tracing"
)

// Router-plane metrics (DESIGN.md §14): hedging economics, failover and
// backpressure volume, replica health churn, and per-attempt latency.
// Resolved once at init; the hot path pays only atomic operations.
var (
	mHedges             = telemetry.Default().Counter("router.hedge.fired")
	mHedgeWins          = telemetry.Default().Counter("router.hedge.wins")
	mLosersCanceled     = telemetry.Default().Counter("router.hedge.losers_canceled")
	mFailovers          = telemetry.Default().Counter("router.failover")
	mBackpressure       = telemetry.Default().Counter("router.backpressure.replica_loaded")
	mHealthUp           = telemetry.Default().Counter("router.replica.health_up")
	mHealthDown         = telemetry.Default().Counter("router.replica.health_down")
	mBreakerTransitions = telemetry.Default().Counter("router.replica.breaker_transitions")
	mAttemptLatency     = telemetry.Default().Histogram("router.attempt.latency_ms", nil)
	mScatterChunks      = telemetry.Default().Histogram("router.scatter.chunks", telemetry.SizeBuckets)
	mInflight           = telemetry.Default().Gauge("router.http.inflight")
)

// routeMetrics is one route's instrumentation bundle (the router-side
// mirror of the analysis plane's per-route metrics).
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

func newRouteMetrics(name string) *routeMetrics {
	return &routeMetrics{
		requests: telemetry.Default().Counter("router." + name + ".requests"),
		errors:   telemetry.Default().Counter("router." + name + ".errors"),
		latency:  telemetry.Default().Histogram("router."+name+".latency_ms", nil),
	}
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a router route with counters, a latency histogram and
// the route span: an incoming W3C traceparent joins the client's trace,
// and every replica attempt the route makes becomes a child span, so one
// trace shows route → attempt → hedge across the whole cluster hop. The
// trace ID is echoed in X-Trace-Id and captured as the latency
// histogram's tail exemplar.
func instrument(name string, next http.HandlerFunc) http.HandlerFunc {
	m := newRouteMetrics(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Inc()
		mInflight.Add(1)
		clock := telemetry.StartStages()
		ctx := tracing.Extract(r.Context(), r.Header)
		ctx, span := tracing.StartSpan(ctx, "router."+name)
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.path", r.URL.Path)
		if id := span.TraceID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		finished := false
		defer func() {
			mInflight.Add(-1)
			clock.DoneExemplar(m.latency, span.TraceID())
			if !finished || rec.status >= 400 {
				m.errors.Inc()
			}
			span.SetAttr("http.status", rec.status)
			switch {
			case !finished:
				span.SetError(fmt.Errorf("panic routing %s", r.URL.Path))
			case rec.status >= 500:
				span.SetError(fmt.Errorf("http %d", rec.status))
			}
			span.End()
		}()
		next(rec, r.WithContext(ctx))
		finished = true
	}
}
