package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
)

// obsReplica is a replica with its OWN telemetry registry, so an
// in-process fleet behaves like distinct processes: the federated view
// must sum three distinct registries, not one shared registry counted
// three times.
type obsReplica struct {
	reg  *telemetry.Registry
	srv  *httptest.Server
	fail atomic.Bool // when set, /v1/diagnose answers 500
}

func startObsReplica(t testing.TB, version string) *obsReplica {
	t.Helper()
	rep := &obsReplica{reg: telemetry.New()}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.Handle("/metrics", obs.ExpositionHandler(rep.reg))
	mux.Handle("/v1/diagnose", obs.Instrument(rep.reg, "diagnose",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if rep.fail.Load() {
				http.Error(w, "injected fault", http.StatusInternalServerError)
				return
			}
			okDiagnose(version)(w, r)
		})))
	rep.srv = httptest.NewServer(mux)
	t.Cleanup(rep.srv.Close)
	return rep
}

func (o *obsReplica) url() string { return o.srv.URL }

// scrapeExport fetches and strictly parses one exposition endpoint.
func scrapeExport(t testing.TB, url string) telemetry.Export {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	body := readAllString(t, resp)
	resp.Body.Close()
	ex, err := obs.ParseExposition([]byte(body))
	if err != nil {
		t.Fatalf("scrape %s fails strict parse: %v", url, err)
	}
	return ex
}

func readAllString(t testing.TB, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// getJSON fetches and decodes a JSON endpoint into v, returning the
// status code.
func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestFederationExactMerge boots 3 replicas with distinct registries,
// drives a known per-replica load, and asserts the router's federated
// fleet view equals the arithmetic sum of the per-replica scrapes —
// counters, histogram _count/_sum, and every cumulative bucket.
func TestFederationExactMerge(t *testing.T) {
	reps := []*obsReplica{
		startObsReplica(t, "r0"),
		startObsReplica(t, "r1"),
		startObsReplica(t, "r2"),
	}
	urls := []string{reps[0].url(), reps[1].url(), reps[2].url()}
	rt := newTestRouter(t, urls, Config{
		Obs: ObsConfig{FederateInterval: 25 * time.Millisecond},
	})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	// Known, deliberately unequal per-replica load, driven directly at
	// each replica (bypassing the router so the split is exact by
	// construction).
	loads := []int{5, 8, 11}
	body := diagnoseBody(t)
	client := &http.Client{Timeout: 5 * time.Second}
	for i, rep := range reps {
		for j := 0; j < loads[i]; j++ {
			status, _ := postJSON(t, client, rep.url()+"/v1/diagnose", body)
			if status != http.StatusOK {
				t.Fatalf("replica %d request %d: status %d", i, j, status)
			}
		}
	}

	// Wait until a sweep has seen all 24 requests.
	var view obs.FleetView
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, gw.URL+"/v1/fleet/metrics", &view); code == http.StatusOK {
			if v, ok := view.Fleet.Counter("http_diagnose_requests"); ok && v == 24 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated view never converged: %+v", view.Fleet.Counters)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(view.Replicas) != 3 {
		t.Fatalf("want 3 replicas in breakdown, got %d", len(view.Replicas))
	}
	for _, r := range view.Replicas {
		if r.Error != "" {
			t.Fatalf("replica %s scrape error: %s", r.Name, r.Error)
		}
	}

	// Independent ground truth: scrape each replica ourselves and sum.
	var wantReqs, wantCount int64
	var wantSum float64
	var wantCum []int64
	for i, rep := range reps {
		ex := scrapeExport(t, rep.url()+"/metrics")
		v, ok := ex.Counter("http_diagnose_requests")
		if !ok || v != int64(loads[i]) {
			t.Fatalf("replica %d: requests=%d ok=%v, want %d", i, v, ok, loads[i])
		}
		wantReqs += v
		h, ok := ex.Histogram("http_diagnose_latency_ms")
		if !ok {
			t.Fatalf("replica %d: no latency histogram", i)
		}
		wantCount += h.Count()
		wantSum += h.Sum
		if wantCum == nil {
			wantCum = make([]int64, len(h.Cumulative))
		}
		for j, c := range h.Cumulative {
			wantCum[j] += c
		}
	}

	// Re-fetch the fleet view so it is at least as fresh as our scrapes.
	deadline = time.Now().Add(5 * time.Second)
	for {
		getJSON(t, gw.URL+"/v1/fleet/metrics", &view)
		h, ok := view.Fleet.Histogram("http_diagnose_latency_ms")
		if ok && h.Count() == wantCount {
			if v, _ := view.Fleet.Counter("http_diagnose_requests"); v != wantReqs {
				t.Fatalf("fleet requests %d != sum of replicas %d", v, wantReqs)
			}
			if h.Sum != wantSum {
				t.Fatalf("fleet latency sum %v != arithmetic sum %v", h.Sum, wantSum)
			}
			for j, c := range h.Cumulative {
				if c != wantCum[j] {
					t.Fatalf("fleet bucket[%d]=%d != sum %d", j, c, wantCum[j])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet histogram never matched: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fleet view also negotiates: Accept exposition text, and that
	// text must itself pass the strict parser.
	req, _ := http.NewRequest(http.MethodGet, gw.URL+"/v1/fleet/metrics", nil)
	req.Header.Set("Accept", obs.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("fleet exposition content type: %q", got)
	}
	if _, err := obs.ParseExposition([]byte(readAllString(t, resp))); err != nil {
		t.Fatalf("fleet exposition fails strict parse: %v", err)
	}
}

// sloStatus mirrors the /v1/slo JSON for decoding.
type sloStatus struct {
	Objectives []struct {
		Name   string `json:"name"`
		Alerts []struct {
			Rule   string `json:"rule"`
			Firing bool   `json:"firing"`
		} `json:"alerts"`
	} `json:"objectives"`
}

func (s *sloStatus) firing(rule string) bool {
	for _, o := range s.Objectives {
		for _, a := range o.Alerts {
			if a.Rule == rule && a.Firing {
				return true
			}
		}
	}
	return false
}

// TestSLOBurnAlertAndProfileCapture drives an injected error burst
// through the router and asserts the fast-burn alert fires, exactly one
// profile pair is captured within the cooldown, and the alert clears
// after recovery.
func TestSLOBurnAlertAndProfileCapture(t *testing.T) {
	reps := []*obsReplica{startObsReplica(t, "a"), startObsReplica(t, "b")}
	profileDir := t.TempDir()
	rt := newTestRouter(t, []string{reps[0].url(), reps[1].url()}, Config{
		// Errors must keep reaching the replicas for the burn to build;
		// an open breaker would shield them and starve the SLO signal.
		BreakerThreshold: 1 << 30,
		Obs: ObsConfig{
			FederateInterval: 25 * time.Millisecond,
			SLOTarget:        0.99,
			SLOLatencyMs:     100,
			BurnRules: []obs.BurnRule{
				{Name: "fast", Short: 250 * time.Millisecond, Long: time.Second, Factor: 2, Severity: "page"},
				{Name: "slow", Short: time.Second, Long: 4 * time.Second, Factor: 1, Severity: "warn"},
			},
			ProfileDir:         profileDir,
			ProfileCooldown:    time.Hour, // a sustained incident captures exactly once
			ProfileCPUDuration: 50 * time.Millisecond,
		},
	})
	gw := httptest.NewServer(rt)
	defer gw.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	body := diagnoseBody(t)

	drive := func(d time.Duration) {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			postJSON(t, client, gw.URL+"/v1/diagnose", body)
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: healthy baseline.
	drive(400 * time.Millisecond)
	var st sloStatus
	if code := getJSON(t, gw.URL+"/v1/slo", &st); code != http.StatusOK {
		t.Fatalf("/v1/slo: %d", code)
	}
	if st.firing("fast") {
		t.Fatal("fast rule firing on healthy traffic")
	}

	// Phase 2: both replicas fail — a 100% error burst through the router.
	for _, r := range reps {
		r.fail.Store(true)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !st.firing("fast") {
		drive(100 * time.Millisecond)
		getJSON(t, gw.URL+"/v1/slo", &st)
		if time.Now().After(deadline) {
			t.Fatalf("fast-burn alert never fired: %+v", st)
		}
	}

	// The firing transition triggered a profile capture; the cooldown
	// keeps the sustained incident at exactly one pair.
	var profiles struct {
		Captures []obs.Capture `json:"captures"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		getJSON(t, gw.URL+"/v1/profiles", &profiles)
		if len(profiles.Captures) > 0 && profiles.Captures[0].CPUProfile != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no profile captured after alert fired: %+v", profiles)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if len(profiles.Captures) != 1 {
		t.Fatalf("want exactly 1 capture within cooldown, got %d", len(profiles.Captures))
	}
	if !strings.Contains(profiles.Captures[0].Reason, "slo-") {
		t.Errorf("capture reason %q does not name the SLO trigger", profiles.Captures[0].Reason)
	}
	// Keep burning: more transitions may occur (slow rule), but the
	// cooldown admits no second capture.
	drive(300 * time.Millisecond)
	getJSON(t, gw.URL+"/v1/profiles", &profiles)
	if len(profiles.Captures) != 1 {
		t.Fatalf("cooldown violated: %d captures", len(profiles.Captures))
	}
	// The profile pair downloads through the router.
	resp, err := http.Get(gw.URL + "/v1/profiles/" + profiles.Captures[0].ID + "/heap.pprof")
	if err != nil {
		t.Fatal(err)
	}
	heap := readAllString(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(heap) == 0 {
		t.Fatalf("heap profile download: %d, %d bytes", resp.StatusCode, len(heap))
	}

	// Phase 3: recovery — errors stop, the short window drains, the
	// alert clears.
	for _, r := range reps {
		r.fail.Store(false)
	}
	deadline = time.Now().Add(15 * time.Second)
	for st.firing("fast") {
		drive(100 * time.Millisecond)
		getJSON(t, gw.URL+"/v1/slo", &st)
		if time.Now().After(deadline) {
			t.Fatalf("fast-burn alert never cleared: %+v", st)
		}
	}
}

// TestLiveExpositionLint runs the strict parser against the /metrics
// output of a real diagnetd replica stack and of the router — the
// satellite lint requirement: live exposition must satisfy every
// promlint-style rule the parser enforces.
func TestLiveExpositionLint(t *testing.T) {
	rep := startRealReplica(t)
	rt := newTestRouter(t, []string{rep.url()}, Config{})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	// Traffic through the router populates both registries' route metrics.
	client := &http.Client{Timeout: 5 * time.Second}
	body := diagnoseBody(t)
	for i := 0; i < 5; i++ {
		status, out := postJSON(t, client, gw.URL+"/v1/diagnose", body)
		if status != http.StatusOK {
			t.Fatalf("diagnose %d: %d %s", i, status, out)
		}
	}

	for _, url := range []string{rep.url() + "/metrics", gw.URL + "/metrics"} {
		ex := scrapeExport(t, url) // scrapeExport fails the test on a lint error
		if len(ex.Counters)+len(ex.Histograms) == 0 {
			t.Errorf("%s: exposition is empty", url)
		}
	}
}

// TestMetricsContentNegotiation is the satellite table test: /v1/metrics
// keeps its JSON shape byte-compatible by default and serves the
// exposition only when the Accept header asks for it — on both the
// replica and the router.
func TestMetricsContentNegotiation(t *testing.T) {
	rep := startRealReplica(t)
	rt := newTestRouter(t, []string{rep.url()}, Config{})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	cases := []struct {
		name       string
		accept     string
		exposition bool
	}{
		{"no accept header keeps JSON", "", false},
		{"wildcard keeps JSON", "*/*", false},
		{"json keeps JSON", "application/json", false},
		{"openmetrics negotiates exposition", obs.ContentType, false /* set below */},
		{"text/plain negotiates exposition", "text/plain; version=0.0.4", false},
	}
	cases[3].exposition = true
	cases[4].exposition = true

	for _, base := range []string{rep.url(), gw.URL} {
		// JSON byte-compatibility baseline.
		req, _ := http.NewRequest(http.MethodGet, base+"/v1/metrics", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		baseline := readAllString(t, resp)
		resp.Body.Close()
		if !json.Valid([]byte(baseline)) {
			t.Fatalf("%s: default /v1/metrics is not JSON", base)
		}

		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				req, _ := http.NewRequest(http.MethodGet, base+"/v1/metrics", nil)
				if tc.accept != "" {
					req.Header.Set("Accept", tc.accept)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				bodyStr := readAllString(t, resp)
				ct := resp.Header.Get("Content-Type")
				if tc.exposition {
					if ct != obs.ContentType {
						t.Errorf("content type %q, want exposition", ct)
					}
					if _, err := obs.ParseExposition([]byte(bodyStr)); err != nil {
						t.Errorf("negotiated exposition fails strict parse: %v", err)
					}
				} else {
					if !strings.HasPrefix(ct, "application/json") {
						t.Errorf("content type %q, want JSON", ct)
					}
					var snap struct {
						Counters   map[string]int64 `json:"counters"`
						Histograms map[string]any   `json:"histograms"`
					}
					if err := json.Unmarshal([]byte(bodyStr), &snap); err != nil {
						t.Errorf("JSON shape broke: %v", err)
					}
				}
			})
		}
	}
}

// TestObsEndpointsDisabled pins the 404 contract when the plane is off.
func TestObsEndpointsDisabled(t *testing.T) {
	f := newFakeReplica(t, okDiagnose("v"))
	rt := newTestRouter(t, []string{f.url()}, Config{})
	gw := httptest.NewServer(rt)
	defer gw.Close()
	for _, path := range []string{"/v1/fleet/metrics", "/v1/slo", "/v1/profiles"} {
		if code := getJSON(t, gw.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("%s without obs config: %d, want 404", path, code)
		}
	}
}
