package cluster

import (
	"context"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"diagnet/internal/resilience"
	"diagnet/internal/telemetry"
)

// Pool is the health-checked replica set. A background sweep probes every
// replica's /readyz on HealthInterval; selection (Ranked) combines that
// readiness verdict with breaker state, backpressure windows and live
// load. Safe for concurrent use.
type Pool struct {
	cfg      Config
	client   *http.Client
	replicas []*Replica

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewPool builds a pool over the given base URLs and runs one synchronous
// readiness sweep (so a freshly built pool can route immediately) before
// starting the background sweeper. Call Close to stop it.
func NewPool(urls []string, cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg: cfg,
		client: &http.Client{
			Timeout:   cfg.HealthTimeout,
			Transport: cfg.Transport,
		},
		stop: make(chan struct{}),
	}
	for _, u := range urls {
		p.replicas = append(p.replicas, newReplica(u, cfg))
	}
	p.sweep()
	p.wg.Add(1)
	go p.run()
	return p
}

// Close stops the health sweeper and releases the probe client's idle
// connections. Idempotent.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.client.CloseIdleConnections()
}

// Replicas returns the pool members (fixed at construction).
func (p *Pool) Replicas() []*Replica { return p.replicas }

// HealthyCount returns how many replicas passed their last readiness
// probe.
func (p *Pool) HealthyCount() int {
	n := 0
	for _, r := range p.replicas {
		if r.Healthy() {
			n++
		}
	}
	return n
}

// Status snapshots every replica (GET /v1/replicas).
func (p *Pool) Status() []ReplicaStatus {
	now := p.cfg.Now()
	out := make([]ReplicaStatus, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = r.status(now)
	}
	return out
}

// run sweeps readiness until Close.
func (p *Pool) run() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// sweep probes every replica's /readyz concurrently. 2xx marks it ready;
// anything else — 503 while recovering or draining, connection refused
// after a crash — takes it out of rotation until a later sweep succeeds.
func (p *Pool) sweep() {
	var wg sync.WaitGroup
	for _, r := range p.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
			defer cancel()
			ok := p.check(ctx, r)
			if r.setHealthy(ok) {
				if ok {
					mHealthUp.Inc()
					slog.Info("cluster: replica ready", "replica", r.name)
				} else {
					mHealthDown.Inc()
					slog.Warn("cluster: replica out of rotation", "replica", r.name)
				}
			}
		}(r)
	}
	wg.Wait()
}

// check runs one readiness probe.
func (p *Pool) check(ctx context.Context, r *Replica) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.name+"/readyz", nil)
	if err != nil {
		return false
	}
	start := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	// Drain before Close: an unread body (the 503's error text, say) makes
	// the transport discard the connection instead of returning it to the
	// keep-alive pool — at sweep cadence that is a steady TIME_WAIT leak.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		// Seed the latency EWMA so a replica that was idle since boot still
		// has a (rough) latency estimate when selection tiebreaks on it.
		r.lat.Observe(telemetry.Millis(time.Since(start)))
		return true
	}
	return false
}

// rendezvous scores a (key, replica) pair for highest-random-weight
// hashing: every router instance ranks replicas identically for a key,
// and removing a replica only reassigns that replica's keys.
func rendezvous(key, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}

// Ranked returns the candidate replicas for a request, best first. The
// base set is the ready replicas whose breaker is not open and whose 429
// window has passed; if that leaves nothing, loaded/open replicas are
// readmitted (a parked replica beats a refusal), and as a last resort —
// before the first sweep, or in a total blackout — every replica is
// tried.
//
// With a non-empty affinity key the set is ordered by rendezvous hash and
// the top two are swapped into least-loaded-first order (pick-two: the
// hash names the pair, load picks within it). Without a key, plain
// least-loaded order with the latency EWMA as tiebreak.
func (p *Pool) Ranked(key string) []*Replica {
	now := p.cfg.Now()
	var avail, ready []*Replica
	for _, r := range p.replicas {
		if !r.Healthy() {
			continue
		}
		ready = append(ready, r)
		if r.Loaded(now) || r.breaker.State() == resilience.Open {
			continue
		}
		avail = append(avail, r)
	}
	list := avail
	if len(list) == 0 {
		list = ready
	}
	if len(list) == 0 {
		list = p.replicas
	}
	out := append([]*Replica(nil), list...)
	if key != "" && !p.cfg.NoAffinity {
		sort.SliceStable(out, func(i, j int) bool {
			return rendezvous(key, out[i].name) > rendezvous(key, out[j].name)
		})
		if len(out) >= 2 && out[1].Outstanding() < out[0].Outstanding() {
			out[0], out[1] = out[1], out[0]
		}
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		oi, oj := out[i].Outstanding(), out[j].Outstanding()
		if oi != oj {
			return oi < oj
		}
		return out[i].LatencyMs() < out[j].LatencyMs()
	})
	return out
}
