package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
)

// ObsConfig configures the router's fleet observability plane (DESIGN.md
// §16): metric federation over the replica pool, SLO burn-rate alerting
// over the federated view, and anomaly-triggered profile capture. The
// zero value disables all of it — the router then serves only its own
// process metrics.
type ObsConfig struct {
	// FederateInterval is the replica scrape period. Zero disables
	// federation, and with it the SLO engine and fleet-triggered
	// profiling (both consume the federated view).
	FederateInterval time.Duration
	// SLOTarget is the availability/latency objective (e.g. 0.999). Zero
	// disables the SLO engine.
	SLOTarget float64
	// SLOLatencyMs is the latency objective's good/bad threshold over
	// /v1/diagnose; it should be one of the latency histogram's bucket
	// bounds for an exact split. Zero keeps only the availability
	// objective.
	SLOLatencyMs float64
	// BurnRules overrides the default fast(5m/1h, page)/slow(6h/3d, warn)
	// multi-window rules — tests shrink the windows to seconds.
	BurnRules []obs.BurnRule
	// ProfileDir enables anomaly-triggered profiling: captures land in an
	// on-disk ring under this directory (e.g. <state-dir>/profiles).
	ProfileDir string
	// ProfileOnBreachMs additionally triggers a capture when the fleet's
	// windowed p99 over /v1/diagnose exceeds this bound. Zero disables
	// the p99 trigger (burn-rate firings still trigger).
	ProfileOnBreachMs float64
	// ProfileCooldown rate-limits captures (default 10m).
	ProfileCooldown time.Duration
	// ProfileCPUDuration bounds one CPU profile (default 5s).
	ProfileCPUDuration time.Duration
	// MinBreachCount is the minimum number of windowed observations before
	// a p99 breach may trigger (default 20) — a handful of slow requests
	// right after boot is noise, not an incident.
	MinBreachCount int64
}

// routerObs is the router's observability plane: the federator (always
// present when enabled), plus the optional SLO engine and profiler.
type routerObs struct {
	cfg      ObsConfig
	fed      *obs.Federator
	slo      *obs.SLOEngine
	profiler *obs.Profiler

	// prevLat anchors the windowed fleet p99: the breach check runs on the
	// delta distribution since the previous sweep, not the lifetime one.
	prevLat *telemetry.HistogramPoint

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newRouterObs wires the observability plane over the pool; returns nil
// when federation is disabled.
func newRouterObs(pool *Pool, cfg ObsConfig) *routerObs {
	if cfg.FederateInterval <= 0 {
		return nil
	}
	ro := &routerObs{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	ro.fed = obs.NewFederator(obs.FederatorConfig{
		Targets: func() []string {
			reps := pool.Replicas()
			urls := make([]string, len(reps))
			for i, r := range reps {
				urls[i] = r.Name()
			}
			return urls
		},
		Timeout: cfg.FederateInterval * 4,
	})
	if cfg.ProfileDir != "" {
		p, err := obs.OpenProfiler(obs.ProfilerConfig{
			Dir:         cfg.ProfileDir,
			Cooldown:    cfg.ProfileCooldown,
			CPUDuration: cfg.ProfileCPUDuration,
		})
		if err != nil {
			slog.Warn("cluster: anomaly profiling disabled", "err", err)
		} else {
			ro.profiler = p
		}
	}
	if cfg.SLOTarget > 0 {
		var objectives []obs.Objective
		if cfg.SLOLatencyMs > 0 {
			objectives = obs.DefaultObjectives(cfg.SLOTarget, cfg.SLOLatencyMs)
		} else {
			objectives = obs.DefaultObjectives(cfg.SLOTarget, 0)[:1]
		}
		ro.slo = obs.NewSLOEngine(obs.SLOConfig{
			Objectives: objectives,
			Rules:      cfg.BurnRules,
			OnTransition: func(ev obs.AlertEvent) {
				if ev.Firing {
					slog.Warn("cluster: SLO alert firing",
						"objective", ev.Objective, "rule", ev.Rule,
						"severity", ev.Severity, "burn", ev.Burn)
					if ro.profiler != nil {
						ro.profiler.Trigger("slo-" + ev.Objective + "-" + ev.Rule)
					}
				} else {
					slog.Info("cluster: SLO alert cleared",
						"objective", ev.Objective, "rule", ev.Rule)
				}
			},
		})
	}
	go ro.run()
	return ro
}

// run is the federation loop: sweep, feed the SLO engine, check the
// windowed fleet p99.
func (ro *routerObs) run() {
	defer close(ro.done)
	t := time.NewTicker(ro.cfg.FederateInterval)
	defer t.Stop()
	for {
		select {
		case <-ro.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), ro.cfg.FederateInterval*8)
			view := ro.fed.Sweep(ctx)
			cancel()
			now := time.Now()
			if ro.slo != nil {
				ro.slo.Observe(now, &view.Fleet)
			}
			ro.checkBreach(&view.Fleet)
		}
	}
}

// checkBreach triggers a profile capture when the windowed fleet p99 over
// /v1/diagnose exceeds the configured bound.
func (ro *routerObs) checkBreach(fleet *telemetry.Export) {
	if ro.profiler == nil || ro.cfg.ProfileOnBreachMs <= 0 {
		return
	}
	cur, ok := fleet.Histogram("http_diagnose_latency_ms")
	if !ok {
		return
	}
	window, ok := obs.SubtractHistogram(cur, ro.prevLat)
	ro.prevLat = cur
	if !ok {
		return
	}
	minCount := ro.cfg.MinBreachCount
	if minCount <= 0 {
		minCount = 20
	}
	if window.Count() < minCount {
		return
	}
	if p99 := window.Quantile(0.99); p99 > ro.cfg.ProfileOnBreachMs {
		slog.Warn("cluster: fleet p99 breach", "p99_ms", p99, "bound_ms", ro.cfg.ProfileOnBreachMs)
		ro.profiler.Trigger("fleet-p99-breach")
	}
}

// close stops the federation loop and releases the plane's resources, in
// dependency order: loop first (nothing sweeps anymore), then the
// profiler (awaits an in-flight capture), then the federator's idle
// scrape connections. Idempotent — Router.Close may run more than once.
func (ro *routerObs) close() {
	ro.stopOnce.Do(func() { close(ro.stop) })
	<-ro.done
	if ro.profiler != nil {
		ro.profiler.Close()
	}
	ro.fed.Close()
}

// handleFleetMetrics serves GET /v1/fleet/metrics (404 when federation is
// off).
func (rt *Router) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	if rt.obs == nil {
		http.Error(w, "federation disabled (set -federate-interval)", http.StatusNotFound)
		return
	}
	rt.obs.fed.ServeView(w, r)
}

// handleSLO serves GET /v1/slo (404 when the SLO engine is off).
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	if rt.obs == nil || rt.obs.slo == nil {
		http.Error(w, "SLO engine disabled (set -slo-target)", http.StatusNotFound)
		return
	}
	rt.obs.slo.ServeStatus(w, r)
}

// handleProfiles serves GET /v1/profiles (404 when profiling is off).
func (rt *Router) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if rt.obs == nil || rt.obs.profiler == nil {
		http.Error(w, "profiling disabled (set -state-dir)", http.StatusNotFound)
		return
	}
	rt.obs.profiler.ServeHTTP(w, r)
}

// Federator exposes the federation plane (nil when disabled) — tests and
// diagnet-top use it in-process.
func (rt *Router) Federator() *obs.Federator {
	if rt.obs == nil {
		return nil
	}
	return rt.obs.fed
}

// Profiler exposes the anomaly profiler (nil when disabled).
func (rt *Router) Profiler() *obs.Profiler {
	if rt.obs == nil {
		return nil
	}
	return rt.obs.profiler
}
