package cluster

import (
	"testing"

	"diagnet/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// routers, pools and replica fixtures must all tear down cleanly.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
