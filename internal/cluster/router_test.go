package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"diagnet/internal/analysis"
)

// byAffinity returns the fake replicas in the order Ranked would emit
// them for key (rendezvous hash, descending) — the test-side oracle for
// which replica is the primary.
func byAffinity(key string, reps []*fakeReplica) []*fakeReplica {
	out := append([]*fakeReplica(nil), reps...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if rendezvous(key, out[j].url()) > rendezvous(key, out[i].url()) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// TestAffinityPinsService: same service → same replica, every time; a
// different service may (and for some ID will) land elsewhere.
func TestAffinityPinsService(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, okDiagnose("a"))
	b := newFakeReplica(t, okDiagnose("b"))
	c := newFakeReplica(t, okDiagnose("c"))
	reps := []*fakeReplica{a, b, c}
	rt := newTestRouter(t, []string{a.url(), b.url(), c.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	body := func(svc int) []byte {
		b, _ := json.Marshal(analysis.DiagnoseRequest{ServiceID: svc, Landmarks: []int{0}, Features: []float64{1}})
		return b
	}
	want := byAffinity("svc:7", reps)[0]
	for i := 0; i < 12; i++ {
		status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body(7))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, out)
		}
	}
	if got := want.hits.Load(); got != 12 {
		t.Errorf("affinity target served %d/12 requests", got)
	}
	for _, r := range reps {
		if r != want && r.hits.Load() != 0 {
			t.Errorf("non-affine replica %s served %d requests", r.url(), r.hits.Load())
		}
	}

	// Some service ID must hash to a different primary (rendezvous spreads
	// keys); find one and check it actually lands there.
	for svc := 0; svc < 64; svc++ {
		other := byAffinity(fmt.Sprintf("svc:%d", svc), reps)[0]
		if other == want {
			continue
		}
		before := other.hits.Load()
		if status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body(svc)); status != http.StatusOK {
			t.Fatalf("svc %d: status %d: %s", svc, status, out)
		}
		if other.hits.Load() != before+1 {
			t.Errorf("svc %d did not land on its rendezvous primary", svc)
		}
		return
	}
	t.Error("64 service IDs all hashed to the same primary — rendezvous is not spreading")
}

// TestBackpressureHonored: a 429ing replica is parked for its advertised
// Retry-After — the request fails over once, and subsequent requests skip
// the parked replica entirely instead of blindly retrying into it.
func TestBackpressureHonored(t *testing.T) {
	t.Parallel()
	loaded := newFakeReplica(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	ok := newFakeReplica(t, okDiagnose("ok"))
	rt := newTestRouter(t, []string{loaded.url(), ok.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// Pick a service whose rendezvous primary is the loaded replica so the
	// first attempt deterministically hits it.
	svc := -1
	for s := 0; s < 64; s++ {
		if byAffinity(fmt.Sprintf("svc:%d", s), []*fakeReplica{loaded, ok})[0] == loaded {
			svc = s
			break
		}
	}
	if svc < 0 {
		t.Fatal("no service ID hashes to the loaded replica")
	}
	body, _ := json.Marshal(analysis.DiagnoseRequest{ServiceID: svc, Landmarks: []int{0}, Features: []float64{1}})

	status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body)
	if status != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", status, out)
	}
	if got := loaded.hits.Load(); got != 1 {
		t.Fatalf("loaded replica hit %d times on first request, want 1", got)
	}
	if s := rt.Stats(); s.Backpressure != 1 {
		t.Errorf("Backpressure = %d, want 1", s.Backpressure)
	}

	// The park must hold: five more requests, zero new hits on the loaded
	// replica.
	for i := 0; i < 5; i++ {
		if status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body); status != http.StatusOK {
			t.Fatalf("parked-window request %d: status %d: %s", i, status, out)
		}
	}
	if got := loaded.hits.Load(); got != 1 {
		t.Errorf("parked replica was retried: %d hits, want 1", got)
	}
	if got := ok.hits.Load(); got != 6 {
		t.Errorf("healthy replica served %d requests, want 6", got)
	}
}

// TestAllLoadedPropagates429: when every replica says 429, the client
// gets the 429 (with its Retry-After advice) — each replica tried exactly
// once, never hammered.
func TestAllLoadedPropagates429(t *testing.T) {
	t.Parallel()
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}
	a := newFakeReplica(t, http.HandlerFunc(shed))
	b := newFakeReplica(t, http.HandlerFunc(shed))
	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/diagnose", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q not propagated", got)
	}
	if a.hits.Load() != 1 || b.hits.Load() != 1 {
		t.Errorf("hits a=%d b=%d, want exactly one each", a.hits.Load(), b.hits.Load())
	}
	if s := rt.Stats(); s.Backpressure != 2 {
		t.Errorf("Backpressure = %d, want 2", s.Backpressure)
	}
}

// TestFailoverOn5xx: a replica answering 500 is failed over transparently
// and the outcome feeds its breaker.
func TestFailoverOn5xx(t *testing.T) {
	t.Parallel()
	bad := newFakeReplica(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	good := newFakeReplica(t, okDiagnose("good"))
	rt := newTestRouter(t, []string{bad.url(), good.url()}, Config{HedgeAfter: -1, NoAffinity: true})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	// Without affinity ranking is by load; run enough requests that the
	// bad replica is certainly hit at least once, and every client call
	// must still succeed.
	body := diagnoseFake(t)
	for i := 0; i < 10; i++ {
		if status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose", body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, out)
		}
	}
	if bad.hits.Load() == 0 {
		t.Skip("load-ranked routing never chose the failing replica (legal, just unhelpful)")
	}
	if s := rt.Stats(); s.Failovers == 0 {
		t.Errorf("Failovers = 0 after %d hits on a 500ing replica", bad.hits.Load())
	}
}

// diagnoseFake is a minimal body fake replicas accept (they don't
// validate).
func diagnoseFake(t testing.TB) []byte {
	t.Helper()
	b, err := json.Marshal(analysis.DiagnoseRequest{ServiceID: 1, Landmarks: []int{0}, Features: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestScatterGatherMergesInOrder: a 20-request batch over two replicas
// comes back as one in-order response, with both replicas doing a chunk.
func TestScatterGatherMergesInOrder(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, echoBatch("a"))
	b := newFakeReplica(t, echoBatch("b"))
	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: -1, BatchChunk: 4})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	const n = 20
	var req analysis.BatchRequest
	for i := 0; i < n; i++ {
		req.Requests = append(req.Requests, analysis.DiagnoseRequest{ServiceID: i, Landmarks: []int{0}, Features: []float64{1}})
	}
	body, _ := json.Marshal(&req)

	// Every batch must merge in order; the both-replicas property is
	// checked eventually — sibling chunks are ranked concurrently, so one
	// batch can legitimately land on a single replica when both chunk
	// goroutines rank before either attempt registers as outstanding.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, out := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose-batch", body)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, out)
		}
		var resp analysis.BatchResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Responses) != n || len(resp.Errors) != n {
			t.Fatalf("merged shape %d/%d, want %d/%d", len(resp.Responses), len(resp.Errors), n, n)
		}
		versions := map[string]int{}
		for i, r := range resp.Responses {
			if r == nil {
				t.Fatalf("response %d is null", i)
			}
			if r.ModelService != i {
				t.Fatalf("response %d echoes request %d — merge order broken", i, r.ModelService)
			}
			versions[r.ModelVersion]++
		}
		if len(versions) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scatter never used both replicas: a=%d b=%d", a.hits.Load(), b.hits.Load())
		}
	}
	if a.hits.Load() == 0 || b.hits.Load() == 0 {
		t.Errorf("scatter used one replica only: a=%d b=%d", a.hits.Load(), b.hits.Load())
	}
}

// TestBatchChunkFailureFailsWhole: if a chunk cannot be served by any
// replica, the whole batch fails — no silent partial merges.
func TestBatchChunkFailureFailsWhole(t *testing.T) {
	t.Parallel()
	boom := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	a := newFakeReplica(t, http.HandlerFunc(boom))
	b := newFakeReplica(t, http.HandlerFunc(boom))
	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	var req analysis.BatchRequest
	for i := 0; i < 4; i++ {
		req.Requests = append(req.Requests, analysis.DiagnoseRequest{Landmarks: []int{0}, Features: []float64{1}})
	}
	body, _ := json.Marshal(&req)
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/diagnose-batch", body)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want the chunk's 500 propagated", status)
	}
}

// TestReadyzTracksPool: the router is ready iff at least one replica is.
func TestReadyzTracksPool(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, okDiagnose("a"))
	rt := newTestRouter(t, []string{a.url()}, Config{HedgeAfter: -1, HealthInterval: 10 * time.Millisecond})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	get := func() int {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusNoContent {
		t.Fatalf("ready router /readyz = %d", got)
	}
	a.ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for get() != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("router never went unready after its only replica did")
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.ready.Store(true)
	for get() != http.StatusNoContent {
		if time.Now().After(deadline) {
			t.Fatal("router never recovered readiness")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicasEndpoint: /v1/replicas reports per-replica status.
func TestReplicasEndpoint(t *testing.T) {
	t.Parallel()
	a := newFakeReplica(t, okDiagnose("a"))
	b := newFakeReplica(t, okDiagnose("b"))
	rt := newTestRouter(t, []string{a.url(), b.url()}, Config{HedgeAfter: -1})
	ts := httptest.NewServer(rt)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d replicas reported, want 2", len(got))
	}
	for _, r := range got {
		if !r.Healthy {
			t.Errorf("replica %s reported unhealthy", r.Name)
		}
		if r.Breaker != "closed" {
			t.Errorf("replica %s breaker %q, want closed", r.Name, r.Breaker)
		}
	}
}
