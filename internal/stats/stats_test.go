package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slice stats should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleElement(t *testing.T) {
	if Percentile([]float64{42}, 90) != 42 {
		t.Fatal("single-element percentile")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if (Summary{}) != Summarize(nil) {
		t.Fatal("empty Summarize should be zero value")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		o.Add(xs[i])
	}
	if !almost(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Online mean %v vs %v", o.Mean(), Mean(xs))
	}
	if !almost(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Online var %v vs %v", o.Variance(), Variance(xs))
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var all, a, b Online
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		xs = append(xs, x)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || !almost(a.Mean(), all.Mean(), 1e-9) || !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("Merge: got n=%d mean=%v var=%v", a.N(), a.Mean(), a.Variance())
	}
	// Merging into an empty accumulator copies.
	var empty Online
	empty.Merge(&all)
	if empty.N() != all.N() {
		t.Fatal("merge into empty failed")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

func TestSplitSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := SplitSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate child seed at stream %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(42, 0) != SplitSeed(42, 0) {
		t.Fatal("SplitSeed must be deterministic")
	}
	if SplitSeed(42, 0) == SplitSeed(43, 0) {
		t.Fatal("different parents should give different children")
	}
}

func TestNewRandReproducible(t *testing.T) {
	a := NewRand(1, 2)
	b := NewRand(1, 2)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRand not reproducible")
		}
	}
}

func TestTruncNormWithinBounds(t *testing.T) {
	rng := NewRand(9, 0)
	for i := 0; i < 1000; i++ {
		v := TruncNorm(rng, 0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNorm out of bounds: %v", v)
		}
	}
}

func TestLogNormPositive(t *testing.T) {
	rng := NewRand(10, 0)
	for i := 0; i < 100; i++ {
		if LogNorm(rng, 0, 1) <= 0 {
			t.Fatal("LogNorm must be positive")
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := PercentileSorted(sorted, p)
			if v < prev || v < sorted[0]-1e-12 || v > sorted[n-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Online.Merge is order-insensitive for the mean.
func TestOnlineMergeCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a1, b1, a2, b2 Online
		for i := 0; i < 20+rng.Intn(50); i++ {
			x := rng.NormFloat64()
			a1.Add(x)
			a2.Add(x)
		}
		for i := 0; i < 1+rng.Intn(50); i++ {
			x := rng.NormFloat64() * 2
			b1.Add(x)
			b2.Add(x)
		}
		a1.Merge(&b1) // a then b
		b2.Merge(&a2) // b then a
		return almost(a1.Mean(), b2.Mean(), 1e-9) && almost(a1.Variance(), b2.Variance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
