package stats

import (
	"math"
	"math/rand"
	"sync"
)

// SplitSeed derives a child seed from a parent seed and a stream index
// using the SplitMix64 finalizer. Parallel shards seeded with
// SplitSeed(root, shard) are decorrelated yet fully reproducible, so a
// computation's result never depends on goroutine scheduling.
func SplitSeed(seed int64, stream int64) int64 {
	z := uint64(seed) + uint64(stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// NewRand returns a rand.Rand seeded with SplitSeed(seed, stream).
func NewRand(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(seed, stream)))
}

// LockedRand is a seedable random source safe for concurrent use: a
// mutex-guarded rand.Rand owned by exactly one component. Components that
// draw from the global math/rand source interleave their draw sequences —
// a second component's draws shift everyone else's, so a seeded run stops
// replaying. Giving each component its own LockedRand (seeded from the
// run's root seed via SplitSeed) keeps every component's sequence
// independent of scheduling and of what the rest of the process does.
type LockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewLocked returns a LockedRand seeded directly with seed (stream 0 of
// that seed). Use NewLockedStream to decorrelate sibling components.
func NewLocked(seed int64) *LockedRand {
	return &LockedRand{r: rand.New(rand.NewSource(seed))}
}

// NewLockedStream returns a LockedRand seeded with SplitSeed(seed,
// stream): component number `stream` of a run rooted at `seed`.
func NewLockedStream(seed, stream int64) *LockedRand {
	return &LockedRand{r: NewRand(seed, stream)}
}

// Reseed restarts the sequence from the given seed.
func (l *LockedRand) Reseed(seed int64) {
	l.mu.Lock()
	l.r = rand.New(rand.NewSource(seed))
	l.mu.Unlock()
}

// Float64 draws from [0, 1).
func (l *LockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

// Intn draws from [0, n).
func (l *LockedRand) Intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Intn(n)
}

// Int63 draws a non-negative int64.
func (l *LockedRand) Int63() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63()
}

// Uint64 draws a uint64.
func (l *LockedRand) Uint64() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Uint64()
}

// NormFloat64 draws a standard normal variate.
func (l *LockedRand) NormFloat64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (l *LockedRand) Perm(n int) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Perm(n)
}

// Shuffle pseudo-randomizes the order of n elements.
func (l *LockedRand) Shuffle(n int, swap func(i, j int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.r.Shuffle(n, swap)
}

// TruncNorm draws from a normal distribution with the given mean and
// standard deviation, truncated to [lo, hi] by clamping. Clamping (rather
// than rejection) keeps the draw count deterministic per call.
func TruncNorm(rng *rand.Rand, mean, std, lo, hi float64) float64 {
	return Clamp(mean+std*rng.NormFloat64(), lo, hi)
}

// LogNorm draws a log-normal variate exp(N(mu, sigma)).
func LogNorm(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
