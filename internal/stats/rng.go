package stats

import (
	"math"
	"math/rand"
)

// SplitSeed derives a child seed from a parent seed and a stream index
// using the SplitMix64 finalizer. Parallel shards seeded with
// SplitSeed(root, shard) are decorrelated yet fully reproducible, so a
// computation's result never depends on goroutine scheduling.
func SplitSeed(seed int64, stream int64) int64 {
	z := uint64(seed) + uint64(stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// NewRand returns a rand.Rand seeded with SplitSeed(seed, stream).
func NewRand(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(seed, stream)))
}

// TruncNorm draws from a normal distribution with the given mean and
// standard deviation, truncated to [lo, hi] by clamping. Clamping (rather
// than rejection) keeps the draw count deterministic per call.
func TruncNorm(rng *rand.Rand, mean, std, lo, hi float64) float64 {
	return Clamp(mean+std*rng.NormFloat64(), lo, hi)
}

// LogNorm draws a log-normal variate exp(N(mu, sigma)).
func LogNorm(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
