// Package stats provides the descriptive statistics and deterministic
// random-number plumbing shared by the DiagNet simulator, models and
// evaluation harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0 for
// slices with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks, matching numpy.percentile's default.
// It panics on an empty slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the five-number-style summary used in experiment reports.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P25, P50, P75 float64
	Max                float64
}

// Summarize computes a Summary of xs. An empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  sorted[0],
		P25:  PercentileSorted(sorted, 25),
		P50:  PercentileSorted(sorted, 50),
		P75:  PercentileSorted(sorted, 75),
		Max:  sorted[len(sorted)-1],
	}
}

// Online accumulates mean and variance incrementally using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of accumulated observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge folds another accumulator into o (Chan et al. parallel variant),
// letting shards accumulate independently and reduce deterministically.
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	mean := o.mean + d*float64(p.n)/float64(n)
	m2 := o.m2 + p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	o.n, o.mean, o.m2 = n, mean, m2
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
