package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// validSegment builds a well-formed segment holding the given payloads.
func validSegment(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	buf.Write(segMagic)
	for _, p := range payloads {
		var hdr [recHeaderBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, crcTable))
		buf.Write(hdr[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzReplayJournal feeds arbitrary bytes — truncated, bit-flipped,
// interleaved with valid records — through the exact scanner the
// recovery path uses, and through a full Open/Replay over a segment
// file. Replay must never panic and never yield a record that fails its
// checksum, no matter what the disk holds.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(segMagic)
	f.Add(validSegment([]byte("hello"), []byte("world")))
	// Truncated mid-payload.
	whole := validSegment([]byte("truncated-record-payload"))
	f.Add(whole[:len(whole)-5])
	// Bit-flipped payload byte.
	flipped := validSegment([]byte("flip-me"))
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	// Valid record followed by garbage followed by a valid-looking one.
	f.Add(append(append(validSegment([]byte("ok")), 0xde, 0xad, 0xbe, 0xef), validSegment([]byte("after"))[8:]...))
	// Absurd length prefix.
	huge := append([]byte{}, segMagic...)
	huge = binary.LittleEndian.AppendUint32(huge, 0xffffffff)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. The raw scanner: every yielded record must pass its checksum
		//    (re-verified here independently), and valid must stay within
		//    the input.
		valid, clean, err := ScanSegment(bytes.NewReader(data), 1<<20, func(p []byte) error {
			if len(p) == 0 {
				t.Fatal("scanner yielded an empty record")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scanner returned fn-less error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside input of %d bytes", valid, len(data))
		}
		if clean && valid != int64(len(data)) && len(data) >= len(segMagic) && bytes.Equal(data[:len(segMagic)], segMagic) {
			t.Fatalf("clean scan stopped early: %d of %d", valid, len(data))
		}
		// Records up to `valid` must re-scan identically (determinism).
		revalid, reclean, _ := ScanSegment(bytes.NewReader(data[:valid]), 1<<20, nil)
		if revalid != valid || (valid > int64(len(segMagic)) && !reclean) {
			t.Fatalf("truncated-at-valid rescan disagrees: %d/%v vs %d", revalid, reclean, valid)
		}

		// 2. Full journal recovery over the same bytes as segment 0: Open
		//    must repair, Replay must only yield checksum-clean records,
		//    and a post-recovery append/replay cycle must work.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		count := 0
		if err := j.Replay(func(p []byte) error { count++; return nil }); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if err := j.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		j.Close()
		j2, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		total := 0
		j2.Replay(func(p []byte) error { total++; return nil })
		if total != count+1 {
			t.Fatalf("post-recovery append lost: %d then %d", count, total)
		}
	})
}
