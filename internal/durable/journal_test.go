package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends records "rec-0".."rec-(n-1)".
func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// replayAll reopens dir and returns every surviving record as strings.
func replayAll(t *testing.T, dir string) []string {
	t.Helper()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	var out []string
	if err := j.Replay(func(p []byte) error {
		out = append(out, string(p))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 10)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 10 || got[0] != "rec-0" || got[9] != "rec-9" {
		t.Fatalf("replay mismatch: %v", got)
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 20)
	if j.Segment() == 0 {
		t.Fatal("expected rotation past segment 0")
	}
	j.Close()
	if got := replayAll(t, dir); len(got) != 20 {
		t.Fatalf("want 20 records across segments, got %d", len(got))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 5)
	j.Close()
	// Simulate a torn write: append garbage that looks like a partial
	// record (header promising more bytes than exist).
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	got := replayAll(t, dir)
	if len(got) != 5 {
		t.Fatalf("want the 5 intact records, got %d", len(got))
	}
	// The repair must also have physically truncated the tail so the
	// journal can append cleanly again.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got = replayAll(t, dir)
	if len(got) != 6 || got[5] != "after-repair" {
		t.Fatalf("post-repair append lost: %v", got)
	}
}

func TestJournalBitFlipStopsReplayAtCorruption(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 8)
	j.Close()
	// Flip one payload byte in the middle of the segment: records before
	// the flip survive, the flipped one and everything after are dropped.
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(segMagic) + 3*(recHeaderBytes+len("rec-0")) + recHeaderBytes + 2
	data[mid] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("want 3 pre-corruption records, got %d: %v", len(got), got)
	}
}

func TestJournalCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 20) // spans several segments
	j.Close()
	// Corrupt segment 1's first record: segment 0 survives, segments ≥1
	// are truncated/dropped — replay order would otherwise be violated.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+recHeaderBytes] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	for i, rec := range got {
		if rec != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d out of order: %q", i, rec)
		}
	}
	// Everything from the corrupt record on must be gone.
	if len(got) == 0 || len(got) >= 20 {
		t.Fatalf("unexpected survivor count %d", len(got))
	}
	j2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	segs, err := j2.segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[:len(segs)-1] {
		if s > 1 {
			t.Fatalf("post-corruption segment %d survived repair", s)
		}
	}
}

func TestJournalCrashMidAppendTornWriteRecovered(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 3)
	SetCrashPoint(CrashMidAppend)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		j.Append([]byte("torn-record-that-half-lands"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	// The unacknowledged record half-landed; recovery must drop it and
	// keep the 3 acknowledged ones.
	got := replayAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("want 3 acknowledged records, got %v", got)
	}
}

func TestJournalCrashPreSyncLosesOnlyUnacknowledged(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 3)
	SetCrashPoint(CrashPreSync)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		j.Append([]byte("not-yet-acked"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	// Pre-fsync the record may survive (page cache flushed anyway in this
	// process) or not — but the acknowledged prefix must be intact and in
	// order, and nothing may be torn.
	got := replayAll(t, dir)
	if len(got) < 3 {
		t.Fatalf("lost acknowledged records: %v", got)
	}
	for i := 0; i < 3; i++ {
		if got[i] != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("acknowledged record %d corrupted: %q", i, got[i])
		}
	}
}

func TestJournalCrashPostSyncKeepsAcknowledged(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	SetCrashPoint(CrashPostSync)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		j.Append([]byte("acked"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[0] != "acked" {
		t.Fatalf("fsync-acknowledged record lost: %v", got)
	}
}

func TestJournalDropBefore(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 20)
	cur, err := j.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.DropBefore(cur); err != nil {
		t.Fatal(err)
	}
	segs, err := j.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != cur {
		t.Fatalf("want only segment %d after compaction, got %v", cur, segs)
	}
	j.Close()
	if got := replayAll(t, dir); len(got) != 0 {
		t.Fatalf("compacted journal should be empty, got %v", got)
	}
}

func TestJournalBatchFsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Fsync: FsyncBatch, BatchAppends: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 10)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := replayAll(t, dir); len(got) != 10 {
		t.Fatalf("want 10, got %d", len(got))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "": FsyncAlways,
		"batch": FsyncBatch, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("want error for bogus policy")
	}
}
