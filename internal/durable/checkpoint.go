package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Atomic checkpoints: a full-state snapshot published with the classic
// write-temp → fsync → rename dance, so a reader either sees the previous
// generation or the new one — never a half-written file. Generations are
// monotonic; a MANIFEST names the current generation, and loading falls
// back to scanning *.ckpt files when the manifest itself was lost to a
// crash (rename published the checkpoint but the manifest write died).

// Checkpoint file layout:
//
//	8-byte magic "DCKP\x00\x00\x00\x01"
//	u64 generation (LE) | u32 CRC32C(payload) | u32 payload length | payload
var ckptMagic = []byte("DCKP\x00\x00\x00\x01")

// ErrNoCheckpoint is returned by Load when no valid checkpoint exists.
var ErrNoCheckpoint = errors.New("durable: no checkpoint")

// Checkpointer writes and reads generations of one named checkpoint
// family inside dir. Not safe for concurrent Write; recovery and the
// SIGHUP path both run on single goroutines.
type Checkpointer struct {
	dir  string
	name string
	gen  uint64 // highest generation seen or written
}

// ckptName formats a checkpoint file name.
func (c *Checkpointer) ckptName(gen uint64) string {
	return fmt.Sprintf("%s-%016x.ckpt", c.name, gen)
}

// parseGen extracts the generation from a checkpoint file name.
func (c *Checkpointer) parseGen(file string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(file, c.name+"-%016x.ckpt", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// OpenCheckpointer scans dir for existing generations of name so the next
// Write continues the monotonic sequence.
func OpenCheckpointer(dir, name string) (*Checkpointer, error) {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("durable: bad checkpoint name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: checkpoint dir: %w", err)
	}
	c := &Checkpointer{dir: dir, name: name}
	gens, err := c.generations()
	if err != nil {
		return nil, err
	}
	if len(gens) > 0 {
		c.gen = gens[len(gens)-1]
	}
	return c, nil
}

// generations lists on-disk generations, ascending.
func (c *Checkpointer) generations() ([]uint64, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: checkpoint dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if gen, ok := c.parseGen(e.Name()); ok && !e.IsDir() {
			out = append(out, gen)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Gen returns the newest known generation (0 = none yet).
func (c *Checkpointer) Gen() uint64 { return c.gen }

// Write publishes payload as the next generation: temp file → fsync →
// rename → dir fsync → manifest, then prunes older generations. The
// checkpoint is the unit of atomicity; a crash anywhere leaves either
// the old or the new generation loadable.
func (c *Checkpointer) Write(payload []byte) (uint64, error) {
	gen := c.gen + 1
	buf := make([]byte, 0, len(ckptMagic)+16+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)

	final := filepath.Join(c.dir, c.ckptName(gen))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return 0, err
	}
	crash(CrashPreRename) // temp durable, not yet published
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("durable: publish checkpoint: %w", err)
	}
	if err := syncDir(c.dir); err != nil {
		return 0, err
	}
	crash(CrashPostRename) // published; manifest and pruning still pending
	c.gen = gen
	mCheckpoints.Inc()
	// The manifest is a convenience pointer, not the source of truth —
	// Load falls back to scanning, so a crash between rename and manifest
	// loses nothing.
	manifest := fmt.Sprintf("gen %d\nfile %s\n", gen, c.ckptName(gen))
	if err := writeFileSync(filepath.Join(c.dir, c.name+".MANIFEST.tmp"), []byte(manifest)); err != nil {
		return 0, err
	}
	if err := os.Rename(filepath.Join(c.dir, c.name+".MANIFEST.tmp"), filepath.Join(c.dir, c.name+".MANIFEST")); err != nil {
		return 0, fmt.Errorf("durable: publish manifest: %w", err)
	}
	if err := syncDir(c.dir); err != nil {
		return 0, err
	}
	// Keep the previous generation as a fallback; prune everything older.
	gens, err := c.generations()
	if err != nil {
		return 0, err
	}
	for _, g := range gens {
		if g+1 < gen {
			os.Remove(filepath.Join(c.dir, c.ckptName(g)))
		}
	}
	return gen, nil
}

// Load returns the newest generation whose checksum passes, walking
// backwards over surviving generations so one corrupt checkpoint file
// degrades to the previous snapshot instead of failing recovery.
func (c *Checkpointer) Load() ([]byte, uint64, error) {
	gens, err := c.generations()
	if err != nil {
		return nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		payload, err := c.read(gens[i])
		if err == nil {
			return payload, gens[i], nil
		}
	}
	return nil, 0, ErrNoCheckpoint
}

// read loads and verifies one generation.
func (c *Checkpointer) read(gen uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(c.dir, c.ckptName(gen)))
	if err != nil {
		return nil, err
	}
	hdrLen := len(ckptMagic) + 16
	if len(data) < hdrLen || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, errors.New("durable: bad checkpoint header")
	}
	rest := data[len(ckptMagic):]
	fileGen := binary.LittleEndian.Uint64(rest[0:8])
	crc := binary.LittleEndian.Uint32(rest[8:12])
	n := binary.LittleEndian.Uint32(rest[12:16])
	payload := rest[16:]
	if fileGen != gen || uint32(len(payload)) != n || crc32.Checksum(payload, crcTable) != crc {
		return nil, errors.New("durable: checkpoint checksum mismatch")
	}
	return payload, nil
}

// writeFileSync writes data to path and fsyncs the file before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
