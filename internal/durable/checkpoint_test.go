package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTripAndGenerations(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCheckpointer(dir, "registry")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	var lastGen uint64
	for i := 1; i <= 3; i++ {
		gen, err := c.Write([]byte(fmt.Sprintf("state-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if gen <= lastGen {
			t.Fatalf("generation not monotonic: %d after %d", gen, lastGen)
		}
		lastGen = gen
	}
	// A fresh checkpointer must continue the sequence, not restart it.
	c2, err := OpenCheckpointer(dir, "registry")
	if err != nil {
		t.Fatal(err)
	}
	payload, gen, err := c2.Load()
	if err != nil || gen != lastGen || !bytes.Equal(payload, []byte("state-3")) {
		t.Fatalf("Load = %q gen %d err %v", payload, gen, err)
	}
	gen4, err := c2.Write([]byte("state-4"))
	if err != nil || gen4 != lastGen+1 {
		t.Fatalf("restart broke monotonic generations: %d, %v", gen4, err)
	}
}

func TestCheckpointCrashPreRenameKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCheckpointer(dir, "reg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("old")); err != nil {
		t.Fatal(err)
	}
	SetCrashPoint(CrashPreRename)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		c.Write([]byte("new"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	c2, err := OpenCheckpointer(dir, "reg")
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := c2.Load()
	if err != nil || string(payload) != "old" {
		t.Fatalf("pre-rename crash must keep old state; got %q, %v", payload, err)
	}
}

func TestCheckpointCrashPostRenameServesNewGeneration(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCheckpointer(dir, "reg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("old")); err != nil {
		t.Fatal(err)
	}
	SetCrashPoint(CrashPostRename)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		c.Write([]byte("new"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	// Rename happened: the new generation is published even though the
	// manifest update and pruning died.
	c2, err := OpenCheckpointer(dir, "reg")
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := c2.Load()
	if err != nil || string(payload) != "new" {
		t.Fatalf("post-rename crash must serve new state; got %q, %v", payload, err)
	}
}

func TestCheckpointCorruptLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCheckpointer(dir, "reg")
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("good"))
	gen2, err := c.Write([]byte("bad-to-be"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.ckptName(gen2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, gen, err := c.Load()
	if err != nil || string(payload) != "good" || gen >= gen2 {
		t.Fatalf("want fallback to gen<%d 'good', got %q gen %d err %v", gen2, payload, gen, err)
	}
}
