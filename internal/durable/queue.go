package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Queue is an acknowledged work queue over the journal: producers Append
// payloads, consumers Ack sequence numbers once the work is safely
// handed off, and a restart replays exactly the appended-but-unacked
// suffix. Both the collector's event stream and the agent's pending
// diagnosis uploads are instances of this shape.
//
// Queue records share the journal's durability semantics: under
// FsyncAlways an Append that returned is replayed after any crash unless
// its Ack also reached the disk.
type Queue struct {
	j *Journal

	mu      sync.Mutex
	next    uint64            // next sequence number to assign
	unacked map[uint64][]byte // appended, not yet acked (in-memory mirror)
	order   []uint64          // unacked seqs in append order
}

// QueueItem is one recovered queue entry.
type QueueItem struct {
	Seq     uint64
	Payload []byte
}

// Queue record layout: 1-byte kind (0 = item, 1 = ack) | u64 seq (LE) |
// payload (items only).
const (
	qKindItem = 0
	qKindAck  = 1
)

// OpenQueue opens (creating if needed) a queue in dir and replays the
// journal to rebuild the unacked set. Pending() returns what survived.
func OpenQueue(dir string, opt Options) (*Queue, error) {
	j, err := Open(dir, opt)
	if err != nil {
		return nil, err
	}
	q := &Queue{j: j, unacked: map[uint64][]byte{}}
	err = j.Replay(func(p []byte) error {
		if len(p) < 9 {
			return nil // foreign record; tolerate
		}
		seq := binary.LittleEndian.Uint64(p[1:9])
		if seq >= q.next {
			q.next = seq + 1
		}
		switch p[0] {
		case qKindItem:
			if _, dup := q.unacked[seq]; !dup {
				q.order = append(q.order, seq)
			}
			q.unacked[seq] = append([]byte(nil), p[9:]...)
		case qKindAck:
			if _, ok := q.unacked[seq]; ok {
				delete(q.unacked, seq)
				for i, s := range q.order {
					if s == seq {
						q.order = append(q.order[:i], q.order[i+1:]...)
						break
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		j.Close()
		return nil, err
	}
	return q, nil
}

// Pending returns the unacknowledged items in append order — after Open,
// exactly the entries a crash interrupted.
func (q *Queue) Pending() []QueueItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QueueItem, 0, len(q.order))
	for _, seq := range q.order {
		out = append(out, QueueItem{Seq: seq, Payload: append([]byte(nil), q.unacked[seq]...)})
	}
	return out
}

// Len returns the number of unacknowledged items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.unacked)
}

// Append journals one payload and returns its sequence number.
func (q *Queue) Append(payload []byte) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	seq := q.next
	rec := make([]byte, 9+len(payload))
	rec[0] = qKindItem
	binary.LittleEndian.PutUint64(rec[1:9], seq)
	copy(rec[9:], payload)
	if err := q.j.Append(rec); err != nil {
		return 0, err
	}
	q.next++
	q.unacked[seq] = append([]byte(nil), payload...)
	q.order = append(q.order, seq)
	return seq, nil
}

// Ack journals the completion of seq; an acked item is never replayed.
func (q *Queue) Ack(seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.unacked[seq]; !ok {
		return fmt.Errorf("durable: ack of unknown seq %d", seq)
	}
	var rec [9]byte
	rec[0] = qKindAck
	binary.LittleEndian.PutUint64(rec[1:9], seq)
	if err := q.j.Append(rec[:]); err != nil {
		return err
	}
	delete(q.unacked, seq)
	for i, s := range q.order {
		if s == seq {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
	return nil
}

// Compact rewrites the queue to just its unacked suffix: rotate to a
// fresh segment, re-journal the surviving items, drop everything older.
// Bounded work — the unacked set is the consumer's backlog, which
// admission control bounds elsewhere.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	seg, err := q.j.Rotate()
	if err != nil {
		return err
	}
	for _, seq := range q.order {
		payload := q.unacked[seq]
		rec := make([]byte, 9+len(payload))
		rec[0] = qKindItem
		binary.LittleEndian.PutUint64(rec[1:9], seq)
		copy(rec[9:], payload)
		if err := q.j.Append(rec); err != nil {
			return err
		}
	}
	return q.j.DropBefore(seg)
}

// Sync forces outstanding appends to stable storage.
func (q *Queue) Sync() error { return q.j.Sync() }

// Close closes the underlying journal.
func (q *Queue) Close() error { return q.j.Close() }

// ErrQueueClosed mirrors journal closure for callers that care.
var ErrQueueClosed = errors.New("durable: queue closed")
