package durable

import "diagnet/internal/telemetry"

// State-plane metrics (DESIGN.md §13): journal write/replay volume,
// corruption repairs, and checkpoint generations. Shared process-wide
// like every other layer's metrics; GET /v1/metrics exposes them.
var (
	mAppends     = telemetry.Default().Counter("durable.journal.appends")
	mSyncs       = telemetry.Default().Counter("durable.journal.syncs")
	mRotations   = telemetry.Default().Counter("durable.journal.rotations")
	mReplayed    = telemetry.Default().Counter("durable.journal.replayed_records")
	mTruncations = telemetry.Default().Counter("durable.journal.truncations")
	mCheckpoints = telemetry.Default().Counter("durable.checkpoints.written")
)
