package durable

import (
	"testing"

	"diagnet/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// journals and queues own no goroutines, so anything found is a bug in
// a test's cleanup or a crash-injection path that skipped teardown.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
