package durable

import (
	"fmt"
	"testing"
)

func TestQueueAppendAckReplay(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 5; i++ {
		seq, err := q.Append([]byte(fmt.Sprintf("item-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	// Ack 0, 2, 4; a restart must replay exactly 1 and 3, in order.
	for _, i := range []int{0, 2, 4} {
		if err := q.Ack(seqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()

	q2, err := OpenQueue(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	pending := q2.Pending()
	if len(pending) != 2 || string(pending[0].Payload) != "item-1" || string(pending[1].Payload) != "item-3" {
		t.Fatalf("pending mismatch: %+v", pending)
	}
	// Sequence numbers keep ascending across the restart.
	seq, err := q2.Append([]byte("item-5"))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= seqs[4] {
		t.Fatalf("sequence went backwards: %d after %d", seq, seqs[4])
	}
}

func TestQueueCrashMidAppendLosesOnlyThatItem(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Append([]byte("acked-append")); err != nil {
		t.Fatal(err)
	}
	SetCrashPoint(CrashMidAppend)
	defer ClearCrashPoint()
	crashed := false
	func() {
		defer RecoverCrash(&crashed)
		q.Append([]byte("torn"))
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	q2, err := OpenQueue(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	pending := q2.Pending()
	if len(pending) != 1 || string(pending[0].Payload) != "acked-append" {
		t.Fatalf("want the one acknowledged item, got %+v", pending)
	}
}

func TestQueueCompactPreservesUnacked(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 20; i++ {
		seq, err := q.Append([]byte(fmt.Sprintf("item-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	for _, s := range seqs[:18] {
		if err := q.Ack(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, err := q.j.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments", len(segs))
	}
	q.Close()
	q2, err := OpenQueue(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	pending := q2.Pending()
	if len(pending) != 2 || string(pending[0].Payload) != "item-18" || string(pending[1].Payload) != "item-19" {
		t.Fatalf("compaction corrupted pending set: %+v", pending)
	}
}
