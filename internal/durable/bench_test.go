package durable

import (
	"fmt"
	"testing"
)

// BenchmarkJournalAppend prices an append under each fsync policy with a
// typical lifecycle-record payload (~128 B). The batch/never variants are
// the throughput ceiling the collector's event journal runs at; always is
// what a registry promotion pays for its durability acknowledgement.
func BenchmarkJournalAppend(b *testing.B) {
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, bc := range []struct {
		name string
		opt  Options
	}{
		{"fsync=always", Options{Fsync: FsyncAlways}},
		{"fsync=batch64", Options{Fsync: FsyncBatch, BatchAppends: 64}},
		{"fsync=never", Options{Fsync: FsyncNever}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opt := bc.opt
			opt.SegmentBytes = 64 << 20 // keep rotation out of the measurement
			j, err := Open(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointWrite prices a full checkpoint publish (write-temp,
// fsync, rename, manifest) at a few snapshot sizes.
func BenchmarkCheckpointWrite(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("size=%dKiB", size>>10), func(b *testing.B) {
			c, err := OpenCheckpointer(b.TempDir(), "bench")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Write(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
