// Package durable is DiagNet's crash-safe state plane: a checksummed
// write-ahead journal with bounded segments and an atomic checkpoint
// writer, shared by every stateful component (the serving registry's
// version lifecycle, the collector's event stream, the agent's pending
// uploads). The guarantees are the classic WAL pair:
//
//   - a record acknowledged under FsyncAlways survives a crash at any
//     later instant (append → fsync → ack), and
//   - replay after a crash never yields a torn or corrupt record — the
//     journal is truncated at the first record whose length prefix or
//     CRC32C fails, and every later segment is discarded (records after
//     a corruption point have no ordering guarantee).
//
// The package also hosts the deterministic crash-injection points
// (crashpoint.go) the recovery tests use to prove those invariants.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segment file layout:
//
//	8-byte magic "DJNL\x00\x00\x00\x01"
//	repeated records: u32 payload length (LE) | u32 CRC32C(payload) | payload
//
// The length prefix is bounded by MaxRecordBytes so a corrupt length
// cannot drive a multi-gigabyte allocation during replay.
var segMagic = []byte("DJNL\x00\x00\x00\x01")

const recHeaderBytes = 8 // u32 len + u32 crc

// crcTable is the Castagnoli polynomial (CRC32C) — hardware-accelerated
// on amd64/arm64, and the same checksum the big WAL implementations
// (LevelDB, etcd) settled on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects how eagerly appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs before Append returns: an acknowledged record is
	// durable. The default, and the policy the recovery invariants assume.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch syncs every Options.BatchAppends appends and on
	// Sync/Rotate/Close — bounded loss window, much higher throughput.
	FsyncBatch
	// FsyncNever leaves syncing to the OS page cache (tests, or state
	// that is merely nice to keep).
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncNever:
		return "never"
	}
	return "always"
}

// Options tunes a journal.
type Options struct {
	// Fsync is the append durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// BatchAppends is the FsyncBatch sync cadence (default 64).
	BatchAppends int
	// SegmentBytes caps one segment file; appends past the cap rotate to
	// a fresh segment (default 4 MiB).
	SegmentBytes int64
	// MaxRecordBytes bounds one record's payload (default 16 MiB).
	MaxRecordBytes int
}

func (o Options) withDefaults() Options {
	if o.BatchAppends <= 0 {
		o.BatchAppends = 64
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	return o
}

// Journal is a segmented write-ahead log. Append/Sync/Rotate are safe for
// concurrent use; Replay must run before the first Append (it reads the
// on-disk state recovery left behind).
type Journal struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // index of the open segment
	size     int64  // bytes written to the open segment
	pending  int    // appends since the last sync (FsyncBatch)
	appended bool   // an Append happened; Replay is no longer allowed
	closed   bool
}

// segName formats a segment file name; the zero-padded hex index keeps
// lexical order equal to numeric order.
func segName(idx uint64) string { return fmt.Sprintf("journal-%016x.seg", idx) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	var idx uint64
	if _, err := fmt.Sscanf(name, "journal-%016x.seg", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// Open opens (creating if needed) the journal in dir and repairs the
// crash state: segments are scanned in order and the journal is truncated
// at the first torn or corrupt record — the tail of that segment and
// every later segment are discarded. Open never discards a record that
// passes its checksum before the corruption point.
func Open(dir string, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: journal dir: %w", err)
	}
	j := &Journal{dir: dir, opt: opt}
	segs, err := j.segments()
	if err != nil {
		return nil, err
	}
	if err := j.repair(segs); err != nil {
		return nil, err
	}
	// Reload the (possibly truncated) segment list and open the last
	// segment for append, or start segment 0.
	segs, err = j.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return j, j.openSegmentLocked(0)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: reopen segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stat segment: %w", err)
	}
	j.f, j.seg, j.size = f, last, st.Size()
	return j, nil
}

// segments lists the segment indices present in dir, ascending.
func (j *Journal) segments() ([]uint64, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: journal dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if idx, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// repair walks the segments, truncating the first one holding a corrupt
// record at its last valid offset and deleting every segment after it.
func (j *Journal) repair(segs []uint64) error {
	for i, idx := range segs {
		path := filepath.Join(j.dir, segName(idx))
		valid, clean, err := scanSegmentFile(path, j.opt.MaxRecordBytes, nil)
		if err != nil {
			return err
		}
		if clean {
			continue
		}
		mTruncations.Inc()
		if valid < int64(len(segMagic)) {
			// Not even a valid header survived: the file is unusable for
			// appends, so drop it entirely.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("durable: drop headerless segment: %w", err)
			}
		} else if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("durable: truncate torn segment: %w", err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(filepath.Join(j.dir, segName(later))); err != nil {
				return fmt.Errorf("durable: drop post-corruption segment: %w", err)
			}
		}
		return nil
	}
	return nil
}

// Replay streams every surviving record, oldest first, to fn. It must be
// called before the first Append of this process (recovery order: read
// your state back, then start writing). A non-nil error from fn aborts
// the replay.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.appended {
		return errors.New("durable: Replay after Append")
	}
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		_, _, err := scanSegmentFile(filepath.Join(j.dir, segName(idx)), j.opt.MaxRecordBytes, func(p []byte) error {
			mReplayed.Inc()
			return fn(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// scanSegmentFile opens and scans one segment; see ScanSegment.
func scanSegmentFile(path string, maxRecord int, fn func([]byte) error) (valid int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("durable: open segment: %w", err)
	}
	defer f.Close()
	return ScanSegment(f, maxRecord, fn)
}

// ScanSegment reads a segment stream, invoking fn (when non-nil) for each
// record whose checksum passes. It returns the offset just past the last
// valid record and whether the segment ended cleanly at a record
// boundary; clean=false marks a torn or corrupt tail starting at offset
// valid. fn errors abort the scan and are returned verbatim; corruption
// is not an error — it is the condition replay exists to absorb.
//
// Exposed (rather than kept private) so the fuzzer can drive the exact
// parser the recovery path uses.
func ScanSegment(r io.Reader, maxRecord int, fn func([]byte) error) (valid int64, clean bool, err error) {
	if maxRecord <= 0 {
		maxRecord = 16 << 20
	}
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, false, nil // too short for a header: whole file is torn
	}
	if string(magic) != string(segMagic) {
		return 0, false, nil
	}
	valid = int64(len(segMagic))
	hdr := make([]byte, recHeaderBytes)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// EOF exactly at a boundary is a clean end; a partial header is
			// a torn write.
			return valid, err == io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > uint32(maxRecord) {
			return valid, false, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, false, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return valid, false, nil // bit flip
		}
		valid += recHeaderBytes + int64(n)
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, false, err
			}
		}
	}
}

// openSegmentLocked creates and syncs a fresh segment (header included)
// and makes it current. Caller holds j.mu (or is inside Open).
func (j *Journal) openSegmentLocked(idx uint64) error {
	path := filepath.Join(j.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("durable: segment header: %w", err)
	}
	if j.opt.Fsync != FsyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: segment header sync: %w", err)
		}
		// The new directory entry must survive too, or a crash strands
		// records in a file the next Open cannot find.
		if err := syncDir(j.dir); err != nil {
			f.Close()
			return err
		}
	}
	j.f, j.seg, j.size, j.pending = f, idx, int64(len(segMagic)), 0
	return nil
}

// Append writes one record. Under FsyncAlways the record is on stable
// storage when Append returns — that return is the acknowledgement the
// recovery invariants are stated in terms of.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("durable: empty record")
	}
	if len(payload) > j.opt.MaxRecordBytes {
		return fmt.Errorf("durable: record %d bytes exceeds max %d", len(payload), j.opt.MaxRecordBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	rec := int64(recHeaderBytes + len(payload))
	if j.size+rec > j.opt.SegmentBytes && j.size > int64(len(segMagic)) {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [recHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))

	// Crash injection: a torn write is "some prefix of the record reached
	// the disk". Writing header + half the payload then dying models the
	// worst case the scanner must absorb.
	if crashArmed(CrashMidAppend) {
		j.f.Write(hdr[:])
		j.f.Write(payload[:len(payload)/2])
		j.f.Sync()
		crash(CrashMidAppend)
	}
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	j.size += rec
	j.appended = true
	j.pending++
	mAppends.Inc()
	crash(CrashPreSync) // full write in the page cache, not yet stable
	switch j.opt.Fsync {
	case FsyncAlways:
		if err := j.syncLocked(); err != nil {
			return err
		}
	case FsyncBatch:
		if j.pending >= j.opt.BatchAppends {
			if err := j.syncLocked(); err != nil {
				return err
			}
		}
	}
	crash(CrashPostSync) // durable; the ack must survive from here on
	return nil
}

// Sync flushes outstanding appends to stable storage regardless of
// policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.opt.Fsync == FsyncNever {
		j.pending = 0
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	j.pending = 0
	mSyncs.Inc()
	return nil
}

// Rotate seals the current segment (with a final sync) and opens the
// next. It returns the index of the new current segment; everything
// strictly before it is immutable and may be dropped once a checkpoint
// covers it.
func (j *Journal) Rotate() (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, errors.New("durable: journal closed")
	}
	if err := j.rotateLocked(); err != nil {
		return 0, err
	}
	return j.seg, nil
}

func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("durable: close segment: %w", err)
	}
	mRotations.Inc()
	return j.openSegmentLocked(j.seg + 1)
}

// Segment returns the index of the open segment.
func (j *Journal) Segment() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seg
}

// DropBefore removes sealed segments with index < seg — the compaction
// step after a checkpoint has captured their effects.
func (j *Journal) DropBefore(seg uint64) error {
	j.mu.Lock()
	cur := j.seg
	j.mu.Unlock()
	if seg > cur {
		seg = cur // never drop the open segment
	}
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx >= seg {
			break
		}
		if err := os.Remove(filepath.Join(j.dir, segName(idx))); err != nil {
			return fmt.Errorf("durable: drop segment: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	j.closed = true
	return j.f.Close()
}

// syncDir fsyncs a directory so renames and creations within it are
// durable (no-op on platforms where directories cannot be opened).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: dir sync: %w", err)
	}
	return nil
}
