package durable

import (
	"errors"
	"sync"
)

// Deterministic crash injection (modeled on the PR 1 chaos harness, which
// injects faults into the probing plane; this one injects process death
// into the write path). A test arms one CrashPoint; the next time the
// write path reaches it, the package panics with ErrInjectedCrash —
// leaving the on-disk state exactly as a real crash at that instant
// would. The test recovers the panic, reopens the state directory, and
// asserts the recovery invariants.
//
// Points are one-shot: crashing disarms, so recovery code running in the
// same process does not crash again.

// CrashPoint names a deterministic crash site in the write path.
type CrashPoint string

const (
	// CrashMidAppend dies after a prefix of a journal record reached the
	// disk — the torn-write case.
	CrashMidAppend CrashPoint = "mid-append"
	// CrashPreSync dies after a full record write but before fsync: the
	// record may or may not survive, and was never acknowledged.
	CrashPreSync CrashPoint = "pre-sync"
	// CrashPostSync dies right after fsync: the record was (or was about
	// to be) acknowledged and must survive recovery.
	CrashPostSync CrashPoint = "post-sync"
	// CrashPreRename dies after the checkpoint temp file is written and
	// fsynced but before the atomic rename publishes it.
	CrashPreRename CrashPoint = "pre-rename"
	// CrashPostRename dies after the rename but before the manifest
	// update and old-generation cleanup.
	CrashPostRename CrashPoint = "post-rename"
)

// ErrInjectedCrash is the panic value raised at an armed crash point.
// Harness code recovers it with RecoverCrash.
var ErrInjectedCrash = errors.New("durable: injected crash")

var (
	crashMu    sync.Mutex
	crashPoint CrashPoint // "" = disarmed
)

// SetCrashPoint arms one crash point (one-shot). Tests only.
func SetCrashPoint(p CrashPoint) {
	crashMu.Lock()
	crashPoint = p
	crashMu.Unlock()
}

// ClearCrashPoint disarms injection.
func ClearCrashPoint() { SetCrashPoint("") }

// crashArmed reports whether p is armed without tripping it — for sites
// that must corrupt state before dying (torn writes).
func crashArmed(p CrashPoint) bool {
	crashMu.Lock()
	defer crashMu.Unlock()
	return crashPoint == p
}

// crash panics with ErrInjectedCrash if p is armed, disarming first.
func crash(p CrashPoint) {
	crashMu.Lock()
	if crashPoint != p {
		crashMu.Unlock()
		return
	}
	crashPoint = ""
	crashMu.Unlock()
	panic(ErrInjectedCrash)
}

// RecoverCrash absorbs an injected-crash panic; any other panic value is
// re-raised. Use in tests as:
//
//	func() {
//	    defer durable.RecoverCrash(&crashed)
//	    _ = journal.Append(rec) // armed point dies here
//	}()
func RecoverCrash(crashed *bool) {
	switch r := recover(); r {
	case nil:
	case ErrInjectedCrash:
		if crashed != nil {
			*crashed = true
		}
	default:
		panic(r)
	}
}
