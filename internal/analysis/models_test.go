package analysis

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func postModels(t *testing.T, url string, act ModelAction) (*http.Response, ModelActionResult) {
	t.Helper()
	body, err := json.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ModelActionResult
	json.NewDecoder(resp.Body).Decode(&res)
	return resp, res
}

// TestModelsEndpointLifecycle drives a whole rollout over HTTP: list the
// boot version, load a new one from the model dir, promote it, diagnose on
// it, then roll back.
func TestModelsEndpointLifecycle(t *testing.T) {
	srv, ts := newService(t)
	m, _ := fixture(t)

	dir := t.TempDir()
	srv.ModelDir = dir
	f, err := os.Create(filepath.Join(dir, "v2.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Baseline: the boot version is listed and active.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Active != "boot" || len(list.Versions) != 1 || !list.Versions[0].Active {
		t.Fatalf("baseline listing %+v", list)
	}

	// Load + promote + verify provenance of a served diagnosis.
	if r, res := postModels(t, ts.URL, ModelAction{Action: "load", File: "v2.gob"}); r.StatusCode != http.StatusOK || !res.OK {
		t.Fatalf("load: status %d, %+v", r.StatusCode, res)
	}
	if r, res := postModels(t, ts.URL, ModelAction{Action: "promote", Version: "v2"}); r.StatusCode != http.StatusOK || res.Active != "v2" {
		t.Fatalf("promote: status %d, %+v", r.StatusCode, res)
	}
	diag, err := srv.Diagnose(sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if diag.ModelVersion != "v2" {
		t.Fatalf("diagnosis attributed to %q, want v2", diag.ModelVersion)
	}

	// Rollback returns to boot.
	if r, res := postModels(t, ts.URL, ModelAction{Action: "rollback"}); r.StatusCode != http.StatusOK || res.Active != "boot" {
		t.Fatalf("rollback: status %d, %+v", r.StatusCode, res)
	}
}

func TestModelsEndpointRejectsBadActions(t *testing.T) {
	srv, ts := newService(t)

	// Loading is disabled without a configured model dir.
	if r, _ := postModels(t, ts.URL, ModelAction{Action: "load", File: "x.gob"}); r.StatusCode != http.StatusForbidden {
		t.Fatalf("load without model dir: status %d, want 403", r.StatusCode)
	}
	srv.ModelDir = t.TempDir()
	// Path traversal and absolute paths are rejected.
	for _, file := range []string{"../evil.gob", "/etc/passwd", ".hidden.gob", ""} {
		if r, _ := postModels(t, ts.URL, ModelAction{Action: "load", File: file}); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("load %q: status %d, want 400", file, r.StatusCode)
		}
	}
	if r, _ := postModels(t, ts.URL, ModelAction{Action: "promote", Version: "ghost"}); r.StatusCode != http.StatusBadRequest {
		t.Fatal("promoting an unknown version must 400")
	}
	if r, _ := postModels(t, ts.URL, ModelAction{Action: "promote"}); r.StatusCode != http.StatusBadRequest {
		t.Fatal("promote without a version must 400")
	}
	if r, _ := postModels(t, ts.URL, ModelAction{Action: "rollback"}); r.StatusCode != http.StatusBadRequest {
		t.Fatal("rollback with no history must 400")
	}
	if r, _ := postModels(t, ts.URL, ModelAction{Action: "frobnicate"}); r.StatusCode != http.StatusBadRequest {
		t.Fatal("unknown action must 400")
	}
	// Method checks.
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d", r.StatusCode)
	}
}
