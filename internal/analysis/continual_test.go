package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"diagnet/internal/continual"
)

// newContinualService wires a memory-only controller into a test server.
// Its TrainFunc fails immediately — these tests exercise the HTTP surface
// and the serving-path tap, not the training loop (internal/continual's
// loop tests own that).
func newContinualService(t *testing.T) (*Server, string, *continual.Controller, *continual.SampleStore) {
	t.Helper()
	s, ts := newService(t)
	store, err := continual.OpenStore(continual.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ctrl, err := continual.NewController(continual.Config{
		Engine: s.Engine(),
		Store:  store,
		TrainFunc: func(ctx context.Context) (*continual.TrainOutcome, error) {
			return nil, errors.New("stub trainer")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	s.AttachContinual(ctrl)
	return s, ts.URL, ctrl, store
}

func TestContinualRoutesNotFoundWhenDisabled(t *testing.T) {
	_, ts := newService(t)
	for _, path := range []string{"/v1/continual", "/v1/continual/retrain", "/v1/continual/samples"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without a controller: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestContinualStatusAndRetrain(t *testing.T) {
	_, url, ctrl, _ := newContinualService(t)

	var st continual.Status
	resp, err := http.Get(url + "/v1/continual")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != continual.StateIdle {
		t.Fatalf("fresh loop state %q, want idle", st.State)
	}

	// The loop is not running yet: a trigger is a state conflict.
	resp, err = http.Post(url+"/v1/continual/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("retrain on stopped loop: status %d, want 409", resp.StatusCode)
	}

	ctrl.Start()
	body := bytes.NewBufferString(`{"reason":"operator test"}`)
	resp, err = http.Post(url+"/v1/continual/retrain", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retrain trigger: status %d, want 202", resp.StatusCode)
	}
}

func TestContinualFeedbackIngest(t *testing.T) {
	_, url, _, store := newContinualService(t)
	req := sampleRequest(t)

	good := continual.Sample{
		Service: req.ServiceID, Landmarks: req.Landmarks,
		Features: req.Features, Family: 1, Cause: -1,
	}
	bad := good
	bad.Features = good.Features[:3] // width mismatch
	payload, _ := json.Marshal(FeedbackRequest{Samples: []continual.Sample{good, bad}})

	resp, err := http.Post(url+"/v1/continual/samples", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var fb FeedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fb.Ingested != 1 || len(fb.Errors) != 1 {
		t.Fatalf("feedback result %+v, want 1 ingested + 1 error", fb)
	}
	// Feedback samples land labeled: only they may grade a candidate.
	if store.LabeledLen() != 1 {
		t.Fatalf("labeled samples %d, want 1", store.LabeledLen())
	}

	resp, err = http.Post(url+"/v1/continual/samples", "application/json", bytes.NewBufferString(`{"samples":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty feedback: status %d, want 400", resp.StatusCode)
	}
}

func TestDiagnoseTapFeedsSampleStore(t *testing.T) {
	_, url, _, store := newContinualService(t)
	req := sampleRequest(t)
	payload, _ := json.Marshal(req)

	resp, err := http.Post(url+"/v1/diagnose", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var out DiagnoseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: status %d", resp.StatusCode)
	}
	// The served request became a pseudo-labeled (unlabeled) buffer entry.
	if store.Len() != 1 {
		t.Fatalf("store holds %d samples after one diagnosis, want 1", store.Len())
	}
	if store.LabeledLen() != 0 {
		t.Fatalf("pseudo-labeled tap produced %d labeled samples, want 0", store.LabeledLen())
	}
}
