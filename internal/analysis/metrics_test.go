package analysis

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"diagnet/internal/telemetry"
)

// fetchSnapshot GETs /v1/metrics and decodes it.
func fetchSnapshot(t *testing.T, baseURL string) telemetry.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics content type %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestMetricsEndpoint is the acceptance check for the telemetry tentpole:
// after serving traffic, GET /v1/metrics must report per-route latency
// percentiles and the per-stage Diagnose timings recorded by internal/core.
// The registry is process-wide and shared across tests, so everything is
// asserted as a delta against a baseline snapshot.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newService(t)
	before := fetchSnapshot(t, ts.URL)

	req := sampleRequest(t)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("diagnose status %d", resp.StatusCode)
		}
	}
	// One failing request must move the error counter.
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// And one batch request must feed the batch-size histogram.
	batch, err := json.Marshal(map[string]any{"requests": []any{req, req}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/diagnose-batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	after := fetchSnapshot(t, ts.URL)

	if d := after.Counters["http.diagnose.requests"] - before.Counters["http.diagnose.requests"]; d != n+1 {
		t.Fatalf("diagnose request delta %d, want %d", d, n+1)
	}
	if d := after.Counters["http.diagnose.errors"] - before.Counters["http.diagnose.errors"]; d != 1 {
		t.Fatalf("diagnose error delta %d, want 1", d)
	}

	// Per-route latency percentiles.
	lat := after.Histograms["http.diagnose.latency_ms"]
	if lat.Count-before.Histograms["http.diagnose.latency_ms"].Count != n+1 {
		t.Fatalf("latency observations %d -> %d, want +%d",
			before.Histograms["http.diagnose.latency_ms"].Count, lat.Count, n+1)
	}
	if !(lat.P50 > 0 && lat.P50 <= lat.P90 && lat.P90 <= lat.P99) {
		t.Fatalf("latency percentiles not ordered: p50=%v p90=%v p99=%v", lat.P50, lat.P90, lat.P99)
	}

	// Per-stage Diagnose timings from internal/core. Requests now run
	// through the serving engine's fused batched passes: normalize and
	// total are marked once per micro-batch (at least one pass must have
	// happened), while the per-row stages still mark every sample — the
	// batch endpoint contributes 2 more samples on top of the n singles.
	perPass := []string{
		"core.diagnose.stage.normalize_ms",
		"core.diagnose.total_ms",
	}
	for _, name := range perPass {
		d := after.Histograms[name].Count - before.Histograms[name].Count
		if d < 1 {
			t.Fatalf("stage %s observed %d times, want >= 1", name, d)
		}
	}
	perSample := []string{
		"core.diagnose.stage.forward_gradient_ms",
		"core.diagnose.stage.weighting_ms",
		"core.diagnose.stage.ensemble_ms",
	}
	for _, name := range perSample {
		d := after.Histograms[name].Count - before.Histograms[name].Count
		if d < n+2 {
			t.Fatalf("stage %s observed %d times, want >= %d", name, d, n+2)
		}
	}
	if d := after.Counters["core.diagnose.calls"] - before.Counters["core.diagnose.calls"]; d < n+2 {
		t.Fatalf("core.diagnose.calls delta %d, want >= %d", d, n+2)
	}

	// Batch sizes are recorded.
	if d := after.Histograms["http.diagnose_batch.size"].Count - before.Histograms["http.diagnose_batch.size"].Count; d != 1 {
		t.Fatalf("batch size delta %d, want 1", d)
	}
	// The in-flight gauge exists; while /v1/metrics itself is being served
	// it reads at least 1 (the metrics request is instrumented too).
	if got, ok := after.Gauges["http.inflight"]; !ok || got < 1 {
		t.Fatalf("http.inflight gauge = %v, present=%v", got, ok)
	}
}

func TestMetricsEndpointMethod(t *testing.T) {
	_, ts := newService(t)
	resp, err := http.Post(ts.URL+"/v1/metrics", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/metrics status %d", resp.StatusCode)
	}
}
