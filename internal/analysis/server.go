// Package analysis implements the paper's root-cause analysis service
// (Fig. 1): a central HTTP endpoint that owns the trained inference models
// and serves diagnoses to clients. Clients send their raw measurement
// vectors plus the landmark set they probed; the service answers with the
// coarse family and the ranked root-cause list, using the service's
// specialized model when one exists.
//
// Request execution is delegated to the serving engine
// (internal/serving): handlers validate, then submit into its batched,
// admission-controlled pipeline. Model lifecycle — versions, hot swap,
// rollback — is driven through the engine's registry and exposed on the
// /v1/models admin surface.
package analysis

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"diagnet/internal/continual"
	"diagnet/internal/core"
	"diagnet/internal/drift"
	"diagnet/internal/obs"
	"diagnet/internal/probe"
	"diagnet/internal/serving"
	"diagnet/internal/telemetry"
)

// maxRequestBytes bounds a request body (8 MiB — a full 1024-request
// batch is ≈1 MiB of JSON, so this is generous without letting one
// client exhaust memory).
const maxRequestBytes = 8 << 20

// recoverMiddleware turns handler panics into 500s instead of letting one
// bad request kill the whole analysis process. (The route span, which
// lives inside instrument, separately marks the trace as errored — the
// trace survives in the always-keep ring even when this log line scrolls
// away.)
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // deliberate connection abort, not a bug
				}
				slog.ErrorContext(r.Context(), "analysis: panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// decodeBody decodes a bounded JSON request body, mapping oversized
// payloads to 413 and malformed JSON to 400. It reports whether decoding
// succeeded (the error response is already written otherwise).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// DiagnoseRequest is the client's payload: the landmark regions probed (in
// feature order) and the raw measurement vector under that layout.
type DiagnoseRequest struct {
	// ServiceID selects a specialized model; -1 or unknown IDs fall back
	// to the general model.
	ServiceID int `json:"service_id"`
	// Landmarks lists the probed landmark regions in feature order.
	Landmarks []int `json:"landmarks"`
	// Features is the raw measurement vector (len(Landmarks)·5 + 5).
	Features []float64 `json:"features"`
	// TopK bounds the returned cause list (default 5).
	TopK int `json:"top_k,omitempty"`
}

// Cause is one ranked root-cause candidate.
type Cause struct {
	Feature int     `json:"feature"`
	Name    string  `json:"name"`
	Family  string  `json:"family"`
	Score   float64 `json:"score"`
}

// DiagnoseResponse is the service's answer.
type DiagnoseResponse struct {
	Family        string    `json:"family"`
	Coarse        []float64 `json:"coarse"`
	UnknownWeight float64   `json:"unknown_weight"`
	Causes        []Cause   `json:"causes"`
	ModelService  int       `json:"model_service"` // -1 = general model
	// ModelVersion names the registry version that served the request;
	// every response is attributable to exactly one version even during a
	// hot swap.
	ModelVersion string `json:"model_version,omitempty"`
}

// ModelInfo describes the loaded models.
type ModelInfo struct {
	KnownRegions    []int  `json:"known_regions"`
	TotalParams     int    `json:"total_params"`
	TrainableParams int    `json:"trainable_params"`
	Specialized     []int  `json:"specialized_services"`
	ActiveVersion   string `json:"active_version,omitempty"`
}

// Server is the analysis service. Requests flow through the serving
// engine's bounded queue, micro-batcher and worker pool; models live in
// the engine's versioned registry and are hot-swapped atomically (so
// SetSpecialized during live traffic is race-free, unlike the old
// per-server model map).
//
// The server feeds every coarse prediction into a drift detector
// (§II-A: networks and services evolve); once EnableDrift has frozen a
// reference window, /v1/drift reports whether the live prediction
// distribution still matches it.
type Server struct {
	engine *serving.Engine

	// ModelDir, when non-empty, is the only directory the POST /v1/models
	// "load" action may read model files from. Empty disables loading over
	// HTTP (versions can still be registered in-process).
	ModelDir string

	// ready gates GET /readyz: false until state recovery and the boot
	// promotion finish, and again once Close starts draining. Liveness
	// (/healthz) stays 204 throughout — the process is alive, just not
	// ready for traffic.
	ready atomic.Bool

	mu    sync.Mutex // guards drift
	drift *drift.Detector

	// loop, when set via AttachContinual, receives every served diagnosis
	// (pseudo-labeled sample + watchdog observation) and backs the
	// /v1/continual control surface.
	loop atomic.Pointer[continual.Controller]

	// profiler, when set via AttachProfiler, backs /v1/profiles and is
	// triggered by diagnetd's local p99 breach watcher.
	profiler atomic.Pointer[obs.Profiler]
}

// NewServer wraps a general model in a default-configured serving engine,
// registered and promoted as version "boot". Call Close to drain it.
func NewServer(general *core.Model) *Server {
	return NewServerWithConfig(general, serving.Config{})
}

// NewServerWithConfig is NewServer with explicit engine tuning.
func NewServerWithConfig(general *core.Model, cfg serving.Config) *Server {
	s := NewServerFromEngine(serving.New(cfg))
	if general != nil {
		if err := s.engine.Registry().AddModel("boot", general); err != nil {
			panic(err) // fresh registry: only a nil model can fail, and that's a caller bug
		}
		if err := s.engine.Registry().Promote("boot"); err != nil {
			panic(fmt.Sprintf("analysis: boot model failed warm-up: %v", err))
		}
		s.SetReady(true)
	}
	return s
}

// NewServerFromEngine wraps an existing engine (whose registry the caller
// has populated, e.g. from -model-dir). The server takes over Close. It
// starts NOT ready: the caller signals SetReady(true) once state
// recovery and the boot promotion are done — until then GET /readyz
// answers 503 so load balancers hold traffic back.
func NewServerFromEngine(e *serving.Engine) *Server {
	return &Server{
		engine: e,
		drift:  drift.NewDetector(int(probe.NumFamilies), drift.Config{}),
	}
}

// SetReady flips the /readyz gate (true once recovery + boot promotion
// are done; Close flips it back before draining).
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Ready reports the /readyz gate.
func (s *Server) Ready() bool { return s.ready.Load() }

// Engine exposes the serving engine (registry access, stats).
func (s *Server) Engine() *serving.Engine { return s.engine }

// Close drains the serving engine: queued and in-flight diagnoses finish,
// new submissions get ErrClosed. /readyz flips to 503 before the drain
// starts, so orchestrators stop routing while in-flight work finishes.
func (s *Server) Close() error {
	s.ready.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), serving.DrainTimeout)
	defer cancel()
	return s.engine.Close(ctx)
}

// EnableDrift freezes the drift reference: diagnoses so far form the
// baseline, later ones fill the live window.
func (s *Server) EnableDrift() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drift.Freeze()
}

// DriftStatus returns the detector's verdict.
func (s *Server) DriftStatus() drift.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drift.Status()
}

// AttachProfiler wires the anomaly-triggered profiler behind /v1/profiles
// (404 until attached).
func (s *Server) AttachProfiler(p *obs.Profiler) { s.profiler.Store(p) }

// Profiler returns the attached profiler (nil when profiling is off).
func (s *Server) Profiler() *obs.Profiler { return s.profiler.Load() }

// SetSpecialized registers a per-service model in the active version via
// the registry's copy-on-write snapshot swap — safe under concurrent
// Diagnose traffic.
func (s *Server) SetSpecialized(serviceID int, m *core.Model) error {
	return s.engine.Registry().SetSpecialized(serviceID, m)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the service's HTTP handler:
//
//	POST /v1/diagnose       → DiagnoseResponse
//	POST /v1/diagnose-batch → BatchResponse
//	GET  /v1/model          → ModelInfo
//	GET  /v1/models         → model registry listing (admin)
//	POST /v1/models         → load / promote / rollback (admin)
//	GET  /v1/continual      → continual-learning loop status (404 when disabled)
//	POST /v1/continual/retrain → trigger a retrain cycle
//	POST /v1/continual/samples → ingest labeled feedback samples
//	GET  /v1/metrics        → telemetry.Snapshot (JSON) or exposition via Accept
//	GET  /metrics           → OpenMetrics text exposition
//	GET  /v1/profiles       → anomaly profile captures (404 when disabled)
//	GET  /v1/traces         → kept-trace summaries (newest first)
//	GET  /v1/traces/{id}    → one trace as a span tree
//	GET  /healthz           → 204 (liveness)
//	GET  /readyz            → 204 ready / 503 recovering or draining
//
// Every /v1 route is instrumented with request/error counters and a
// latency histogram; the aggregate is served by /v1/metrics itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/diagnose", instrument("diagnose", s.handleDiagnose))
	mux.HandleFunc("/v1/diagnose-batch", instrument("diagnose_batch", s.handleBatch))
	mux.HandleFunc("/v1/model", instrument("model", s.handleModel))
	mux.HandleFunc("/v1/models", instrument("models", s.handleModels))
	mux.HandleFunc("/v1/drift", instrument("drift", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.DriftStatus())
	}))
	mux.HandleFunc("/v1/continual", instrument("continual", s.handleContinual))
	mux.HandleFunc("/v1/continual/retrain", instrument("continual_retrain", s.handleContinualRetrain))
	mux.HandleFunc("/v1/continual/samples", instrument("continual_samples", s.handleContinualSamples))
	mux.HandleFunc("/v1/metrics", instrument("metrics", handleMetrics))
	mux.HandleFunc("/v1/traces", instrument("traces", handleTraces))
	mux.HandleFunc("/v1/traces/", instrument("trace", handleTraceByID))
	// The scrape-standard exposition endpoint. Deliberately uninstrumented
	// (like the probes): the federator hits it every sweep interval and
	// would drown the request metrics; it counts its own scrapes instead.
	mux.Handle("/metrics", obs.ExpositionHandler(telemetry.Default()))
	profiles := func(w http.ResponseWriter, r *http.Request) {
		p := s.profiler.Load()
		if p == nil {
			http.Error(w, "profiling disabled", http.StatusNotFound)
			return
		}
		p.ServeHTTP(w, r)
	}
	mux.HandleFunc("/v1/profiles", profiles)
	mux.HandleFunc("/v1/profiles/", profiles)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	// Readiness is distinct from liveness: 503 until state recovery
	// completes, 204 while serving, 503 again while draining. Kept out of
	// the instrumented routes — probes fire every few seconds and would
	// drown the request metrics.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return recoverMiddleware(mux)
}

// BatchRequest carries several diagnosis requests at once (bulk
// post-mortem analysis of recorded incidents).
type BatchRequest struct {
	Requests []DiagnoseRequest `json:"requests"`
}

// BatchResponse answers a BatchRequest; Errors[i] is non-empty when
// Requests[i] was invalid (its Responses[i] is then null).
type BatchResponse struct {
	Responses []*DiagnoseResponse `json:"responses"`
	Errors    []string            `json:"errors"`
}

// maxBatch bounds a single batch request.
const maxBatch = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 || len(req.Requests) > maxBatch {
		http.Error(w, fmt.Sprintf("batch size must be in [1, %d]", maxBatch), http.StatusBadRequest)
		return
	}
	mBatchSize.Observe(float64(len(req.Requests)))
	resp := BatchResponse{
		Responses: make([]*DiagnoseResponse, len(req.Requests)),
		Errors:    make([]string, len(req.Requests)),
	}
	// Fan the batch out across the engine's workers: every sample becomes
	// one submission (blocking admission, so a big batch squeezes through
	// a small queue), the micro-batcher regroups them into fused passes,
	// and the indexed writes keep output order stable.
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := s.diagnose(r.Context(), &req.Requests[i], true)
			if err != nil {
				resp.Errors[i] = err.Error()
				return
			}
			resp.Responses[i] = out
		}(i)
	}
	wg.Wait()
	writeJSON(w, resp)
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req DiagnoseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.diagnose(r.Context(), &req, false)
	switch {
	case err == nil:
		writeJSON(w, resp)
	case errors.Is(err, serving.ErrQueueFull):
		// Admission control: tell the client when to come back instead of
		// letting the queue convoy collapse tail latency for everyone.
		w.Header().Set("Retry-After", retryAfterSeconds(s.engine.Config()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, serving.ErrClosed):
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The client's deadline expired while queued; 503 lets a proxy
		// distinguish "shed" from "bad request".
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// retryAfterSeconds suggests a backoff: one full batch wait rounded up to
// the next whole second (Retry-After has 1s resolution).
func retryAfterSeconds(cfg serving.Config) string {
	secs := int(cfg.BatchWait.Seconds()) + 1
	return strconv.Itoa(secs)
}

// Diagnose runs the pipeline on a request (also usable in-process). It
// blocks for queue space rather than shedding; HTTP handlers instead pass
// their request context and shed on overflow.
func (s *Server) Diagnose(req *DiagnoseRequest) (*DiagnoseResponse, error) {
	return s.diagnose(context.Background(), req, true)
}

// diagnose validates, submits to the serving engine and shapes the reply.
func (s *Server) diagnose(ctx context.Context, req *DiagnoseRequest, blocking bool) (*DiagnoseResponse, error) {
	if len(req.Landmarks) == 0 {
		return nil, fmt.Errorf("analysis: no landmarks in request")
	}
	layout := probe.NewLayout(req.Landmarks)
	if len(req.Features) != layout.NumFeatures() {
		return nil, fmt.Errorf("analysis: %d features for %d landmarks (want %d)",
			len(req.Features), len(req.Landmarks), layout.NumFeatures())
	}
	bundle, _, err := s.engine.Registry().ActiveBundle()
	if err != nil {
		return nil, err
	}
	// Regions outside the model's deployment layout are unrepresentable in
	// the ensemble's cause space — reject them as a client error instead of
	// panicking deep inside the re-indexing (found by FuzzHandleDiagnose).
	if err := layout.Validate(bundle.General.FullLayout); err != nil {
		return nil, fmt.Errorf("analysis: bad landmark list: %w", err)
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	if topK > layout.NumFeatures() {
		topK = layout.NumFeatures()
	}

	sub := &serving.Request{ServiceID: req.ServiceID, Layout: layout, Features: req.Features}
	var res *serving.Result
	if blocking {
		res, err = s.engine.SubmitWait(ctx, sub)
	} else {
		res, err = s.engine.Submit(ctx, sub)
	}
	if err != nil {
		return nil, err
	}
	diag := res.Diagnosis

	s.mu.Lock()
	s.drift.Observe(diag.Coarse)
	s.mu.Unlock()
	if ctrl := s.loop.Load(); ctrl != nil {
		s.feedContinual(ctrl, req, diag)
	}

	resp := &DiagnoseResponse{
		Family:        diag.Family.String(),
		Coarse:        diag.Coarse,
		UnknownWeight: diag.UnknownWeight,
		ModelService:  res.ModelService,
		ModelVersion:  res.Version,
	}
	for _, j := range diag.Ranked()[:topK] {
		resp.Causes = append(resp.Causes, Cause{
			Feature: j,
			Name:    layout.FeatureName(j),
			Family:  layout.FamilyOf(j).String(),
			Score:   diag.Final[j],
		})
	}
	return resp, nil
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	bundle, version, err := s.engine.Registry().ActiveBundle()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	total, trainable := bundle.General.ParamCount()
	info := ModelInfo{
		KnownRegions:    append([]int(nil), bundle.General.TrainLayout.Landmarks...),
		TotalParams:     total,
		TrainableParams: trainable,
		ActiveVersion:   version,
	}
	for id := range bundle.Specialized {
		info.Specialized = append(info.Specialized, id)
	}
	sort.Ints(info.Specialized)
	writeJSON(w, info)
}
