package analysis

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"diagnet/internal/core"
	"diagnet/internal/dataset"
	"diagnet/internal/forest"
	"diagnet/internal/netsim"
)

var (
	fixtureOnce sync.Once
	fixModel    *core.Model
	fixTest     *dataset.Dataset
)

// fixture trains one tiny model for the whole test package.
func fixture(t *testing.T) (*core.Model, *dataset.Dataset) {
	t.Helper()
	return buildFixture()
}

// buildFixture is fixture without a testing.T, usable from fuzz targets.
func buildFixture() (*core.Model, *dataset.Dataset) {
	fixtureOnce.Do(func() {
		w := netsim.NewWorld(netsim.Config{Seed: 1})
		d := dataset.Generate(dataset.GenConfig{
			World:          w,
			NominalSamples: 300,
			FaultSamples:   800,
			Seed:           21,
		})
		train, test := d.Split(0.8, netsim.HiddenLandmarks(), 23)
		cfg := core.DefaultConfig()
		cfg.Filters = 6
		cfg.Hidden = []int{24, 12}
		cfg.Epochs = 6
		cfg.Forest = forest.Config{Trees: 10, Tree: forest.TreeConfig{MaxDepth: 6}}
		known := []int{netsim.BEAU, netsim.AMST, netsim.SING, netsim.LOND, netsim.FRNK, netsim.TOKY, netsim.SYDN}
		fixModel = core.TrainGeneral(train, known, cfg).Model
		fixTest = test
	})
	return fixModel, fixTest
}

func newService(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	m, _ := fixture(t)
	s := NewServer(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func sampleRequest(t *testing.T) *DiagnoseRequest {
	t.Helper()
	_, test := fixture(t)
	deg := test.Degraded()
	if deg.Len() == 0 {
		t.Fatal("no degraded samples")
	}
	s := &deg.Samples[0]
	return &DiagnoseRequest{
		ServiceID: s.Service,
		Landmarks: test.Layout.Landmarks,
		Features:  s.Features,
	}
}

func TestDiagnoseOverHTTP(t *testing.T) {
	_, ts := newService(t)
	client := NewClient(ts.URL)
	resp, err := client.Diagnose(context.Background(), sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Causes) != 5 {
		t.Fatalf("%d causes, want 5", len(resp.Causes))
	}
	for i := 1; i < len(resp.Causes); i++ {
		if resp.Causes[i].Score > resp.Causes[i-1].Score {
			t.Fatal("causes not sorted by score")
		}
	}
	if resp.Causes[0].Name == "" || resp.Causes[0].Family == "" {
		t.Fatal("cause names missing")
	}
	if resp.ModelService != -1 {
		t.Fatal("no specialized model registered; expected general fallback")
	}
	if len(resp.Coarse) != 7 {
		t.Fatalf("coarse has %d classes", len(resp.Coarse))
	}
}

func TestDiagnoseUsesSpecializedModel(t *testing.T) {
	srv, ts := newService(t)
	m, _ := fixture(t)
	req := sampleRequest(t)
	srv.SetSpecialized(req.ServiceID, m) // same weights, but routing must switch
	client := NewClient(ts.URL)
	resp, err := client.Diagnose(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelService != req.ServiceID {
		t.Fatalf("served by model %d, want %d", resp.ModelService, req.ServiceID)
	}
}

func TestDiagnoseTopK(t *testing.T) {
	srv, _ := newService(t)
	req := sampleRequest(t)
	req.TopK = 3
	resp, err := srv.Diagnose(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Causes) != 3 {
		t.Fatalf("%d causes", len(resp.Causes))
	}
	// TopK larger than the feature space is clamped.
	req.TopK = 10000
	resp, err = srv.Diagnose(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Causes) != len(req.Features) {
		t.Fatalf("%d causes, want %d", len(resp.Causes), len(req.Features))
	}
}

func TestDiagnoseValidation(t *testing.T) {
	srv, ts := newService(t)
	// Mismatched feature count.
	if _, err := srv.Diagnose(&DiagnoseRequest{Landmarks: []int{0, 1}, Features: []float64{1}}); err == nil {
		t.Fatal("want feature-count error")
	}
	// No landmarks.
	if _, err := srv.Diagnose(&DiagnoseRequest{Features: make([]float64, 5)}); err == nil {
		t.Fatal("want no-landmark error")
	}
	// Bad JSON over HTTP.
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// GET is rejected.
	resp, _ = http.Get(ts.URL + "/v1/diagnose")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestModelInfoAndHealth(t *testing.T) {
	srv, ts := newService(t)
	m, _ := fixture(t)
	srv.SetSpecialized(3, m)
	client := NewClient(ts.URL)
	info, err := client.Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.KnownRegions) != 7 {
		t.Fatalf("known regions %v", info.KnownRegions)
	}
	if info.TotalParams == 0 {
		t.Fatal("no params reported")
	}
	if len(info.Specialized) != 1 || info.Specialized[0] != 3 {
		t.Fatalf("specialized %v", info.Specialized)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("health status %d", resp.StatusCode)
	}
}

func TestDriftEndpoint(t *testing.T) {
	srv, ts := newService(t)
	req := sampleRequest(t)
	// Build a reference, freeze, then add live observations.
	for i := 0; i < 30; i++ {
		if _, err := srv.Diagnose(req); err != nil {
			t.Fatal(err)
		}
	}
	srv.EnableDrift()
	status := srv.DriftStatus()
	if status.Drifted {
		t.Fatalf("no live data yet: %+v", status)
	}
	if status.SamplesRef != 30 {
		t.Fatalf("reference samples %d", status.SamplesRef)
	}
	// The HTTP endpoint serves the same JSON.
	resp, err := http.Get(ts.URL + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		SamplesRef int  `json:"SamplesRef"`
		Drifted    bool `json:"Drifted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.SamplesRef != 30 || got.Drifted {
		t.Fatalf("endpoint returned %+v", got)
	}
}

func TestDiagnoseBatch(t *testing.T) {
	_, ts := newService(t)
	client := NewClient(ts.URL)
	good := *sampleRequest(t)
	bad := DiagnoseRequest{Landmarks: []int{0}, Features: []float64{1}} // wrong width
	resp, err := client.DiagnoseBatch(context.Background(), []DiagnoseRequest{good, bad, good})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Responses) != 3 || len(resp.Errors) != 3 {
		t.Fatalf("batch shape %d/%d", len(resp.Responses), len(resp.Errors))
	}
	if resp.Responses[0] == nil || resp.Errors[0] != "" {
		t.Fatal("valid request failed in batch")
	}
	if resp.Responses[1] != nil || resp.Errors[1] == "" {
		t.Fatal("invalid request not reported")
	}
	if resp.Responses[2] == nil {
		t.Fatal("batch stopped after an error")
	}
	// Batch and single answers agree.
	single, err := client.Diagnose(context.Background(), &good)
	if err != nil {
		t.Fatal(err)
	}
	if single.Causes[0].Feature != resp.Responses[0].Causes[0].Feature {
		t.Fatal("batch diverges from single diagnosis")
	}
}

func TestDiagnoseBatchValidation(t *testing.T) {
	_, ts := newService(t)
	// Empty batch rejected.
	resp, err := http.Post(ts.URL+"/v1/diagnose-batch", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	// GET rejected.
	resp, _ = http.Get(ts.URL + "/v1/diagnose-batch")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestConcurrentDiagnoses(t *testing.T) {
	srv, _ := newService(t)
	req := sampleRequest(t)
	base, err := srv.Diagnose(req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Diagnose(req)
			if err != nil {
				errs <- err
				return
			}
			if resp.Causes[0].Feature != base.Causes[0].Feature {
				errs <- contextErr{}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type contextErr struct{}

func (contextErr) Error() string { return "concurrent diagnosis diverged" }
