package analysis

import (
	"fmt"
	"net/http"

	"diagnet/internal/obs"
	"diagnet/internal/telemetry"
	"diagnet/internal/tracing"
)

// Per-route HTTP metrics (DESIGN.md §10): request and error counters, a
// latency histogram, plus service-wide gauges. Resolved once at init so
// the serving path pays only atomic operations.
var (
	mInflight  = telemetry.Default().Gauge("http.inflight")
	mBatchSize = telemetry.Default().Histogram("http.diagnose_batch.size", telemetry.SizeBuckets)
)

// routeMetrics is one route's instrumentation bundle.
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

func newRouteMetrics(name string) *routeMetrics {
	return &routeMetrics{
		requests: telemetry.Default().Counter("http." + name + ".requests"),
		errors:   telemetry.Default().Counter("http." + name + ".errors"),
		latency:  telemetry.Default().Histogram("http."+name+".latency_ms", nil),
	}
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the route's counters, latency histogram
// and the shared in-flight gauge, and opens the route's trace span: an
// incoming W3C traceparent header continues the caller's trace, otherwise
// the route starts a fresh local root. The response echoes the trace ID in
// X-Trace-Id so a client can fetch its own trace from /v1/traces/{id}, and
// the route latency histogram captures the trace ID as its tail exemplar.
// Panics still propagate to the recover middleware; the deferred block
// keeps the gauge, counters and span consistent on that path too (a panic
// counts as an error).
func instrument(name string, next http.HandlerFunc) http.HandlerFunc {
	m := newRouteMetrics(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Inc()
		mInflight.Add(1)
		clock := telemetry.StartStages()
		ctx := tracing.Extract(r.Context(), r.Header)
		ctx, span := tracing.StartSpan(ctx, "http."+name)
		span.SetAttr("http.method", r.Method)
		span.SetAttr("http.path", r.URL.Path)
		if id := span.TraceID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		finished := false
		defer func() {
			mInflight.Add(-1)
			clock.DoneExemplar(m.latency, span.TraceID())
			if !finished || rec.status >= 400 {
				m.errors.Inc()
			}
			span.SetAttr("http.status", rec.status)
			switch {
			case !finished:
				span.SetError(fmt.Errorf("panic serving %s", r.URL.Path))
			case rec.status >= 500:
				span.SetError(fmt.Errorf("http %d", rec.status))
			}
			span.End()
		}()
		next(rec, r.WithContext(ctx))
		finished = true
	}
}

// handleMetrics serves the process-wide telemetry snapshot: per-route
// request counts and latency percentiles, per-stage Diagnose timings
// (recorded by internal/core), probing-plane and training metrics — one
// JSON document, cheap enough to scrape every few seconds. Clients that
// Accept the Prometheus/OpenMetrics text format get the exposition
// instead (same data, scrape-standard shape); the JSON default stays
// byte-compatible for diagnet-top and older tooling.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if obs.WantsExposition(r) {
		obs.ServeExposition(w, r, telemetry.Default())
		return
	}
	writeJSON(w, telemetry.Default().Snapshot())
}
