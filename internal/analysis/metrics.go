package analysis

import (
	"net/http"

	"diagnet/internal/telemetry"
)

// Per-route HTTP metrics (DESIGN.md §10): request and error counters, a
// latency histogram, plus service-wide gauges. Resolved once at init so
// the serving path pays only atomic operations.
var (
	mInflight  = telemetry.Default().Gauge("http.inflight")
	mBatchSize = telemetry.Default().Histogram("http.diagnose_batch.size", telemetry.SizeBuckets)
)

// routeMetrics is one route's instrumentation bundle.
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

func newRouteMetrics(name string) *routeMetrics {
	return &routeMetrics{
		requests: telemetry.Default().Counter("http." + name + ".requests"),
		errors:   telemetry.Default().Counter("http." + name + ".errors"),
		latency:  telemetry.Default().Histogram("http."+name+".latency_ms", nil),
	}
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the route's counters, latency histogram
// and the shared in-flight gauge. Panics still propagate to the recover
// middleware; the deferred block keeps the gauge and counters consistent
// on that path too (a panic counts as an error).
func instrument(name string, next http.HandlerFunc) http.HandlerFunc {
	m := newRouteMetrics(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Inc()
		mInflight.Add(1)
		clock := telemetry.StartStages()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		finished := false
		defer func() {
			mInflight.Add(-1)
			clock.Done(m.latency)
			if !finished || rec.status >= 400 {
				m.errors.Inc()
			}
		}()
		next(rec, r)
		finished = true
	}
}

// handleMetrics serves the process-wide telemetry snapshot: per-route
// request counts and latency percentiles, per-stage Diagnose timings
// (recorded by internal/core), probing-plane and training metrics — one
// JSON document, cheap enough to scrape every few seconds.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, telemetry.Default().Snapshot())
}
