package analysis

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"diagnet/internal/serving"
)

// TestReadyzLifecycle pins the 503 → 204 → 503 readiness lifecycle: not
// ready before recovery signals completion, ready while serving, not
// ready again once the drain starts. /healthz stays 204 throughout —
// liveness and readiness are different questions.
func TestReadyzLifecycle(t *testing.T) {
	m, _ := fixture(t)
	engine := serving.New(serving.Config{})
	if err := engine.Registry().AddModel("boot", m); err != nil {
		t.Fatal(err)
	}
	s := NewServerFromEngine(engine)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Phase 1: booted but recovery not yet signalled.
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("pre-recovery /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusNoContent {
		t.Fatalf("pre-recovery /healthz = %d, want 204", got)
	}

	// Phase 2: recovery done, boot version promoted.
	if err := engine.Registry().Promote("boot"); err != nil {
		t.Fatal(err)
	}
	s.SetReady(true)
	if got := status("/readyz"); got != http.StatusNoContent {
		t.Fatalf("ready /readyz = %d, want 204", got)
	}

	// Phase 3: draining.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusNoContent {
		t.Fatalf("draining /healthz = %d, want 204", got)
	}
}
