package analysis

import (
	"net/http"
	"strings"
	"time"

	"diagnet/internal/tracing"
)

// traceView is the JSON shape of GET /v1/traces/{id}: the trace header
// plus the span tree (children nested under parents, siblings by start
// time) instead of the recorder's flat span list.
type traceView struct {
	TraceID      string              `json:"trace_id"`
	Root         string              `json:"root"`
	Start        time.Time           `json:"start"`
	DurationMs   float64             `json:"duration_ms"`
	Error        bool                `json:"error"`
	Slow         bool                `json:"slow"`
	DroppedSpans int                 `json:"dropped_spans,omitempty"`
	Spans        []*tracing.SpanNode `json:"spans"`
}

// handleTraces serves GET /v1/traces, the kept-trace listing (newest
// first): slow and error traces from the always-keep ring plus the head
// sample of normal traffic. Each summary's trace_id is retrievable at
// /v1/traces/{id} — the target of the exemplar trace IDs that
// /v1/metrics attaches to its tail-latency lines.
func handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, tracing.Default().Traces())
}

// handleTraceByID serves GET /v1/traces/{id} as a span tree. When several
// local roots share the ID (an in-process agent calling an in-process
// server), the recorder has already merged them into one record.
func handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "trace id required", http.StatusBadRequest)
		return
	}
	rec, ok := tracing.Default().Trace(id)
	if !ok {
		http.Error(w, "trace not found (expired from the ring, or never sampled)", http.StatusNotFound)
		return
	}
	writeJSON(w, traceView{
		TraceID:      rec.TraceID,
		Root:         rec.Root,
		Start:        rec.Start,
		DurationMs:   rec.DurationMs,
		Error:        rec.Error,
		Slow:         rec.Slow,
		DroppedSpans: rec.DroppedSpans,
		Spans:        rec.Tree(),
	})
}
