package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/serving"
)

// TestDiagnoseShedsWith429 pins the HTTP admission contract: when the
// serving queue overflows, /v1/diagnose answers 429 with a Retry-After
// header instead of queueing unboundedly, and well-behaved requests still
// succeed. The server is sized down to a single slow-ish worker and a
// one-slot queue so a burst of concurrent posts reliably overflows it.
func TestDiagnoseShedsWith429(t *testing.T) {
	m, _ := fixture(t)
	s := NewServerWithConfig(m, serving.Config{
		BatchMax:   1,
		BatchWait:  time.Millisecond,
		QueueDepth: 1,
		Workers:    1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	body, err := json.Marshal(sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}

	var shed, ok429Header, served atomic.Int64
	deadline := time.Now().Add(10 * time.Second)
	for shed.Load() == 0 && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
					if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec >= 1 {
						ok429Header.Add(1)
					}
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
	}
	if shed.Load() == 0 {
		t.Fatal("32-way bursts against a 1-slot queue never shed a request")
	}
	if ok429Header.Load() != shed.Load() {
		t.Fatalf("%d sheds but only %d carried a whole-second Retry-After", shed.Load(), ok429Header.Load())
	}
	if served.Load() == 0 {
		t.Fatal("every request was shed; admission control must degrade, not fail closed")
	}
}

// TestDiagnoseAfterCloseReturns503 pins drain semantics at the HTTP layer:
// once the server is closed, diagnoses answer 503 (shutting down), not 400
// or a hang.
func TestDiagnoseAfterCloseReturns503(t *testing.T) {
	m, _ := fixture(t)
	s := NewServer(m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

// TestBatchEndpointUsesBlockingAdmission: a batch far larger than the
// queue must still complete fully — the batch handler fans out through
// blocking admission instead of shedding itself.
func TestBatchEndpointUsesBlockingAdmission(t *testing.T) {
	m, _ := fixture(t)
	s := NewServerWithConfig(m, serving.Config{
		BatchMax:   4,
		BatchWait:  time.Millisecond,
		QueueDepth: 2,
		Workers:    1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	good := *sampleRequest(t)
	reqs := make([]DiagnoseRequest, 16) // 8x the queue depth
	for i := range reqs {
		reqs[i] = good
	}
	resp, err := NewClient(ts.URL).DiagnoseBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Responses {
		if r == nil {
			t.Fatalf("batch item %d failed: %s", i, resp.Errors[i])
		}
	}
}
