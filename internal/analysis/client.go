package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"diagnet/internal/resilience"
	"diagnet/internal/tracing"
)

// maxErrorBody bounds how much of an error response body a client error
// message carries.
const maxErrorBody = 4 << 10

// Client talks to a remote analysis service. Transient failures (network
// errors, 5xx) are retried with capped exponential backoff; terminal ones
// (4xx) surface immediately with the server's error text attached.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry governs transient-failure handling; the zero value retries
	// twice with the resilience defaults. Set MaxAttempts to 1 to disable.
	Retry resilience.RetryPolicy
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
		Retry: resilience.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   200 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		},
	}
}

// do issues one JSON round trip with retries; payload may be nil for GET.
// On 2xx the body is decoded into out and drained so the keep-alive
// connection returns to the pool.
func (c *Client) do(ctx context.Context, method, path string, payload, out any) error {
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			return err
		}
	}
	return c.Retry.Do(ctx, func(ctx context.Context) error {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reader)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		// Propagate the caller's trace (W3C traceparent) so the server's
		// route span joins it; retried attempts re-inject the same parent.
		tracing.Inject(ctx, req.Header)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return err
		}
		defer func() {
			// Drain whatever the decoder left so the transport can
			// reuse the connection instead of tearing it down.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			// The server's error text is the diagnosis: keep a bounded
			// excerpt instead of discarding it. A Retry-After header (the
			// server's shed-and-come-back advice on 429, set since the
			// admission-control work) rides along so the retry loop sleeps
			// the advertised delay instead of its generic backoff.
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
			return fmt.Errorf("analysis: %s %s: %w", method, path,
				&resilience.HTTPStatusError{
					Code:       resp.StatusCode,
					Msg:        strings.TrimSpace(string(msg)),
					RetryAfter: ParseRetryAfter(resp.Header),
				})
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// ParseRetryAfter reads a Retry-After header as whole seconds (the only
// form this service emits; HTTP-date values are ignored). Absent,
// malformed or non-positive values yield zero — "no advice".
func ParseRetryAfter(h http.Header) time.Duration {
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Diagnose submits a measurement vector and returns the ranked causes.
func (c *Client) Diagnose(ctx context.Context, req *DiagnoseRequest) (*DiagnoseResponse, error) {
	var out DiagnoseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/diagnose", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DiagnoseBatch submits several requests at once.
func (c *Client) DiagnoseBatch(ctx context.Context, reqs []DiagnoseRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/diagnose-batch", BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Model fetches the service's model description.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	var info ModelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/model", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}
