package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// Client talks to a remote analysis service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{}}
}

// Diagnose submits a measurement vector and returns the ranked causes.
func (c *Client) Diagnose(ctx context.Context, req *DiagnoseRequest) (*DiagnoseResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/diagnose", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("analysis: diagnose status %d", resp.StatusCode)
	}
	var out DiagnoseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DiagnoseBatch submits several requests at once.
func (c *Client) DiagnoseBatch(ctx context.Context, reqs []DiagnoseRequest) (*BatchResponse, error) {
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/diagnose-batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("analysis: batch status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Model fetches the service's model description.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/model", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("analysis: model status %d", resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}
