package analysis

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"

	"diagnet/internal/serving"
)

// The /v1/models admin surface drives the model rollout lifecycle
// (DESIGN.md §11): list registered versions, load a new one from the
// configured model directory, promote it (atomic hot swap after warm-up),
// or roll back to the previously active version. It is served on the same
// listener as the data plane — deployments that need isolation should
// front it with their proxy's ACLs.

// ModelsResponse answers GET /v1/models.
type ModelsResponse struct {
	Active   string                `json:"active"`
	Versions []serving.VersionInfo `json:"versions"`
}

// ModelAction is the POST /v1/models payload.
type ModelAction struct {
	// Action is one of "load", "promote", "rollback".
	Action string `json:"action"`
	// Version names the version to load or promote (ignored by rollback).
	Version string `json:"version,omitempty"`
	// File is the model/bundle file for "load", resolved inside the
	// server's ModelDir; path separators are rejected.
	File string `json:"file,omitempty"`
}

// ModelActionResult reports the action's outcome.
type ModelActionResult struct {
	OK     bool   `json:"ok"`
	Active string `json:"active"`
	Detail string `json:"detail,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	reg := s.engine.Registry()
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, ModelsResponse{Active: reg.Active(), Versions: reg.Versions()})
	case http.MethodPost:
		var act ModelAction
		if !decodeBody(w, r, &act) {
			return
		}
		if err := s.applyModelAction(&act); err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "disabled") {
				status = http.StatusForbidden
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, ModelActionResult{OK: true, Active: reg.Active(), Detail: act.Action})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// applyModelAction executes one admin action against the registry.
func (s *Server) applyModelAction(act *ModelAction) error {
	reg := s.engine.Registry()
	switch act.Action {
	case "load":
		if s.ModelDir == "" {
			return fmt.Errorf("analysis: model loading over HTTP is disabled (no model dir configured)")
		}
		// Only bare file names inside ModelDir: no traversal, no absolute
		// paths, nothing outside the operator-chosen directory.
		if act.File == "" || act.File != filepath.Base(act.File) || strings.HasPrefix(act.File, ".") {
			return fmt.Errorf("analysis: file must be a bare name inside the model dir")
		}
		version := act.Version
		if version == "" {
			version = strings.TrimSuffix(act.File, ".gob")
		}
		return reg.LoadFile(version, filepath.Join(s.ModelDir, act.File))
	case "promote":
		if act.Version == "" {
			return fmt.Errorf("analysis: promote needs a version")
		}
		return reg.Promote(act.Version)
	case "rollback":
		_, err := reg.Rollback()
		return err
	default:
		return fmt.Errorf("analysis: unknown action %q (want load, promote or rollback)", act.Action)
	}
}
