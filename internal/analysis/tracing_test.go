package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"diagnet/internal/tracing"
)

// traceTreeJSON mirrors the /v1/traces/{id} response for decoding.
type traceTreeJSON struct {
	TraceID string          `json:"trace_id"`
	Spans   []traceNodeJSON `json:"spans"`
}

type traceNodeJSON struct {
	Name     string          `json:"name"`
	Children []traceNodeJSON `json:"children"`
}

// findChain reports whether the forest contains the given span-name chain
// as nested descendants (each link a child, grandchild, ... of the
// previous — intermediate generations are allowed).
func findChain(nodes []traceNodeJSON, chain []string) bool {
	if len(chain) == 0 {
		return true
	}
	for _, n := range nodes {
		rest := chain
		if n.Name == chain[0] {
			rest = chain[1:]
			if len(rest) == 0 {
				return true
			}
		}
		if findChain(n.Children, rest) {
			return true
		}
	}
	return false
}

// TestTraceEndToEnd drives one diagnosis with a caller-supplied W3C
// traceparent and asserts the whole request path is retrievable from
// /v1/traces/{id} as one nested trace: route → queue wait → micro-batch →
// core pipeline → pipeline stages.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newService(t)

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, err := json.Marshal(sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/diagnose", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id = %q, want %q (the caller's trace must continue)", got, traceID)
	}

	// The trace finalizes when the route span ends, which races the
	// response write by a hair — poll briefly.
	var tree traceTreeJSON
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			err = json.NewDecoder(r.Body).Decode(&tree)
			r.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never became retrievable (last status %d)", traceID, r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tree.TraceID != traceID {
		t.Fatalf("trace id %q, want %q", tree.TraceID, traceID)
	}
	chain := []string{"http.diagnose", "serving.queue_wait", "serving.batch", "core.diagnose"}
	if !findChain(tree.Spans, chain) {
		raw, _ := json.MarshalIndent(tree, "", "  ")
		t.Fatalf("trace lacks the nested chain %v:\n%s", chain, raw)
	}
	if !findChain(tree.Spans, append(chain, "core.stage.ensemble")) {
		raw, _ := json.MarshalIndent(tree, "", "  ")
		t.Fatalf("core.diagnose span lacks stage children:\n%s", raw)
	}
}

// TestTraceExemplarLoop closes the metrics↔traces loop: after traffic,
// the diagnose route's latency histogram exposes a tail exemplar whose
// trace ID resolves against the trace store.
func TestTraceExemplarLoop(t *testing.T) {
	_, ts := newService(t)
	client := NewClient(ts.URL)
	for i := 0; i < 3; i++ {
		if _, err := client.Diagnose(context.Background(), sampleRequest(t)); err != nil {
			t.Fatal(err)
		}
	}

	var snap struct {
		Histograms map[string]struct {
			Exemplar *struct {
				TraceID string `json:"trace_id"`
			} `json:"exemplar"`
		} `json:"histograms"`
	}
	r, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	h, ok := snap.Histograms["http.diagnose.latency_ms"]
	if !ok {
		t.Fatal("no http.diagnose.latency_ms histogram in /v1/metrics")
	}
	if h.Exemplar == nil || h.Exemplar.TraceID == "" {
		t.Fatal("diagnose latency histogram has no trace exemplar")
	}
	// The exemplar must point at a retrievable trace (it can only have
	// been evicted if the ring wrapped, which 3 requests cannot do).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := tracing.Default().Trace(h.Exemplar.TraceID); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("exemplar trace %s not retrievable", h.Exemplar.TraceID)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
