package analysis

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"diagnet/internal/tracing"
)

// traceTreeJSON mirrors the /v1/traces/{id} response for decoding.
type traceTreeJSON struct {
	TraceID string          `json:"trace_id"`
	Spans   []traceNodeJSON `json:"spans"`
}

type traceNodeJSON struct {
	Name     string          `json:"name"`
	Children []traceNodeJSON `json:"children"`
}

// findChain reports whether the forest contains the given span-name chain
// as nested descendants (each link a child, grandchild, ... of the
// previous — intermediate generations are allowed).
func findChain(nodes []traceNodeJSON, chain []string) bool {
	if len(chain) == 0 {
		return true
	}
	for _, n := range nodes {
		rest := chain
		if n.Name == chain[0] {
			rest = chain[1:]
			if len(rest) == 0 {
				return true
			}
		}
		if findChain(n.Children, rest) {
			return true
		}
	}
	return false
}

// TestTraceEndToEnd drives one diagnosis with a caller-supplied W3C
// traceparent and asserts the whole request path is retrievable from
// /v1/traces/{id} as one nested trace: route → queue wait → micro-batch →
// core pipeline → pipeline stages.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newService(t)

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, err := json.Marshal(sampleRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/diagnose", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id = %q, want %q (the caller's trace must continue)", got, traceID)
	}

	// The trace finalizes when the route span ends, which races the
	// response write by a hair — poll briefly.
	var tree traceTreeJSON
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			err = json.NewDecoder(r.Body).Decode(&tree)
			r.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never became retrievable (last status %d)", traceID, r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tree.TraceID != traceID {
		t.Fatalf("trace id %q, want %q", tree.TraceID, traceID)
	}
	chain := []string{"http.diagnose", "serving.queue_wait", "serving.batch", "core.diagnose"}
	if !findChain(tree.Spans, chain) {
		raw, _ := json.MarshalIndent(tree, "", "  ")
		t.Fatalf("trace lacks the nested chain %v:\n%s", chain, raw)
	}
	if !findChain(tree.Spans, append(chain, "core.stage.ensemble")) {
		raw, _ := json.MarshalIndent(tree, "", "  ")
		t.Fatalf("core.diagnose span lacks stage children:\n%s", raw)
	}
}

// TestTraceExemplarLoop closes the metrics↔traces loop: after traffic,
// the diagnose route's latency histogram exposes a tail exemplar whose
// trace ID resolves against the trace store. The histogram and the trace
// ring are process globals shared with every other test in this package,
// so the current tail exemplar can predate this test — and its trace may
// have been legitimately evicted by the flood of traces those tests
// produced. The loop guarantee is therefore only checkable when the
// exemplar is one of this test's own requests (whose traces three
// requests cannot have evicted).
func TestTraceExemplarLoop(t *testing.T) {
	_, ts := newService(t)

	ours := make(map[string]bool)
	drive := func() {
		req, err := json.Marshal(sampleRequest(t))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if id := resp.Header.Get("X-Trace-Id"); id != "" {
			ours[id] = true
		}
	}

	exemplarID := func() string {
		var snap struct {
			Histograms map[string]struct {
				Exemplar *struct {
					TraceID string `json:"trace_id"`
				} `json:"exemplar"`
			} `json:"histograms"`
		}
		r, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		h, ok := snap.Histograms["http.diagnose.latency_ms"]
		if !ok {
			t.Fatal("no http.diagnose.latency_ms histogram in /v1/metrics")
		}
		if h.Exemplar == nil || h.Exemplar.TraceID == "" {
			t.Fatal("diagnose latency histogram has no trace exemplar")
		}
		return h.Exemplar.TraceID
	}

	deadline := time.Now().Add(2 * time.Second)
	stale := ""
	for time.Now().Before(deadline) {
		drive()
		id := exemplarID()
		if !ours[id] {
			stale = id // predates this test; keep driving — a tail
			continue   // observation of ours may displace it
		}
		if _, ok := tracing.Default().Trace(id); ok {
			return
		}
		t.Fatalf("exemplar trace %s from this test not retrievable", id)
	}
	if _, ok := tracing.Default().Trace(stale); ok {
		return // stale but still resolvable: the loop holds
	}
	t.Skipf("tail exemplar %s predates this test and was evicted by earlier tests' traffic; loop not checkable", stale)
}
