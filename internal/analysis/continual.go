// Continual-learning surface: the analysis server taps every served
// diagnosis into the continual controller (pseudo-labeled sample ingest +
// regression-watchdog feed) and exposes the loop's control plane:
//
//	GET  /v1/continual          → continual.Status (state machine, last cycle)
//	POST /v1/continual/retrain  → trigger a retrain cycle now
//	POST /v1/continual/samples  → ingest ground-truth labeled feedback
//
// The routes answer 404 until AttachContinual is called (daemon started
// without -continual).
package analysis

import (
	"fmt"
	"log/slog"
	"net/http"

	"diagnet/internal/continual"
	"diagnet/internal/core"
)

// AttachContinual wires a continual-learning controller into the server:
// the /v1/continual routes come alive, and every successful diagnosis is
// tapped into the controller as a pseudo-labeled training sample plus a
// watchdog observation. Call before serving traffic.
func (s *Server) AttachContinual(ctrl *continual.Controller) {
	s.loop.Store(ctrl)
}

// Continual returns the attached controller (nil when the continual plane
// is disabled).
func (s *Server) Continual() *continual.Controller {
	return s.loop.Load()
}

// ResetDrift re-arms the request-path drift detector: the live window and
// the frozen reference are discarded, and a new reference auto-freezes
// once a full window of post-reset diagnoses has been observed. The
// continual controller calls this right after a promotion — the old
// baseline describes the old model's prediction distribution and would
// read the candidate's legitimate improvements as drift.
func (s *Server) ResetDrift() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drift.Reset(0)
}

// feedContinual taps one served diagnosis into the continual plane. The
// coarse distribution feeds the post-promotion regression watchdog; the
// raw request becomes a pseudo-labeled sample in the live training buffer
// (Family = the served prediction, Cause unknown — ground truth arrives
// separately via POST /v1/continual/samples). Ingest failures are logged,
// never surfaced: the client's diagnosis already succeeded.
func (s *Server) feedContinual(ctrl *continual.Controller, req *DiagnoseRequest, diag *core.Diagnosis) {
	ctrl.ObserveServing(diag.Coarse)
	err := ctrl.Ingest(continual.Sample{
		Service:   req.ServiceID,
		Landmarks: req.Landmarks,
		Features:  req.Features,
		Family:    int(diag.Family),
		Cause:     -1,
	})
	if err != nil {
		slog.Warn("analysis: continual sample ingest failed", "err", err)
	}
}

// continualCtl fetches the attached controller, answering 404 when the
// continual plane is not enabled on this daemon.
func (s *Server) continualCtl(w http.ResponseWriter) *continual.Controller {
	ctrl := s.loop.Load()
	if ctrl == nil {
		http.Error(w, "continual learning not enabled", http.StatusNotFound)
	}
	return ctrl
}

func (s *Server) handleContinual(w http.ResponseWriter, r *http.Request) {
	ctrl := s.continualCtl(w)
	if ctrl == nil {
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, ctrl.Status())
}

// RetrainRequest optionally names why the operator forced a cycle; the
// reason lands in the transition journal.
type RetrainRequest struct {
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleContinualRetrain(w http.ResponseWriter, r *http.Request) {
	ctrl := s.continualCtl(w)
	if ctrl == nil {
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RetrainRequest
	if r.ContentLength != 0 && !decodeBody(w, r, &req) {
		return
	}
	reason := req.Reason
	if reason == "" {
		reason = "manual trigger (HTTP)"
	}
	if err := ctrl.TriggerRetrain(reason); err != nil {
		// Mid-cycle or not running: a state conflict, not a bad request.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"status": "retrain triggered", "reason": reason})
}

// FeedbackRequest carries ground-truth labeled samples — incident
// resolutions, operator annotations — into the live training buffer.
// Every sample on this endpoint is stored as labeled: it is the
// ground-truth channel, and only labeled samples may grade a candidate
// (pseudo-labels never judge the model that produced them).
type FeedbackRequest struct {
	Samples []continual.Sample `json:"samples"`
}

// FeedbackResponse reports per-sample ingest results.
type FeedbackResponse struct {
	Ingested int      `json:"ingested"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) handleContinualSamples(w http.ResponseWriter, r *http.Request) {
	ctrl := s.continualCtl(w)
	if ctrl == nil {
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req FeedbackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Samples) == 0 || len(req.Samples) > maxBatch {
		http.Error(w, fmt.Sprintf("sample count must be in [1, %d]", maxBatch), http.StatusBadRequest)
		return
	}
	var resp FeedbackResponse
	for i := range req.Samples {
		smp := req.Samples[i]
		smp.Labeled = true
		if err := ctrl.Ingest(smp); err != nil {
			resp.Errors = append(resp.Errors, fmt.Sprintf("sample %d: %v", i, err))
			continue
		}
		resp.Ingested++
	}
	writeJSON(w, resp)
}
