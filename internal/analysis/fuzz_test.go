package analysis

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzHandler builds one Server handler per fuzz target (no TCP listener,
// so executions are cheap; the model itself is the cached fixture) and
// closes it with the target so its engine workers don't outlive the run —
// the package's leak check would flag them.
func fuzzHandler(f *testing.F) http.Handler {
	m, _ := buildFixture()
	srv := NewServer(m)
	f.Cleanup(func() { srv.Close() })
	return srv.Handler()
}

// FuzzHandleDiagnose drives the single-diagnosis JSON decode path directly
// through the handler: any body must yield a 200 or a 400, never a panic or
// a 500. This is the target that caught the unknown-landmark-region panic
// now guarded by probe.Layout.Validate.
func FuzzHandleDiagnose(f *testing.F) {
	f.Add(`{"service_id":0,"landmarks":[0],"features":[1,2,3,4,5,6,7,8,9,10]}`)
	f.Add(`{"landmarks":[99],"features":[1,2,3,4,5,6,7,8,9,10]}`)                 // unknown region
	f.Add(`{"landmarks":[0,0],"features":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]}`) // duplicate
	f.Add(`{"landmarks":[-1],"features":[1,2,3,4,5,6,7,8,9,10]}`)
	f.Add(`{"service_id":9999,"landmarks":[1,2],"features":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}`)
	f.Add(`{"top_k":-3,"landmarks":[0],"features":[1,2,3,4,5,6,7,8,9,10]}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(``)

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/diagnose", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzHandleBatch does the same for the batch decode path, which has its
// own envelope parsing and per-item error reporting.
func FuzzHandleBatch(f *testing.F) {
	f.Add(`{"requests":[{"landmarks":[0],"features":[1,2,3,4,5,6,7,8,9,10]}]}`)
	f.Add(`{"requests":[]}`)
	f.Add(`{"requests":null}`)
	f.Add(`{"requests":[{"landmarks":[99],"features":[1,2,3,4,5,6,7,8,9,10]},{"landmarks":[0],"features":[1]}]}`)
	f.Add(`{"requests":[null]}`)
	f.Add(`{"requests": 7}`)
	f.Add(`{`)

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/diagnose-batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
	})
}

// FuzzDiagnoseHTTP ensures arbitrary request bodies never crash the
// analysis service — they must yield 400s (or a 200 for the valid seed).
func FuzzDiagnoseHTTP(f *testing.F) {
	f.Add(`{"service_id":0,"landmarks":[0],"features":[1,2,3,4,5,6,7,8,9,10]}`)
	f.Add(`{"landmarks":[],"features":[]}`)
	f.Add(`{`)
	f.Add(`{"landmarks":[0,1,2],"features":[1]}`)
	f.Add(`{"service_id":-5,"landmarks":[99],"features":null}`)

	// One shared tiny model for all fuzz executions; the Server (not just
	// the listener) is closed so its engine drains.
	var (
		ts  *httptest.Server
		srv *Server
	)
	f.Cleanup(func() {
		if ts != nil {
			ts.Close()
		}
		if srv != nil {
			srv.Close()
		}
	})

	f.Fuzz(func(t *testing.T, body string) {
		if ts == nil {
			m, _ := buildFixture()
			srv = NewServer(m)
			ts = httptest.NewServer(srv.Handler())
		}
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(body))
		if err != nil {
			t.Skip("transport error")
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", resp.StatusCode, body)
		}
	})
}
