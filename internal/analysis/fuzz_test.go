package analysis

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDiagnoseHTTP ensures arbitrary request bodies never crash the
// analysis service — they must yield 400s (or a 200 for the valid seed).
func FuzzDiagnoseHTTP(f *testing.F) {
	f.Add(`{"service_id":0,"landmarks":[0],"features":[1,2,3,4,5,6,7,8,9,10]}`)
	f.Add(`{"landmarks":[],"features":[]}`)
	f.Add(`{`)
	f.Add(`{"landmarks":[0,1,2],"features":[1]}`)
	f.Add(`{"service_id":-5,"landmarks":[99],"features":null}`)

	// One shared tiny model for all fuzz executions.
	var ts *httptest.Server
	f.Cleanup(func() {
		if ts != nil {
			ts.Close()
		}
	})

	f.Fuzz(func(t *testing.T, body string) {
		if ts == nil {
			m, _ := buildFixture()
			ts = httptest.NewServer(NewServer(m).Handler())
		}
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(body))
		if err != nil {
			t.Skip("transport error")
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", resp.StatusCode, body)
		}
	})
}
