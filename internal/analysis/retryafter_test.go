package analysis

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/resilience"
)

// retryAfterServer answers 429 + Retry-After for the first n requests,
// then serves a trivial diagnosis-shaped JSON body.
func retryAfterServer(t *testing.T, n int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"family":"nominal"}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestClientHonorsRetryAfter pins the 429 contract: the server has
// advertised Retry-After whole seconds since the admission-control work,
// and the client must sleep exactly that long (not its generic exponential
// backoff) before the next attempt.
func TestClientHonorsRetryAfter(t *testing.T) {
	srv, hits := retryAfterServer(t, 1, "3")
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.Retry = resilience.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    10 * time.Second,
		Jitter:      -1, // negative clamps to 0: the schedule is exact
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if _, err := c.Diagnose(context.Background(), &DiagnoseRequest{}); err != nil {
		t.Fatalf("Diagnose after 429: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (one shed, one served)", got)
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Fatalf("slept %v, want exactly [3s] (the advertised Retry-After)", slept)
	}
}

// TestClientCapsRetryAfter pins the cap: an absurd advertised delay is
// clamped to the policy's MaxDelay instead of parking the client.
func TestClientCapsRetryAfter(t *testing.T) {
	srv, _ := retryAfterServer(t, 1, "3600")
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.Retry = resilience.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if _, err := c.Diagnose(context.Background(), &DiagnoseRequest{}); err != nil {
		t.Fatalf("Diagnose after capped 429: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly [2s] (MaxDelay cap)", slept)
	}
}

// TestClientGenericBackoffWithoutRetryAfter pins the fallback: a 429
// without advice still uses the policy's own schedule.
func TestClientGenericBackoffWithoutRetryAfter(t *testing.T) {
	srv, _ := retryAfterServer(t, 1, "")
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.Retry = resilience.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
		Jitter:      -1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if _, err := c.Diagnose(context.Background(), &DiagnoseRequest{}); err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want exactly [50ms] (BaseDelay)", slept)
	}
}

// TestParseRetryAfter pins the header parser's edges.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		val  string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"-4", 0},
		{"2", 2 * time.Second},
		{" 7 ", 7 * time.Second},
		{"soon", 0},
		{"1.5", 0}, // fractional seconds are not in the header grammar
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.val != "" {
			h.Set("Retry-After", tc.val)
		}
		if got := ParseRetryAfter(h); got != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.val, got, tc.want)
		}
	}
}
