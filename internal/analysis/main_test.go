package analysis

import (
	"testing"

	"diagnet/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// servers and their engines must drain fully on Close.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
