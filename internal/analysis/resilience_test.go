package analysis

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/resilience"
)

// noWait removes real backoff sleeps from client retry tests.
func noWait(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestRecoverMiddlewareTurnsPanicInto500(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatalf("panic killed the connection: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	// The server must keep serving after a panic.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestRequestBodyLimit(t *testing.T) {
	_, ts := newService(t)
	huge := `{"landmarks":[` + strings.Repeat("1,", maxRequestBytes/2) + `1]}`
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestClientRetriesTransientServerErrors(t *testing.T) {
	m, _ := buildFixture()
	srv := NewServer(m)
	defer srv.Close()
	inner := srv.Handler()
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	client := NewClient(ts.URL)
	client.Retry.Sleep = noWait
	resp, err := client.Diagnose(context.Background(), sampleRequest(t))
	if err != nil {
		t.Fatalf("retry did not absorb 503s: %v", err)
	}
	if len(resp.Causes) == 0 {
		t.Fatal("empty diagnosis")
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3 (2 failures + success)", calls.Load())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "analysis: no landmarks in request", http.StatusBadRequest)
	}))
	defer ts.Close()
	client := NewClient(ts.URL)
	client.Retry.Sleep = noWait
	_, err := client.Diagnose(context.Background(), &DiagnoseRequest{})
	if err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
	// The server's error text must survive into the client error.
	if !strings.Contains(err.Error(), "no landmarks in request") {
		t.Fatalf("server error text lost: %v", err)
	}
	var statusErr *resilience.HTTPStatusError
	if !errors.As(err, &statusErr) || statusErr.Code != http.StatusBadRequest {
		t.Fatalf("no typed status in %v", err)
	}
}

func TestClientReusesKeepAliveConnections(t *testing.T) {
	m, _ := buildFixture()
	srv := NewServer(m)
	defer srv.Close()
	ts := httptest.NewUnstartedServer(srv.Handler())
	var opened atomic.Int64
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			opened.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	client := NewClient(ts.URL)
	req := sampleRequest(t)
	for i := 0; i < 5; i++ {
		if _, err := client.Diagnose(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if opened.Load() != 1 {
		t.Fatalf("%d connections for 5 sequential requests; bodies not drained?", opened.Load())
	}
}
