package forest

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// goldenTraining builds a deterministic synthetic training set: 3 causes
// over 6 features, each cause shifting two features.
func goldenTraining() (x [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(41))
	const causes, features, perCause = 3, 6, 60
	for c := 0; c < causes; c++ {
		for i := 0; i < perCause; i++ {
			row := make([]float64, features)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			row[2*c] += 3
			row[2*c+1] -= 3
			x = append(x, row)
			labels = append(labels, c)
		}
	}
	return x, labels
}

// goldenProbes are the inputs whose scores the golden file pins down.
func goldenProbes() [][]float64 {
	rng := rand.New(rand.NewSource(43))
	probes := make([][]float64, 8)
	for i := range probes {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64() * 2
		}
		probes[i] = row
	}
	return probes
}

func goldenForest() *Extensible {
	x, labels := goldenTraining()
	return FitExtensible(x, labels, 3, Config{Trees: 7, Tree: TreeConfig{MaxDepth: 5}, Seed: 5})
}

type forestExpect struct {
	Trees   int         `json:"trees"`
	Causes  int         `json:"causes"`
	Scores  [][]float64 `json:"scores"`
	Unknown [][]float64 `json:"unknown"`
}

func expectOf(e *Extensible) forestExpect {
	exp := forestExpect{Trees: e.Forest().Trees(), Causes: e.Causes()}
	for _, p := range goldenProbes() {
		exp.Scores = append(exp.Scores, e.Scores(p))
		exp.Unknown = append(exp.Unknown, e.UnknownScore(p))
	}
	return exp
}

// TestGoldenExtensibleFormat guards the gob wire format and the fitted
// ensemble's behavior: the committed fixture must still load, score exactly
// as recorded, and — since the wire struct contains no maps — re-encode to
// the very same bytes. Refresh both files with `go test -run Golden -update`
// after an intentional format change.
func TestGoldenExtensibleFormat(t *testing.T) {
	gobPath := filepath.Join("testdata", "extensible.golden.gob")
	jsonPath := filepath.Join("testdata", "extensible.golden.json")

	if *update {
		e := goldenForest()
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(gobPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		js, err := json.MarshalIndent(expectOf(e), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes) and %s", gobPath, buf.Len(), jsonPath)
		return
	}

	raw, err := os.ReadFile(gobPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	e, err := LoadExtensible(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var want forestExpect
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(js, &want); err != nil {
		t.Fatal(err)
	}

	if e.Forest().Trees() != want.Trees || e.Causes() != want.Causes {
		t.Fatalf("loaded %d trees / %d causes, want %d / %d",
			e.Forest().Trees(), e.Causes(), want.Trees, want.Causes)
	}
	if err := compareScores(expectOf(e), want); err != nil {
		t.Fatal(err)
	}

	// Byte-stable re-encode: the wire format has no maps, so saving the
	// loaded forest must reproduce the fixture exactly.
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("re-encoded forest differs from fixture (%d vs %d bytes)", buf.Len(), len(raw))
	}
}

// TestGoldenExtensibleRoundTrip checks that a freshly fitted forest (same
// seeds) still matches the committed expectations — i.e. the training
// procedure itself, not just the serialized artifact, is stable.
func TestGoldenExtensibleRoundTrip(t *testing.T) {
	if *update {
		t.Skip("fixtures being rewritten")
	}
	js, err := os.ReadFile(filepath.Join("testdata", "extensible.golden.json"))
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var want forestExpect
	if err := json.Unmarshal(js, &want); err != nil {
		t.Fatal(err)
	}
	e := goldenForest()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExtensible(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := compareScores(expectOf(loaded), want); err != nil {
		t.Fatal(err)
	}
}

func compareScores(got, want forestExpect) error {
	const tol = 1e-12
	if len(got.Scores) != len(want.Scores) || len(got.Unknown) != len(want.Unknown) {
		return fmt.Errorf("probe count mismatch: %d/%d vs %d/%d",
			len(got.Scores), len(got.Unknown), len(want.Scores), len(want.Unknown))
	}
	for i := range want.Scores {
		for j := range want.Scores[i] {
			if math.Abs(got.Scores[i][j]-want.Scores[i][j]) > tol {
				return fmt.Errorf("probe %d score %d: got %v want %v", i, j, got.Scores[i][j], want.Scores[i][j])
			}
		}
		for j := range want.Unknown[i] {
			if math.Abs(got.Unknown[i][j]-want.Unknown[i][j]) > tol {
				return fmt.Errorf("probe %d unknown %d: got %v want %v", i, j, got.Unknown[i][j], want.Unknown[i][j])
			}
		}
	}
	return nil
}
