// Package forest implements CART decision trees and random forests with
// the hyperparameters NetPoirot-style baselines use in the DiagNet paper
// (Table I: Gini impurity, 50 estimators, maximum depth 10), plus the
// paper's *extensible* random-forest wrapper (§IV-B-a) that zero-fills
// missing landmark features and redistributes the score of a special
// "unknown" class across every concrete root cause.
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// node is one tree node. Leaves carry a class distribution; internal nodes
// carry a split.
type node struct {
	// Split (internal nodes): go left when x[Feature] <= Threshold.
	Feature   int
	Threshold float64
	Left      *node
	Right     *node
	// Distribution (leaves): class probabilities.
	Dist []float64
}

func (n *node) isLeaf() bool { return n.Left == nil }

// TreeConfig controls a single CART tree.
type TreeConfig struct {
	MaxDepth int // maximum depth; <=0 means unlimited
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MaxFeatures is the number of candidate features examined per split;
	// <=0 means floor(sqrt(num features)), the random-forest default.
	MaxFeatures int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesSplit <= 0 {
		c.MinSamplesSplit = 2
	}
	return c
}

// Tree is a fitted CART decision tree.
type Tree struct {
	root    *node
	classes int
}

// FitTree grows a tree on rows X (n×m as slices) with integer labels using
// Gini impurity. idx selects which rows participate (bootstrap support);
// pass nil for all rows.
func FitTree(x [][]float64, labels []int, classes int, idx []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if len(x) == 0 {
		panic("forest: FitTree on empty dataset")
	}
	if len(x) != len(labels) {
		panic(fmt.Sprintf("forest: %d rows vs %d labels", len(x), len(labels)))
	}
	cfg = cfg.withDefaults()
	if idx == nil {
		idx = make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
	}
	m := len(x[0])
	maxFeat := cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(m)))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	if maxFeat > m {
		maxFeat = m
	}
	b := &builder{x: x, labels: labels, classes: classes, cfg: cfg, maxFeat: maxFeat, rng: rng}
	t := &Tree{classes: classes}
	t.root = b.grow(idx, 0)
	return t
}

type builder struct {
	x       [][]float64
	labels  []int
	classes int
	cfg     TreeConfig
	maxFeat int
	rng     *rand.Rand
}

func (b *builder) leaf(idx []int) *node {
	dist := make([]float64, b.classes)
	for _, i := range idx {
		dist[b.labels[i]]++
	}
	n := float64(len(idx))
	for k := range dist {
		dist[k] /= n
	}
	return &node{Dist: dist}
}

func (b *builder) grow(idx []int, depth int) *node {
	if len(idx) < b.cfg.MinSamplesSplit || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) || b.pure(idx) {
		return b.leaf(idx)
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return b.leaf(idx)
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return b.leaf(idx)
	}
	return &node{
		Feature:   feat,
		Threshold: thr,
		Left:      b.grow(left, depth+1),
		Right:     b.grow(right, depth+1),
	}
}

func (b *builder) pure(idx []int) bool {
	first := b.labels[idx[0]]
	for _, i := range idx[1:] {
		if b.labels[i] != first {
			return false
		}
	}
	return true
}

// bestSplit scans a random feature subset for the split with maximal Gini
// gain. Class counts are updated incrementally so each candidate feature
// costs O(n log n) for the sort plus O(n) for the scan.
func (b *builder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	m := len(b.x[0])
	feats := b.rng.Perm(m)[:b.maxFeat]
	n := len(idx)

	// Parent class counts.
	parent := make([]float64, b.classes)
	for _, i := range idx {
		parent[b.labels[i]]++
	}

	bestGain := 1e-12
	sorted := make([]int, n)
	leftCnt := make([]float64, b.classes)
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.x[sorted[a]][f] < b.x[sorted[c]][f] })
		for k := range leftCnt {
			leftCnt[k] = 0
		}
		// Incremental sum of squared counts for O(1) Gini updates.
		var leftSq, rightSq float64
		for _, c := range parent {
			rightSq += c * c
		}
		parentGini := 1 - rightSq/float64(n*n)
		for i := 0; i < n-1; i++ {
			k := b.labels[sorted[i]]
			leftSq += 2*leftCnt[k] + 1
			leftCnt[k]++
			rc := parent[k] - leftCnt[k]
			rightSq -= 2*rc + 1
			vi, vj := b.x[sorted[i]][f], b.x[sorted[i+1]][f]
			if vi == vj {
				continue
			}
			nl, nr := float64(i+1), float64(n-i-1)
			giniL := 1 - leftSq/(nl*nl)
			giniR := 1 - rightSq/(nr*nr)
			gain := parentGini - (nl*giniL+nr*giniR)/float64(n)
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (vi + vj) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// PredictProba returns the class distribution of the leaf x falls into.
func (t *Tree) PredictProba(x []float64) []float64 {
	n := t.root
	for !n.isLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Dist
}

// Predict returns the arg-max class for x.
func (t *Tree) Predict(x []float64) int {
	dist := t.PredictProba(x)
	arg := 0
	for k, v := range dist {
		if v > dist[arg] {
			arg = k
		}
	}
	return arg
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.isLeaf() {
		return 0
	}
	l, r := depthOf(n.Left), depthOf(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
