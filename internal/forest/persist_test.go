package forest

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := gaussianBlobs(rng, 200)
	f := Fit(x, labels, 2, Config{Trees: 8, Tree: TreeConfig{MaxDepth: 6}, Seed: 3})

	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Trees() != f.Trees() || loaded.Classes() != f.Classes() {
		t.Fatal("metadata lost")
	}
	for i := 0; i < 50; i++ {
		probe := []float64{rng.NormFloat64() * 4, rng.NormFloat64()}
		a, b := f.PredictProba(probe), loaded.PredictProba(probe)
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("loaded forest predicts differently")
			}
		}
	}
}

func TestExtensibleSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := gaussianBlobs(rng, 150)
	e := FitExtensible(x, labels, 2, Config{Trees: 5, Tree: TreeConfig{MaxDepth: 4}, Seed: 4})

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadExtensible(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Causes() != e.Causes() {
		t.Fatal("causes lost")
	}
	probe := []float64{1, -1}
	a, b := e.Scores(probe), loaded.Scores(probe)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("loaded extensible scores differ")
		}
	}
}

func TestLoadForestGarbage(t *testing.T) {
	if _, err := LoadForest(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("want error")
	}
	if _, err := LoadExtensible(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("want error")
	}
}

func TestFlattenRoundTripPreservesDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := gaussianBlobs(rng, 300)
	tree := FitTree(x, labels, 2, nil, TreeConfig{MaxDepth: 7}, rng)
	got, err := tree.flatten().unflatten()
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth() != tree.Depth() {
		t.Fatalf("depth %d vs %d", got.Depth(), tree.Depth())
	}
	for i := 0; i < 30; i++ {
		probe := []float64{rng.NormFloat64() * 4, rng.NormFloat64()}
		if tree.Predict(probe) != got.Predict(probe) {
			t.Fatal("prediction changed after round trip")
		}
	}
}

func TestUnflattenRejectsCorruptIndices(t *testing.T) {
	ft := flatTree{Nodes: []flatNode{{Feature: 0, Threshold: 1, Left: 5, Right: 6}}, Classes: 2}
	if _, err := ft.unflatten(); err == nil {
		t.Fatal("want error for out-of-range children")
	}
	if _, err := (flatTree{}).unflatten(); err == nil {
		t.Fatal("want error for empty tree")
	}
}
