package forest

import (
	"fmt"
	"runtime"
	"sync"

	"diagnet/internal/stats"
)

// Config controls a random forest ensemble. The zero value is completed by
// DefaultConfig's paper values.
type Config struct {
	Trees int // number of estimators
	Tree  TreeConfig
	Seed  int64
}

// DefaultConfig returns the paper's auxiliary-model hyperparameters
// (Table I): Gini impurity, 50 estimators, maximum depth 10.
func DefaultConfig() Config {
	return Config{Trees: 50, Tree: TreeConfig{MaxDepth: 10}}
}

// Forest is a fitted random forest classifier.
type Forest struct {
	trees   []*Tree
	classes int
}

// Fit trains cfg.Trees CART trees on bootstrap resamples of (x, labels).
// Trees are fitted in parallel across GOMAXPROCS workers; each tree derives
// its own RNG stream from cfg.Seed, so the fitted ensemble is identical
// regardless of parallelism.
func Fit(x [][]float64, labels []int, classes int, cfg Config) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	f := &Forest{trees: make([]*Tree, cfg.Trees), classes: classes}
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range next {
				rng := stats.NewRand(cfg.Seed, int64(ti))
				boot := make([]int, len(x))
				for i := range boot {
					boot[i] = rng.Intn(len(x))
				}
				f.trees[ti] = FitTree(x, labels, classes, boot, cfg.Tree, rng)
			}
		}()
	}
	for ti := 0; ti < cfg.Trees; ti++ {
		next <- ti
	}
	close(next)
	wg.Wait()
	return f
}

// Classes returns the number of classes the forest was fitted with.
func (f *Forest) Classes() int { return f.classes }

// Trees returns the number of fitted estimators.
func (f *Forest) Trees() int { return len(f.trees) }

// PredictProba averages the leaf distributions of all trees.
func (f *Forest) PredictProba(x []float64) []float64 {
	dist := make([]float64, f.classes)
	for _, t := range f.trees {
		for k, v := range t.PredictProba(x) {
			dist[k] += v
		}
	}
	inv := 1 / float64(len(f.trees))
	for k := range dist {
		dist[k] *= inv
	}
	return dist
}

// Predict returns the arg-max class for x.
func (f *Forest) Predict(x []float64) int {
	dist := f.PredictProba(x)
	arg := 0
	for k, v := range dist {
		if v > dist[arg] {
			arg = k
		}
	}
	return arg
}

// Extensible is the paper's extensible random-forest baseline (§IV-B-a):
// the feature dimension is fixed to the maximum possible size, missing
// landmark values are zero-filled by the caller, and a special "unknown"
// class — used as the label of nominal samples — has its predicted score
// redistributed evenly over every concrete cause so that causes never seen
// during training keep a non-null score.
type Extensible struct {
	forest *Forest
	// causes is the number of concrete root-cause classes; the unknown
	// class has index causes.
	causes int
}

// FitExtensible trains the wrapper. Labels must be in [0, causes] where
// the value causes denotes the "unknown"/nominal class.
func FitExtensible(x [][]float64, labels []int, causes int, cfg Config) *Extensible {
	for i, y := range labels {
		if y < 0 || y > causes {
			panic(fmt.Sprintf("forest: extensible label %d out of [0,%d] at row %d", y, causes, i))
		}
	}
	return &Extensible{forest: Fit(x, labels, causes+1, cfg), causes: causes}
}

// Scores returns per-cause scores for x: the forest's distribution over
// concrete causes with the unknown-class mass spread uniformly.
func (e *Extensible) Scores(x []float64) []float64 {
	return e.ScoresInto(x, make([]float64, e.causes))
}

// ScoresInto is Scores writing into a caller-provided buffer of Causes()
// elements, the batch-friendly entry point serving workers use to keep
// the hot path allocation-light. It returns out.
func (e *Extensible) ScoresInto(x, out []float64) []float64 {
	if len(out) != e.causes {
		panic("forest: ScoresInto buffer has wrong length")
	}
	dist := e.forest.PredictProba(x)
	unknown := dist[e.causes]
	share := unknown / float64(e.causes)
	for k := 0; k < e.causes; k++ {
		out[k] = dist[k] + share
	}
	return out
}

// UnknownScore returns the probability mass assigned to the unknown class.
func (e *Extensible) UnknownScore(x []float64) []float64 {
	return e.forest.PredictProba(x)
}

// Causes returns the number of concrete root-cause classes.
func (e *Extensible) Causes() int { return e.causes }

// Forest exposes the wrapped ensemble (for diagnostics and tests).
func (e *Extensible) Forest() *Forest { return e.forest }
