package forest

import (
	"encoding/gob"
	"fmt"
	"io"
)

// flatNode is the serialized form of a tree node. Children are indices
// into the flat node array; -1 marks a leaf.
type flatNode struct {
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Dist      []float64
}

type flatTree struct {
	Nodes   []flatNode
	Classes int
}

func (t *Tree) flatten() flatTree {
	ft := flatTree{Classes: t.classes}
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(ft.Nodes)
		ft.Nodes = append(ft.Nodes, flatNode{Left: -1, Right: -1})
		if n.isLeaf() {
			ft.Nodes[idx].Dist = n.Dist
			return idx
		}
		ft.Nodes[idx].Feature = n.Feature
		ft.Nodes[idx].Threshold = n.Threshold
		l := walk(n.Left)
		r := walk(n.Right)
		ft.Nodes[idx].Left = l
		ft.Nodes[idx].Right = r
		return idx
	}
	walk(t.root)
	return ft
}

func (ft flatTree) unflatten() (*Tree, error) {
	if len(ft.Nodes) == 0 {
		return nil, fmt.Errorf("forest: empty tree")
	}
	nodes := make([]node, len(ft.Nodes))
	for i, fn := range ft.Nodes {
		nodes[i] = node{Feature: fn.Feature, Threshold: fn.Threshold, Dist: fn.Dist}
		if fn.Left >= 0 {
			if fn.Left >= len(nodes) || fn.Right < 0 || fn.Right >= len(nodes) {
				return nil, fmt.Errorf("forest: corrupt tree indices")
			}
			nodes[i].Left = &nodes[fn.Left]
			nodes[i].Right = &nodes[fn.Right]
		}
	}
	return &Tree{root: &nodes[0], classes: ft.Classes}, nil
}

type forestWire struct {
	Trees   []flatTree
	Classes int
	Causes  int // only used by Extensible
}

// Save writes the forest with gob.
func (f *Forest) Save(w io.Writer) error {
	wire := forestWire{Classes: f.classes}
	for _, t := range f.trees {
		wire.Trees = append(wire.Trees, t.flatten())
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadForest reads a forest written by Save.
func LoadForest(r io.Reader) (*Forest, error) {
	var wire forestWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("forest: load: %w", err)
	}
	return wire.toForest()
}

func (wire forestWire) toForest() (*Forest, error) {
	f := &Forest{classes: wire.Classes}
	for _, ft := range wire.Trees {
		t, err := ft.unflatten()
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, t)
	}
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("forest: no trees in stream")
	}
	return f, nil
}

// Save writes the extensible wrapper with gob.
func (e *Extensible) Save(w io.Writer) error {
	wire := forestWire{Classes: e.forest.classes, Causes: e.causes}
	for _, t := range e.forest.trees {
		wire.Trees = append(wire.Trees, t.flatten())
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadExtensible reads an extensible wrapper written by Save.
func LoadExtensible(r io.Reader) (*Extensible, error) {
	var wire forestWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("forest: load extensible: %w", err)
	}
	f, err := wire.toForest()
	if err != nil {
		return nil, err
	}
	return &Extensible{forest: f, causes: wire.Causes}, nil
}
