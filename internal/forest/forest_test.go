package forest

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// gaussianBlobs builds a linearly separable 2-class dataset.
func gaussianBlobs(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	labels := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		cx := float64(c*6 - 3)
		x[i] = []float64{cx + rng.NormFloat64(), rng.NormFloat64()}
		labels[i] = c
	}
	return x, labels
}

func TestTreeFitsPureSplit(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	labels := []int{0, 0, 0, 1, 1, 1}
	tree := FitTree(x, labels, 2, nil, TreeConfig{MaxFeatures: 1}, rand.New(rand.NewSource(1)))
	for i, row := range x {
		if tree.Predict(row) != labels[i] {
			t.Fatalf("row %d misclassified", i)
		}
	}
	if tree.Depth() != 1 {
		t.Fatalf("trivially separable data should give depth 1, got %d", tree.Depth())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([][]float64, 200)
	labels := make([]int, 200)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		labels[i] = rng.Intn(3)
	}
	tree := FitTree(x, labels, 3, nil, TreeConfig{MaxDepth: 4, MaxFeatures: 3}, rng)
	if d := tree.Depth(); d > 4 {
		t.Fatalf("depth %d exceeds max 4", d)
	}
}

func TestTreeLeafDistributionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := gaussianBlobs(rng, 100)
	tree := FitTree(x, labels, 2, nil, TreeConfig{MaxDepth: 3}, rng)
	for _, row := range x {
		var s float64
		for _, p := range tree.PredictProba(row) {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("leaf dist sums to %v", s)
		}
	}
}

func TestTreePureNodeStopsEarly(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	labels := []int{1, 1, 1}
	tree := FitTree(x, labels, 2, nil, TreeConfig{}, rand.New(rand.NewSource(4)))
	if tree.Depth() != 0 {
		t.Fatal("pure data must give a single leaf")
	}
	if p := tree.PredictProba([]float64{5}); p[1] != 1 {
		t.Fatalf("leaf dist = %v", p)
	}
}

func TestForestAccuracyOnBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := gaussianBlobs(rng, 400)
	f := Fit(x, labels, 2, Config{Trees: 20, Tree: TreeConfig{MaxDepth: 6}, Seed: 1})
	correct := 0
	for i, row := range x {
		if f.Predict(row) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("forest accuracy %.3f", acc)
	}
}

func TestForestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, labels := gaussianBlobs(rng, 150)
	cfg := Config{Trees: 8, Tree: TreeConfig{MaxDepth: 5}, Seed: 9}
	old := runtime.GOMAXPROCS(1)
	f1 := Fit(x, labels, 2, cfg)
	runtime.GOMAXPROCS(4)
	f2 := Fit(x, labels, 2, cfg)
	runtime.GOMAXPROCS(old)
	probe := []float64{0.5, -0.2}
	p1, p2 := f1.PredictProba(probe), f2.PredictProba(probe)
	for k := range p1 {
		if p1[k] != p2[k] {
			t.Fatalf("forest depends on GOMAXPROCS: %v vs %v", p1, p2)
		}
	}
}

func TestForestProbaNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, labels := gaussianBlobs(rng, 100)
	f := Fit(x, labels, 10, Config{Trees: 5, Tree: TreeConfig{MaxDepth: 4}, Seed: 2})
	_ = labels
	var s float64
	for _, p := range f.PredictProba(x[0]) {
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("proba sums to %v", s)
	}
	if f.Trees() != 5 || f.Classes() != 10 {
		t.Fatal("metadata wrong")
	}
}

func TestExtensibleRedistributesUnknown(t *testing.T) {
	// 3 causes + unknown. Train with only cause 0 and unknown present.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var labels []int
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			x = append(x, []float64{5 + rng.NormFloat64(), 0, 0})
			labels = append(labels, 0) // cause 0
		} else {
			x = append(x, []float64{rng.NormFloat64() * 0.1, 0, 0})
			labels = append(labels, 3) // unknown
		}
	}
	e := FitExtensible(x, labels, 3, Config{Trees: 10, Tree: TreeConfig{MaxDepth: 4}, Seed: 3})

	// A nominal-looking sample: most mass goes to unknown and is spread, so
	// every cause gets a strictly positive score.
	scores := e.Scores([]float64{0, 0, 0})
	for k, s := range scores {
		if s <= 0 {
			t.Fatalf("cause %d got non-positive score %v", k, s)
		}
	}
	// Cause 1 and 2 were never seen: their scores come only from the
	// uniform share, hence are equal.
	if math.Abs(scores[1]-scores[2]) > 1e-12 {
		t.Fatalf("unseen causes should tie: %v", scores)
	}
	// A cause-0-looking sample ranks cause 0 first.
	scores = e.Scores([]float64{5, 0, 0})
	if !(scores[0] > scores[1] && scores[0] > scores[2]) {
		t.Fatalf("cause 0 should dominate: %v", scores)
	}
	if e.Causes() != 3 {
		t.Fatal("Causes() wrong")
	}
}

func TestExtensibleScoreMassConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, labels := gaussianBlobs(rng, 100)
	// Re-map to causes {0,1} with unknown=2.
	e := FitExtensible(x, labels, 2, Config{Trees: 5, Tree: TreeConfig{MaxDepth: 3}, Seed: 4})
	scores := e.Scores(x[0])
	var s float64
	for _, v := range scores {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("scores sum to %v, want 1", s)
	}
}

func TestExtensibleRejectsBadLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FitExtensible([][]float64{{1}}, []int{5}, 2, Config{Trees: 1})
}

func TestFitTreeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FitTree(nil, nil, 2, nil, TreeConfig{}, rand.New(rand.NewSource(1)))
}

// Property: forests never emit negative probabilities, and deeper forests
// classify the training set at least as well as a depth-1 stump ensemble.
func TestForestProbaNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, labels := gaussianBlobs(rng, 60)
		fo := Fit(x, labels, 2, Config{Trees: 3, Tree: TreeConfig{MaxDepth: 3}, Seed: seed})
		for _, row := range x {
			for _, p := range fo.PredictProba(row) {
				if p < 0 || p > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trees != 50 || cfg.Tree.MaxDepth != 10 {
		t.Fatalf("DefaultConfig = %+v, want 50 trees depth 10 (Table I)", cfg)
	}
}
