package telemetry

import (
	"sync/atomic"
	"time"
)

// enabled gates the time.Now-based stage timing globally. Counters and
// direct histogram observations are cheap enough to stay always-on; stage
// clocks are the only instrumentation that calls into the OS clock, so
// they carry the switch.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches stage timing on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether stage timing is enabled.
func On() bool { return enabled.Load() }

// Millis converts a duration to fractional milliseconds, the unit every
// latency histogram in the registry uses.
func Millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ObserveSince records the elapsed time since start into h (no-op when
// timing is disabled).
func ObserveSince(h *Histogram, start time.Time) {
	if !enabled.Load() {
		return
	}
	h.Observe(Millis(time.Since(start)))
}

// StageClock times the consecutive stages of one operation: StartStages
// stamps the start, each Mark records the lap since the previous mark into
// a stage histogram, and Done records the total. When timing is disabled
// StartStages returns nil and every method is a cheap no-op, so
// instrumented hot paths cost one atomic load plus one branch per stage.
type StageClock struct {
	start time.Time
	last  time.Time
}

// StartStages opens a stage clock, or nil when timing is disabled.
func StartStages() *StageClock {
	if !enabled.Load() {
		return nil
	}
	now := time.Now()
	return &StageClock{start: now, last: now}
}

// Mark records the time since the previous mark (or the start) into h.
func (c *StageClock) Mark(h *Histogram) {
	if c == nil {
		return
	}
	now := time.Now()
	h.Observe(Millis(now.Sub(c.last)))
	c.last = now
}

// Done records the total time since StartStages into h.
func (c *StageClock) Done(h *Histogram) {
	if c == nil {
		return
	}
	h.Observe(Millis(time.Since(c.start)))
}

// DoneExemplar is Done with exemplar capture: the observation carries the
// given trace ID so tail-latency snapshots point at a retrievable trace.
// An empty trace ID degrades to Done.
func (c *StageClock) DoneExemplar(h *Histogram, traceID string) {
	if c == nil {
		return
	}
	h.ObserveExemplar(Millis(time.Since(c.start)), traceID)
}
