package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if math.Abs(s.Mean-0.505) > 1e-9 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Interpolation inside [0,1]: p50 ≈ 0.5, p99 ≈ 0.99.
	if math.Abs(s.P50-0.5) > 0.02 || math.Abs(s.P99-0.99) > 0.02 {
		t.Fatalf("p50=%v p99=%v", s.P50, s.P99)
	}
}

func TestHistogramAcrossBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(35) // third bucket
	}
	s := h.Snapshot()
	if s.P50 > 10 {
		t.Fatalf("p50 %v should be inside the first bucket", s.P50)
	}
	if s.P99 <= 20 || s.P99 > 40 {
		t.Fatalf("p99 %v should be inside (20,40]", s.P99)
	}
}

func TestHistogramOverflowSaturates(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if s.P50 != 2 || s.P99 != 2 {
		t.Fatalf("overflow quantiles should saturate at the last bound: %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unsorted bounds")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not memoized")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not memoized")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []float64{1}) {
		t.Fatal("histogram not memoized")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("reqs").Add(3)
	r.Gauge("inflight").Set(2)
	r.Histogram("lat_ms", nil).Observe(12)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["reqs"] != 3 || got.Gauges["inflight"] != 2 {
		t.Fatalf("roundtrip %+v", got)
	}
	if got.Histograms["lat_ms"].Count != 1 {
		t.Fatalf("histogram roundtrip %+v", got.Histograms["lat_ms"])
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 120))
				// Interleave registry lookups with observations.
				r.Counter("c").Value()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Fatalf("counter %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("gauge %v, want %d", g.Value(), workers*each)
	}
	if got := h.Snapshot().Count; got != workers*each {
		t.Fatalf("histogram count %d, want %d", got, workers*each)
	}
}

func TestStageClockDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if StartStages() != nil {
		t.Fatal("disabled clock should be nil")
	}
	h := NewHistogram(nil)
	var c *StageClock
	c.Mark(h) // nil receiver must be a no-op
	c.Done(h)
	ObserveSince(h, time.Now())
	if h.Count() != 0 {
		t.Fatal("disabled timing must not observe")
	}
}

func TestStageClockMarksAndTotal(t *testing.T) {
	r := New()
	a := r.Histogram("stage.a", nil)
	b := r.Histogram("stage.b", nil)
	total := r.Histogram("total", nil)
	c := StartStages()
	time.Sleep(time.Millisecond)
	c.Mark(a)
	time.Sleep(time.Millisecond)
	c.Mark(b)
	c.Done(total)
	if a.Count() != 1 || b.Count() != 1 || total.Count() != 1 {
		t.Fatal("missing observations")
	}
	sa, sb, st := a.Snapshot(), b.Snapshot(), total.Snapshot()
	if st.Sum < sa.Sum || st.Sum < sb.Sum {
		t.Fatalf("total %v should cover each stage (%v, %v)", st.Sum, sa.Sum, sb.Sum)
	}
	if sa.Sum <= 0 || sb.Sum <= 0 {
		t.Fatalf("stage laps must be positive: %v %v", sa.Sum, sb.Sum)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkStageClock(b *testing.B) {
	h := NewHistogram(nil)
	total := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := StartStages()
		c.Mark(h)
		c.Done(total)
	}
}

// TestEmptyHistogramSnapshotSentinel pins the zero-observation contract:
// every field of the snapshot is the documented sentinel 0 — not an
// interpolated value, not NaN — and the snapshot marshals to JSON
// cleanly (NaN would fail encoding/json and break GET /v1/metrics).
func TestEmptyHistogramSnapshotSentinel(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("count %d on an empty histogram", s.Count)
	}
	for name, v := range map[string]float64{
		"sum": s.Sum, "mean": s.Mean, "p50": s.P50, "p90": s.P90, "p99": s.P99,
	} {
		if v != 0 {
			t.Errorf("%s = %v on an empty histogram (want sentinel 0)", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v is not JSON-marshalable", name, v)
		}
	}
	if s.Exemplar != nil {
		t.Fatalf("exemplar %+v on an empty histogram", s.Exemplar)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty snapshot does not marshal: %v", err)
	}
}

// TestHistogramExemplar checks that tail-bucket exemplars surface in
// snapshots and that the tail-most captured exemplar wins.
func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveExemplar(0.5, "trace-fast")
	h.ObserveExemplar(400, "trace-slow")
	h.Observe(401) // same bucket, no trace: must not clobber the exemplar
	s := h.Snapshot()
	if s.Exemplar == nil {
		t.Fatal("no exemplar in snapshot")
	}
	if s.Exemplar.TraceID != "trace-slow" || s.Exemplar.Value != 400 {
		t.Fatalf("want the tail exemplar, got %+v", s.Exemplar)
	}
	// Empty trace ID degrades to a plain observation.
	h2 := NewHistogram(nil)
	h2.ObserveExemplar(1, "")
	if s2 := h2.Snapshot(); s2.Count != 1 || s2.Exemplar != nil {
		t.Fatalf("empty-trace observation mishandled: %+v", s2)
	}
}

// TestDoneExemplar checks the StageClock bridge.
func TestDoneExemplar(t *testing.T) {
	h := NewHistogram(nil)
	c := StartStages()
	c.DoneExemplar(h, "trace-x")
	if s := h.Snapshot(); s.Count != 1 || s.Exemplar == nil || s.Exemplar.TraceID != "trace-x" {
		t.Fatalf("exemplar not recorded through the clock: %+v", s)
	}
	var nilClock *StageClock
	nilClock.DoneExemplar(h, "y") // must no-op
	if h.Count() != 1 {
		t.Fatal("nil clock observed")
	}
}

// TestHistogramSum pins the Sum accessor: running total of observed
// values, with the zero-observation sentinel shared with Snapshot.
func TestHistogramSum(t *testing.T) {
	h := NewHistogram(nil)
	if h.Sum() != 0 {
		t.Fatalf("empty sum = %v, want 0", h.Sum())
	}
	h.Observe(1.5)
	h.Observe(2.25)
	h.Observe(0.25)
	if got := h.Sum(); got != 4.0 {
		t.Fatalf("Sum = %v, want 4", got)
	}
	if s := h.Snapshot(); s.Sum != h.Sum() {
		t.Fatalf("Snapshot.Sum %v != Sum() %v", s.Sum, h.Sum())
	}
}

// TestHistogramCumulative pins the cumulative bucket view: monotone
// non-decreasing, final element equal to the total count.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []int64{2, 3, 4, 6} // ≤1, ≤10, ≤100, +Inf
	if len(cum) != len(want) {
		t.Fatalf("cumulative len = %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], want[i], cum)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("terminal bucket %d != count %d", cum[len(cum)-1], h.Count())
	}
}

// TestRegistryExportDeterministic pins the Export ordering contract:
// sorted by metric name, stable across calls — the exposition and the
// fleet merge both key on it, and snapshot-diff tests stop churning.
func TestRegistryExportDeterministic(t *testing.T) {
	r := New()
	for _, n := range []string{"zz.last", "aa.first", "mm.middle"} {
		r.Counter(n).Inc()
		r.Gauge("g." + n).Set(1)
		r.Histogram("h."+n, nil).Observe(1)
	}
	e := r.Export()
	for i := 1; i < len(e.Counters); i++ {
		if e.Counters[i-1].Name >= e.Counters[i].Name {
			t.Fatalf("counters not sorted: %q >= %q", e.Counters[i-1].Name, e.Counters[i].Name)
		}
	}
	for i := 1; i < len(e.Gauges); i++ {
		if e.Gauges[i-1].Name >= e.Gauges[i].Name {
			t.Fatalf("gauges not sorted: %q >= %q", e.Gauges[i-1].Name, e.Gauges[i].Name)
		}
	}
	for i := 1; i < len(e.Histograms); i++ {
		if e.Histograms[i-1].Name >= e.Histograms[i].Name {
			t.Fatalf("histograms not sorted: %q >= %q", e.Histograms[i-1].Name, e.Histograms[i].Name)
		}
	}
	a, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two exports of the same state differ")
	}
}

// TestSnapshotDeterministic pins that the JSON wire form of Snapshot is
// byte-stable for identical registry state (map keys sort in
// encoding/json) — older tooling diffs snapshots and must not churn.
func TestSnapshotDeterministic(t *testing.T) {
	r := New()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Histogram("h.lat", nil).Observe(3)
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
}

// TestHistogramPointQuantile pins that the exported cumulative form
// reproduces the live histogram's interpolated quantiles exactly.
func TestHistogramPointQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q.lat", nil)
	vals := []float64{0.2, 0.4, 3, 7, 40, 90, 900, 20000, 999999}
	for _, v := range vals {
		h.Observe(v)
	}
	e := r.Export()
	p, ok := e.Histogram("q.lat")
	if !ok {
		t.Fatal("histogram missing from export")
	}
	s := h.Snapshot()
	for _, q := range []struct {
		q    float64
		want float64
	}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
		if got := p.Quantile(q.q); got != q.want {
			t.Fatalf("Quantile(%v) = %v, want %v", q.q, got, q.want)
		}
	}
	if p.Count() != s.Count || p.Sum != s.Sum {
		t.Fatalf("count/sum mismatch: point %d/%v snapshot %d/%v", p.Count(), p.Sum, s.Count, s.Sum)
	}
}
