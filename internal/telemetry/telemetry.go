// Package telemetry is DiagNet's dependency-free metrics substrate: atomic
// counters, float gauges, and fixed-bucket latency histograms with
// percentile snapshots, collected in a process-wide registry.
//
// A production RCA system is a monitoring system first: before DiagNet can
// diagnose the Internet it must be able to diagnose itself — how long a
// Diagnose call spends in the forward pass vs. the input-gradient
// attention pass, how often probe rounds degrade, how many events the
// collector drops. Every layer of the pipeline records into the default
// registry; diagnetd exposes it as GET /v1/metrics and diagnet-agent via
// its -metrics listener.
//
// The hot-path cost is one atomic add per counter event and one binary
// search plus two atomic adds per histogram observation; stage timing adds
// one time.Now per stage boundary and can be switched off entirely with
// SetEnabled(false) (see the overhead benchmark in internal/core).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Safe for concurrent
// use; the zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down (in-flight requests,
// last epoch's loss). Safe for concurrent use; the zero value is ready.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram bucket layout for durations in
// milliseconds: a 1-2.5-5 ladder from 1 µs to 60 s (24 buckets plus
// overflow), wide enough for a sub-millisecond Diagnose stage and a
// 60-second probing round alike.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// SizeBuckets is a bucket layout for counts (batch sizes, landmark
// counts): powers of two from 1 to 4096.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// limits in ascending order; observations above the last bound land in an
// overflow bucket. Safe for concurrent use.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1, last is overflow
	count     atomic.Int64
	sum       atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar] // per bucket, latest observation wins
}

// Exemplar ties one concrete observation to the trace that produced it —
// the bridge from an aggregate percentile line to a retrievable request
// trace (GET /v1/traces/{trace_id}).
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// NewHistogram builds a histogram over the given bucket bounds (nil means
// LatencyBuckets). Bounds must be ascending; they are copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe folds one value in.
func (h *Histogram) Observe(v float64) { h.observe(v) }

// ObserveExemplar is Observe plus exemplar capture: the observation's
// trace ID is stored in its bucket's exemplar slot (latest observation
// wins), so tail-bucket entries let a p99 snapshot line point at a
// concrete retrievable trace. An empty trace ID degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.observe(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// observe folds one value in and returns its bucket index.
func (h *Histogram) observe(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return i
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values. Like Snapshot, a
// histogram with zero completed observations reports 0 (a racing Observe
// may have CAS-ed the sum before its bucket count landed).
func (h *Histogram) Sum() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the histogram's finite upper bounds (a copy).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative bucket counts: Cumulative()[i] is the
// number of observations ≤ Bounds()[i], and the final element (the +Inf
// bucket) is the total count. Prometheus exposition and the fleet
// federation merge both consume this form — cumulative counts over shared
// fixed bounds merge exactly by element-wise addition.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram: totals plus interpolated percentiles. A histogram with zero
// observations reports the documented sentinel 0 for Sum, Mean and every
// percentile — never an interpolated value and never NaN, so snapshots
// always stay JSON-marshalable (check Count before trusting percentiles).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Exemplar, when present, is the captured observation nearest the
	// distribution's tail (scanning buckets from the top) — the concrete
	// trace behind this histogram's worst latencies.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot computes the current totals and percentiles. Percentiles are
// linearly interpolated inside their bucket; values in the overflow bucket
// report the last bound (the histogram cannot resolve beyond it). Zero
// observations yield the all-zero sentinel snapshot (see
// HistogramSnapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: math.Float64frombits(h.sum.Load())}
	if total == 0 {
		// Sentinel: no observations means no percentiles. Sum is forced to
		// 0 too (a racing Observe may have CAS-ed the sum before its bucket
		// count landed; a half-applied observation must not leak).
		s.Sum = 0
		return s
	}
	s.Mean = s.Sum / float64(total)
	s.P50 = h.quantile(counts, total, 0.50)
	s.P90 = h.quantile(counts, total, 0.90)
	s.P99 = h.quantile(counts, total, 0.99)
	// Tail exemplar: scan from the overflow bucket down, first captured
	// exemplar of a non-empty bucket wins.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] == 0 {
			continue
		}
		if ex := h.exemplars[i].Load(); ex != nil {
			s.Exemplar = ex
			break
		}
	}
	return s
}

// quantile interpolates the q-quantile from bucket counts. total must be
// > 0 (Snapshot returns the zero sentinel before calling it otherwise).
func (h *Histogram) quantile(counts []int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // overflow: saturate at the last bound
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds named metrics. Names are dotted lowercase paths
// ("core.diagnose.stage.normalize_ms"); getters create on first use and
// return the same instance afterwards, so instrumentation sites can
// resolve their metrics once at init and pay only atomic ops per event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// std is the process-wide registry every pipeline layer records into.
var std = New()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; bounds apply
// only on first creation (nil means LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a JSON-marshalable point-in-time view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. The maps marshal to
// JSON with sorted keys (encoding/json sorts map keys), so two snapshots
// of the same state are byte-identical — pinned by TestSnapshotDeterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterPoint is one counter's exported value.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge's exported value.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram's full exported state: finite upper
// bounds plus cumulative counts (the final element is the +Inf bucket,
// i.e. the total count). Unlike HistogramSnapshot it carries enough to
// re-derive any quantile — and to merge exactly across processes, because
// every DiagNet histogram of a given name shares the same fixed bounds.
type HistogramPoint struct {
	Name       string    `json:"name"`
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"` // len(Bounds)+1; last = Count
	Sum        float64   `json:"sum"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"` // tail exemplar
}

// Count returns the total observation count (the +Inf bucket).
func (p *HistogramPoint) Count() int64 {
	if len(p.Cumulative) == 0 {
		return 0
	}
	return p.Cumulative[len(p.Cumulative)-1]
}

// Quantile interpolates the q-quantile from the cumulative buckets, with
// the same semantics as Histogram.Snapshot: linear interpolation inside
// the bucket, overflow saturates at the last finite bound, and an empty
// histogram reports the 0 sentinel.
func (p *HistogramPoint) Quantile(q float64) float64 {
	total := p.Count()
	if total <= 0 || len(p.Bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var prev int64
	for i, cum := range p.Cumulative {
		c := cum - prev
		prev = cum
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(p.Bounds) {
			return p.Bounds[len(p.Bounds)-1] // overflow: saturate at the last bound
		}
		lo := 0.0
		if i > 0 {
			lo = p.Bounds[i-1]
		}
		hi := p.Bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return p.Bounds[len(p.Bounds)-1]
}

// Export is the deterministic, exposition-grade view of a registry: every
// slice is sorted by metric name and histograms carry their full bucket
// state. The Prometheus exposition writer, the fleet federation merge and
// the SLO engine all consume this form (internal/obs).
type Export struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Counter returns the named counter's value.
func (e *Export) Counter(name string) (int64, bool) {
	for i := range e.Counters {
		if e.Counters[i].Name == name {
			return e.Counters[i].Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's value.
func (e *Export) Gauge(name string) (float64, bool) {
	for i := range e.Gauges {
		if e.Gauges[i].Name == name {
			return e.Gauges[i].Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram point.
func (e *Export) Histogram(name string) (*HistogramPoint, bool) {
	for i := range e.Histograms {
		if e.Histograms[i].Name == name {
			return &e.Histograms[i], true
		}
	}
	return nil, false
}

// Export captures every metric with full histogram bucket state, sorted
// by name (deterministic across calls and processes — no snapshot-diff
// churn, and a stable exposition ordering for scrapers).
func (r *Registry) Export() Export {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := Export{
		Counters:   make([]CounterPoint, 0, len(r.counters)),
		Gauges:     make([]GaugePoint, 0, len(r.gauges)),
		Histograms: make([]HistogramPoint, 0, len(r.hists)),
	}
	for name, c := range r.counters {
		e.Counters = append(e.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		e.Gauges = append(e.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		p := HistogramPoint{
			Name:       name,
			Bounds:     h.Bounds(),
			Cumulative: h.Cumulative(),
			Sum:        h.Sum(),
		}
		p.Exemplar = h.Snapshot().Exemplar
		e.Histograms = append(e.Histograms, p)
	}
	sort.Slice(e.Counters, func(i, j int) bool { return e.Counters[i].Name < e.Counters[j].Name })
	sort.Slice(e.Gauges, func(i, j int) bool { return e.Gauges[i].Name < e.Gauges[j].Name })
	sort.Slice(e.Histograms, func(i, j int) bool { return e.Histograms[i].Name < e.Histograms[j].Name })
	return e
}
