package tracing

import (
	"context"
	"fmt"
	"net/http"
)

// TraceparentHeader is the W3C Trace Context header carrying the trace
// identity across HTTP hops: version-traceid-spanid-flags.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a SpanContext as a W3C traceparent value.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-" + flags
}

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// isZero reports whether s is all '0' characters.
func isZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value. It never
// panics: malformed versions, lengths, separators, non-hex IDs, all-zero
// IDs and the forbidden version ff all return an error. Versions above 00
// are accepted when the 00-format prefix parses (future versions may
// append fields after another dash, which is tolerated).
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	// 00-{32 hex}-{16 hex}-{2 hex} = 55 bytes.
	if len(s) < 55 {
		return sc, fmt.Errorf("tracing: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("tracing: traceparent separators misplaced")
	}
	version, traceID, spanID, flagsField := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isLowerHex(version) {
		return sc, fmt.Errorf("tracing: bad traceparent version %q", version)
	}
	if version == "ff" {
		return sc, fmt.Errorf("tracing: forbidden traceparent version ff")
	}
	switch {
	case len(s) == 55:
		// exact 00-format length: fine for any version
	case version == "00":
		return sc, fmt.Errorf("tracing: version 00 traceparent has trailing bytes")
	case s[55] != '-':
		return sc, fmt.Errorf("tracing: traceparent extra fields must be dash-separated")
	}
	if !isLowerHex(traceID) || isZero(traceID) {
		return sc, fmt.Errorf("tracing: bad trace ID %q", traceID)
	}
	if !isLowerHex(spanID) || isZero(spanID) {
		return sc, fmt.Errorf("tracing: bad parent span ID %q", spanID)
	}
	if !isLowerHex(flagsField) {
		return sc, fmt.Errorf("tracing: bad trace flags %q", flagsField)
	}
	sc.TraceID = traceID
	sc.SpanID = spanID
	// Only the sampled bit of the flags byte is defined.
	sc.Sampled = hexNibble(flagsField[1])&0x1 == 1
	return sc, nil
}

// hexNibble decodes one already-validated lowercase hex digit.
func hexNibble(c byte) int {
	if c <= '9' {
		return int(c - '0')
	}
	return int(c-'a') + 10
}

// Extract reads the traceparent header into the context, so the next
// StartSpan continues the remote trace as a local root. A missing or
// malformed header leaves the context unchanged (a fresh trace starts
// downstream) — propagation must never fail a request.
func Extract(ctx context.Context, h http.Header) context.Context {
	sc, err := ParseTraceparent(h.Get(TraceparentHeader))
	if err != nil {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// Inject writes the context's active span (or, absent one, its extracted
// remote span context) into the traceparent header of an outgoing
// request. No span, no header.
func Inject(ctx context.Context, h http.Header) {
	if s := FromContext(ctx); s != nil {
		h.Set(TraceparentHeader, FormatTraceparent(s.Context()))
		return
	}
	if rc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		h.Set(TraceparentHeader, FormatTraceparent(rc))
	}
}
