// Package tracing is DiagNet's dependency-free request-tracing substrate:
// spans with trace/span IDs, W3C traceparent propagation over
// context.Context, deterministic head sampling, and a lock-cheap recorder
// that keeps a bounded ring of completed traces plus an always-keep ring
// of slow and error traces.
//
// Where internal/telemetry answers "how slow is the p99", tracing answers
// "which request, which batch, which stage": one trace follows a request
// across the whole multi-tier pipeline — agent probe round → analysis
// upload → admission queue → micro-batch fuse → core Diagnose stages —
// and the two close the loop through exemplars (telemetry histograms
// record the trace ID of tail observations, so a p99 line points at a
// concrete retrievable trace).
//
// Not to be confused with internal/trace, which records and replays probe
// *sessions* (measurement data); internal/tracing records request
// *executions* (causal timing).
//
// The hot path is built around nil no-op receivers, mirroring
// telemetry.StageClock: when tracing is disabled StartSpan returns a nil
// *Span and every method on it is a cheap no-op, so a disabled
// instrumentation site costs one atomic load and a branch.
package tracing

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"diagnet/internal/stats"
	"diagnet/internal/telemetry"
)

// Tracing-plane self-metrics: how many traces were kept, dropped by head
// sampling, or captured by the slow/error always-keep ring, and how many
// spans arrived after their trace was already finalized.
var (
	mTracesRecorded = telemetry.Default().Counter("tracing.traces.recorded")
	mTracesSlow     = telemetry.Default().Counter("tracing.traces.slow")
	mTracesError    = telemetry.Default().Counter("tracing.traces.error")
	mTracesSampled  = telemetry.Default().Counter("tracing.traces.dropped_unsampled")
	mSpansLate      = telemetry.Default().Counter("tracing.spans.late")
)

// Config tunes a Tracer. The zero value selects the documented defaults.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] (default 1).
	// The decision is deterministic in the trace ID, so every tier that
	// sees the same trace makes the same call; it gates admission to the
	// normal ring only — slow and error traces are always kept.
	SampleRate float64
	// SlowThreshold marks a completed trace as slow when its local root
	// span lasted longer (default 250ms). Slow traces bypass sampling and
	// land in the always-keep ring.
	SlowThreshold time.Duration
	// Capacity bounds the ring of completed sampled traces (default 256).
	Capacity int
	// SlowCapacity bounds the always-keep ring of slow/error traces
	// (default 64) — a burst of healthy traffic can never evict the
	// interesting traces.
	SlowCapacity int
	// MaxSpans bounds the spans kept per trace (default 512); spans beyond
	// it are counted, not stored. The local root is always kept on top of
	// the bound so a full trace stays attributable.
	MaxSpans int
}

// withDefaults fills zero fields. A negative SampleRate means 0.
func (c Config) withDefaults() Config {
	if c.SampleRate == 0 {
		c.SampleRate = 1
	}
	if c.SampleRate < 0 {
		c.SampleRate = 0
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SlowCapacity <= 0 {
		c.SlowCapacity = 64
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Tracer creates spans and records completed traces. Safe for concurrent
// use.
type Tracer struct {
	enabled atomic.Bool
	cfg     atomic.Pointer[Config]
	rec     recorder
}

// NewTracer returns a tracer with the given configuration, enabled.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{}
	t.Configure(cfg)
	t.enabled.Store(true)
	return t
}

// std is the process-wide tracer every pipeline layer records into,
// mirroring telemetry.Default().
var std = NewTracer(Config{})

// Default returns the process-wide tracer.
func Default() *Tracer { return std }

// Configure replaces the tracer's tuning (sampling, thresholds, ring
// capacities). Intended for process startup; already-recorded traces and
// open spans keep the bounds they started with.
func (t *Tracer) Configure(cfg Config) {
	cfg = cfg.withDefaults()
	t.cfg.Store(&cfg)
	t.rec.resize(cfg.Capacity, cfg.SlowCapacity)
}

// SetEnabled switches span creation on or off. Disabled, StartSpan
// returns a nil span and the whole instrumentation path reduces to one
// atomic load and a branch per call site.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether spans are being created.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetEnabled switches the process-wide tracer.
func SetEnabled(on bool) { std.SetEnabled(on) }

// Configure tunes the process-wide tracer.
func Configure(cfg Config) { std.Configure(cfg) }

// idRand generates trace and span IDs from a private locked source
// instead of the global math/rand one: ID draws interleaved with other
// components' global draws would shift every seeded sequence in the
// process, so a deterministic soak run could never replay. Randomly
// seeded at init; SeedIDs pins it for reproducible runs.
var idRand = stats.NewLocked(time.Now().UnixNano())

// SeedIDs makes trace/span ID generation deterministic from the given
// seed — for seeded soak and replay runs where the whole process must be
// reproducible. IDs from one process are then only unique relative to
// that seed; production keeps the random default.
func SeedIDs(seed int64) { idRand.Reseed(seed) }

// newTraceID draws a random non-zero 16-byte trace ID.
func newTraceID() [16]byte {
	var id [16]byte
	for {
		binary.BigEndian.PutUint64(id[:8], idRand.Uint64())
		binary.BigEndian.PutUint64(id[8:], idRand.Uint64())
		if id != ([16]byte{}) {
			return id
		}
	}
}

// newSpanID draws a random non-zero 8-byte span ID.
func newSpanID() string {
	var id [8]byte
	for {
		binary.BigEndian.PutUint64(id[:], idRand.Uint64())
		if id != ([8]byte{}) {
			return hex.EncodeToString(id[:])
		}
	}
}

// sampled is the deterministic head-sampling decision for a trace ID: the
// ID's first 8 bytes, read as a uint64, are compared against the rate.
// Every tier computes the same verdict for the same trace.
func sampled(id [16]byte, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return float64(binary.BigEndian.Uint64(id[:8])) < rate*math.MaxUint64
}

// spanKey carries the active *Span in a context.
type spanKey struct{}

// remoteKey carries an extracted remote SpanContext in a context.
type remoteKey struct{}

// SpanContext identifies one span for propagation and linking.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Sampled bool   `json:"-"`
}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the active span, or nil when the context carries
// none (every Span method is nil-safe, so callers need not check).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanEvent is a timestamped annotation inside a span.
type SpanEvent struct {
	OffsetMs float64 `json:"offset_ms"` // since span start
	Name     string  `json:"name"`
}

// SpanData is the immutable record of one completed span.
type SpanData struct {
	TraceID    string         `json:"trace_id"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []SpanEvent    `json:"events,omitempty"`
	Links      []SpanContext  `json:"links,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// Span is one timed operation inside a trace. A nil *Span (tracing
// disabled, or no span in the context) no-ops on every method. A span's
// mutating methods are safe for concurrent use, though spans normally
// have a single owner.
type Span struct {
	buf   *traceBuf
	start time.Time
	ended atomic.Bool

	mu   sync.Mutex
	data SpanData
}

// StartSpan opens a span on the process-wide tracer. See Tracer.StartSpan.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return std.StartSpan(ctx, name)
}

// StartSpan opens a span named name: a child of the context's active span
// when there is one, otherwise a local root — continuing the trace of an
// extracted traceparent when the context carries one, or starting a fresh
// trace. It returns the context carrying the new span. When tracing is
// disabled it returns (ctx, nil) unchanged.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !t.enabled.Load() {
		return ctx, nil
	}
	now := time.Now()
	if parent := FromContext(ctx); parent != nil {
		s := &Span{buf: parent.buf, start: now}
		s.data = SpanData{
			TraceID:  parent.data.TraceID,
			SpanID:   newSpanID(),
			ParentID: parent.data.SpanID,
			Name:     name,
			Start:    now,
		}
		return context.WithValue(ctx, spanKey{}, s), s
	}

	cfg := t.cfg.Load()
	var id [16]byte
	parentID := ""
	remoteSampled := false
	if rc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		if raw, err := hex.DecodeString(rc.TraceID); err == nil && len(raw) == 16 {
			copy(id[:], raw)
			parentID = rc.SpanID
			remoteSampled = rc.Sampled
		}
	}
	if id == ([16]byte{}) {
		id = newTraceID()
	}
	buf := &traceBuf{
		tracer:  t,
		sampled: remoteSampled || sampled(id, cfg.SampleRate),
		max:     cfg.MaxSpans,
	}
	s := &Span{buf: buf, start: now}
	s.data = SpanData{
		TraceID:  hex.EncodeToString(id[:]),
		SpanID:   newSpanID(),
		ParentID: parentID,
		Name:     name,
		Start:    now,
	}
	buf.root = s
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceID returns the span's hex trace ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// Context returns the span's identity for propagation and linking.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID, Sampled: s.buf.sampled}
}

// SetAttr attaches one key/value attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]any{}
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// AddEvent records a timestamped annotation.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	off := float64(time.Since(s.start).Nanoseconds()) / 1e6
	s.mu.Lock()
	s.data.Events = append(s.data.Events, SpanEvent{OffsetMs: off, Name: name})
	s.mu.Unlock()
}

// Link attaches a reference to a span in another trace (a micro-batch
// span links the request spans it fused, and vice versa).
func (s *Span) Link(ref SpanContext) {
	if s == nil || ref.TraceID == "" {
		return
	}
	s.mu.Lock()
	s.data.Links = append(s.data.Links, SpanContext{TraceID: ref.TraceID, SpanID: ref.SpanID})
	s.mu.Unlock()
}

// SetError marks the span (and therefore its trace) as failed; error
// traces bypass head sampling into the always-keep ring.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// Child records an already-completed child span from explicit start/end
// stamps — how the core pipeline turns its StageClock laps into stage
// spans without re-plumbing contexts through every stage.
func (s *Span) Child(name string, start, end time.Time) {
	if s == nil {
		return
	}
	s.buf.add(SpanData{
		TraceID:    s.data.TraceID,
		SpanID:     newSpanID(),
		ParentID:   s.data.SpanID,
		Name:       name,
		Start:      start,
		DurationMs: float64(end.Sub(start).Nanoseconds()) / 1e6,
	})
}

// End completes the span. Ending the local root finalizes the trace into
// the recorder; spans ending after that are counted as late and dropped.
// End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.mu.Lock()
	s.data.DurationMs = float64(time.Since(s.start).Nanoseconds()) / 1e6
	data := s.data
	s.mu.Unlock()
	s.buf.finish(s, data)
}

// StageSpans mirrors telemetry.StageClock for spans: each Mark records
// the lap since the previous mark as a completed child span of the parent
// span. A nil receiver (nil parent span) no-ops.
type StageSpans struct {
	sp   *Span
	last time.Time
}

// Stages opens a stage-span recorder on s, or nil when s is nil.
func (s *Span) Stages() *StageSpans {
	if s == nil {
		return nil
	}
	return &StageSpans{sp: s, last: time.Now()}
}

// Mark records the lap since the previous mark as a child span named name.
func (st *StageSpans) Mark(name string) {
	if st == nil {
		return
	}
	now := time.Now()
	st.sp.Child(name, st.last, now)
	st.last = now
}

// traceBuf accumulates the completed spans of one local trace. The local
// root span owns it; when the root ends the buffer is sealed and handed
// to the recorder.
type traceBuf struct {
	tracer  *Tracer
	root    *Span
	sampled bool
	max     int

	mu      sync.Mutex
	spans   []SpanData
	done    bool
	dropped int
}

// add appends one completed span, honoring the per-trace bound.
func (b *traceBuf) add(data SpanData) {
	b.mu.Lock()
	switch {
	case b.done:
		b.mu.Unlock()
		mSpansLate.Inc()
		return
	case len(b.spans) >= b.max:
		b.dropped++
	default:
		b.spans = append(b.spans, data)
	}
	b.mu.Unlock()
}

// finish records one ended span; the root's finish seals the trace and
// hands it to the recorder.
func (b *traceBuf) finish(s *Span, data SpanData) {
	b.mu.Lock()
	if b.done {
		b.mu.Unlock()
		mSpansLate.Inc()
		return
	}
	if len(b.spans) >= b.max && s != b.root {
		b.dropped++
	} else {
		b.spans = append(b.spans, data)
	}
	if s != b.root {
		b.mu.Unlock()
		return
	}
	b.done = true
	spans := b.spans
	dropped := b.dropped
	b.mu.Unlock()

	cfg := b.tracer.cfg.Load()
	rec := &TraceRecord{
		TraceID:      data.TraceID,
		Root:         data.Name,
		Start:        data.Start,
		DurationMs:   data.DurationMs,
		Slow:         time.Duration(data.DurationMs*1e6) > cfg.SlowThreshold,
		DroppedSpans: dropped,
		Spans:        spans,
	}
	for i := range spans {
		if spans[i].Error != "" {
			rec.Error = true
			break
		}
	}
	switch {
	case rec.Slow || rec.Error:
		if rec.Slow {
			mTracesSlow.Inc()
		}
		if rec.Error {
			mTracesError.Inc()
		}
		mTracesRecorded.Inc()
		b.tracer.rec.keep(rec, true)
	case b.sampled:
		mTracesRecorded.Inc()
		b.tracer.rec.keep(rec, false)
	default:
		mTracesSampled.Inc()
	}
}
