package tracing

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSpanRecording hammers one tracer from many goroutines —
// concurrent children of a shared root, concurrent independent roots,
// concurrent reads — and is meaningful under -race (the CI test job runs
// with it): the recorder claims lock-cheap, not lock-free, and this is
// the proof it is actually safe.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := newTestTracer(Config{Capacity: 32, SlowCapacity: 8, MaxSpans: 64})

	rootCtx, root := tr.StartSpan(context.Background(), "shared-root")
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// children of the shared root, racing into one traceBuf
				cctx, c := tr.StartSpan(rootCtx, fmt.Sprintf("child-%d", g))
				c.SetAttr("iter", i)
				c.AddEvent("tick")
				_, gc := tr.StartSpan(cctx, "leaf")
				gc.End()
				if i%5 == 0 {
					c.SetError(errors.New("synthetic"))
				}
				c.End()

				// independent root traces, racing into the rings
				_, r := tr.StartSpan(context.Background(), "solo")
				r.Child("retro", time.Now().Add(-time.Millisecond), time.Now())
				r.End()

				// concurrent reads of both rings
				tr.Traces()
				tr.Trace(root.TraceID())
			}
		}(g)
	}
	wg.Wait()
	root.End()

	rec, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatal("shared trace not kept")
	}
	if len(rec.Spans) == 0 || len(rec.Spans) > 64+1 { // MaxSpans children + the root
		t.Fatalf("span bound violated: %d", len(rec.Spans))
	}
	if got := tr.Traces(); len(got) > 32+8 {
		t.Fatalf("ring bound violated: %d traces listed", len(got))
	}
}

func TestMergedGetForTwoLocalRoots(t *testing.T) {
	// One process hosting both tiers (examples, tests): the agent's root
	// and the server's extracted local root share a trace ID and must
	// merge on retrieval.
	tr := newTestTracer(Config{})
	_, agent := tr.StartSpan(context.Background(), "agent.round")
	id := agent.TraceID()

	sctx := context.WithValue(context.Background(), remoteKey{},
		SpanContext{TraceID: id, SpanID: agent.Context().SpanID, Sampled: true})
	_, server := tr.StartSpan(sctx, "http.diagnose")
	server.End()
	agent.End()

	rec, ok := tr.Trace(id)
	if !ok {
		t.Fatal("merged trace not found")
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("want both tiers' spans, got %d", len(rec.Spans))
	}
	tree := rec.Tree()
	if len(tree) != 1 {
		t.Fatalf("server span should nest under the agent root, got %d roots", len(tree))
	}
}

func TestEvictionUnindexes(t *testing.T) {
	tr := newTestTracer(Config{Capacity: 1, SlowCapacity: 1})
	_, a := tr.StartSpan(context.Background(), "a")
	aID := a.TraceID()
	a.End()
	_, b := tr.StartSpan(context.Background(), "b")
	bID := b.TraceID()
	b.End()
	if _, ok := tr.Trace(aID); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.Trace(bID); !ok {
		t.Fatal("live trace lost")
	}
}

func TestConfigureResetsRings(t *testing.T) {
	tr := newTestTracer(Config{})
	_, s := tr.StartSpan(context.Background(), "old")
	s.End()
	tr.Configure(Config{Capacity: 8})
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("Configure kept %d stale traces", got)
	}
}
