package tracing

import (
	"context"
	"io"
	"log/slog"
)

// NewLogHandler is the shared slog handler setup for DiagNet commands: a
// text or JSON handler on w, wrapped so every record logged with a
// context carrying a span (or an extracted remote span context) is
// stamped with trace_id and span_id — the join key between logs and the
// traces served by GET /v1/traces.
func NewLogHandler(w io.Writer, format string) slog.Handler {
	var inner slog.Handler
	if format == "json" {
		inner = slog.NewJSONHandler(w, nil)
	} else {
		inner = slog.NewTextHandler(w, nil)
	}
	return CorrelateHandler(inner)
}

// NewLogger is NewLogHandler wrapped in a *slog.Logger.
func NewLogger(w io.Writer, format string) *slog.Logger {
	return slog.New(NewLogHandler(w, format))
}

// CorrelateHandler wraps any slog.Handler with trace correlation.
func CorrelateHandler(inner slog.Handler) slog.Handler { return &correlHandler{inner: inner} }

type correlHandler struct {
	inner slog.Handler
}

func (h *correlHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *correlHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil {
		r.AddAttrs(slog.String("trace_id", s.data.TraceID), slog.String("span_id", s.data.SpanID))
	} else if rc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		r.AddAttrs(slog.String("trace_id", rc.TraceID), slog.String("span_id", rc.SpanID))
	}
	return h.inner.Handle(ctx, r)
}

func (h *correlHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &correlHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *correlHandler) WithGroup(name string) slog.Handler {
	return &correlHandler{inner: h.inner.WithGroup(name)}
}
