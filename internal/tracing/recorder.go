package tracing

import (
	"sort"
	"sync"
	"time"
)

// TraceRecord is one completed trace: the root span's identity plus every
// span recorded before the root ended (flat; Tree nests them).
type TraceRecord struct {
	TraceID      string     `json:"trace_id"`
	Root         string     `json:"root"`
	Start        time.Time  `json:"start"`
	DurationMs   float64    `json:"duration_ms"`
	Error        bool       `json:"error"`
	Slow         bool       `json:"slow"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// TraceSummary is the listing view of one completed trace.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Error      bool      `json:"error"`
	Slow       bool      `json:"slow"`
}

// SpanNode is one span with its children — the JSON span tree served by
// GET /v1/traces/{id}.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree nests the record's spans by parent ID. Spans whose parent is
// remote or was dropped surface as roots, earliest first; siblings are
// ordered by start time.
func (r *TraceRecord) Tree() []*SpanNode {
	nodes := make(map[string]*SpanNode, len(r.Spans))
	for i := range r.Spans {
		nodes[r.Spans[i].SpanID] = &SpanNode{SpanData: r.Spans[i]}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*SpanNode)
	sortNodes = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// recorder keeps completed traces in two FIFO rings: sampled traces, and
// the always-keep ring of slow/error traces. Recording is one mutex
// acquisition per completed *trace* (not per span), so the cost stays off
// the per-request path.
type recorder struct {
	mu   sync.Mutex
	ring ringBuf
	slow ringBuf
	byID map[string][]*TraceRecord
}

// ringBuf is a fixed-capacity FIFO of trace records.
type ringBuf struct {
	recs []*TraceRecord
	next int
	size int
}

// add stores rec, returning the record it evicted (nil when none).
func (rb *ringBuf) add(rec *TraceRecord) *TraceRecord {
	if len(rb.recs) == 0 {
		return rec // capacity 0: drop immediately
	}
	old := rb.recs[rb.next]
	rb.recs[rb.next] = rec
	rb.next = (rb.next + 1) % len(rb.recs)
	if rb.size < len(rb.recs) {
		rb.size++
		return nil
	}
	return old
}

// resize re-allocates the rings (startup-time configuration; existing
// records are discarded).
func (r *recorder) resize(capacity, slowCapacity int) {
	r.mu.Lock()
	r.ring = ringBuf{recs: make([]*TraceRecord, capacity)}
	r.slow = ringBuf{recs: make([]*TraceRecord, slowCapacity)}
	r.byID = make(map[string][]*TraceRecord)
	r.mu.Unlock()
}

// keep stores one completed trace, evicting the oldest of its ring.
func (r *recorder) keep(rec *TraceRecord, alwaysKeep bool) {
	r.mu.Lock()
	var evicted *TraceRecord
	if alwaysKeep {
		evicted = r.slow.add(rec)
	} else {
		evicted = r.ring.add(rec)
	}
	if evicted != nil && evicted != rec {
		r.unindex(evicted)
	}
	if evicted != rec {
		r.byID[rec.TraceID] = append(r.byID[rec.TraceID], rec)
	}
	r.mu.Unlock()
}

// unindex removes one record pointer from the by-ID index.
func (r *recorder) unindex(rec *TraceRecord) {
	recs := r.byID[rec.TraceID]
	for i, c := range recs {
		if c == rec {
			recs = append(recs[:i], recs[i+1:]...)
			break
		}
	}
	if len(recs) == 0 {
		delete(r.byID, rec.TraceID)
	} else {
		r.byID[rec.TraceID] = recs
	}
}

// Traces lists every kept trace, newest first. See Tracer.Traces.
func (r *recorder) list() []TraceSummary {
	r.mu.Lock()
	out := make([]TraceSummary, 0, r.ring.size+r.slow.size)
	for _, rb := range []*ringBuf{&r.slow, &r.ring} {
		for _, rec := range rb.recs {
			if rec == nil {
				continue
			}
			out = append(out, TraceSummary{
				TraceID:    rec.TraceID,
				Root:       rec.Root,
				Start:      rec.Start,
				DurationMs: rec.DurationMs,
				Spans:      len(rec.Spans),
				Error:      rec.Error,
				Slow:       rec.Slow,
			})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// get returns the kept trace with the given ID. Multiple local roots of
// the same trace (an in-process agent + server sharing one tracer) merge
// into a single record.
func (r *recorder) get(id string) (*TraceRecord, bool) {
	r.mu.Lock()
	recs := r.byID[id]
	if len(recs) == 0 {
		r.mu.Unlock()
		return nil, false
	}
	merged := &TraceRecord{TraceID: id}
	for _, rec := range recs {
		if merged.Start.IsZero() || rec.Start.Before(merged.Start) {
			merged.Root = rec.Root
			merged.Start = rec.Start
		}
		if rec.DurationMs > merged.DurationMs {
			merged.DurationMs = rec.DurationMs
		}
		merged.Error = merged.Error || rec.Error
		merged.Slow = merged.Slow || rec.Slow
		merged.DroppedSpans += rec.DroppedSpans
		merged.Spans = append(merged.Spans, rec.Spans...)
	}
	r.mu.Unlock()
	return merged, true
}

// Traces lists the tracer's kept traces, newest first: the always-keep
// slow/error ring plus the sampled ring.
func (t *Tracer) Traces() []TraceSummary { return t.rec.list() }

// Trace returns the kept trace with the given hex ID.
func (t *Tracer) Trace(id string) (*TraceRecord, bool) { return t.rec.get(id) }
