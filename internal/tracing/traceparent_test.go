package tracing

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func validTraceparent() string {
	return "00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01"
}

func TestParseTraceparentValid(t *testing.T) {
	sc, err := ParseTraceparent(validTraceparent())
	if err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if sc.TraceID != strings.Repeat("ab", 16) || sc.SpanID != strings.Repeat("cd", 8) || !sc.Sampled {
		t.Fatalf("bad parse: %+v", sc)
	}
	// flags 00 → unsampled
	sc, err = ParseTraceparent(strings.TrimSuffix(validTraceparent(), "01") + "00")
	if err != nil || sc.Sampled {
		t.Fatalf("unsampled flags mishandled: %+v %v", sc, err)
	}
	// future version with a trailing field is tolerated
	future := "cc-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01-extradata"
	if _, err := ParseTraceparent(future); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := []string{
		"",
		"00",
		"00-short-short-01",
		"ff-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01",       // forbidden version
		"00-" + strings.Repeat("00", 16) + "-" + strings.Repeat("cd", 8) + "-01",       // zero trace ID
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("00", 8) + "-01",       // zero span ID
		"00-" + strings.Repeat("AB", 16) + "-" + strings.Repeat("cd", 8) + "-01",       // uppercase hex
		"00-" + strings.Repeat("zz", 16) + "-" + strings.Repeat("cd", 8) + "-01",       // non-hex
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01-extra", // v00 with trailer
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-zz",       // bad flags
		"00x" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01",       // bad separator
		"cc-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01xtrail", // future version, no dash
		strings.Repeat("-", 55),
	}
	for _, c := range cases {
		if _, err := ParseTraceparent(c); err == nil {
			t.Errorf("accepted invalid traceparent %q", c)
		}
	}
}

// FuzzParseTraceparent mirrors FuzzHandleDiagnose: any byte soup must
// yield a clean error, never a panic or an accepted zero identity.
func FuzzParseTraceparent(f *testing.F) {
	f.Add(validTraceparent())
	f.Add("")
	f.Add("00---")
	f.Add("ff-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01")
	f.Add("00-" + strings.Repeat("00", 16) + "-" + strings.Repeat("00", 8) + "-00")
	f.Add(strings.Repeat("0", 55))
	f.Add("01-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01-more-fields")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if len(sc.TraceID) != 32 || len(sc.SpanID) != 16 {
			t.Fatalf("accepted malformed identity %+v from %q", sc, s)
		}
		if isZero(sc.TraceID) || isZero(sc.SpanID) {
			t.Fatalf("accepted zero identity from %q", s)
		}
	})
}

func TestInjectExtractRoundTrip(t *testing.T) {
	tr := newTestTracer(Config{})
	ctx, s := tr.StartSpan(context.Background(), "client")
	h := http.Header{}
	Inject(ctx, h)
	got := h.Get(TraceparentHeader)
	if got == "" {
		t.Fatal("no traceparent injected")
	}
	sc, err := ParseTraceparent(got)
	if err != nil {
		t.Fatalf("injected header does not parse: %v", err)
	}
	if sc.TraceID != s.TraceID() {
		t.Fatalf("trace ID mangled: %s vs %s", sc.TraceID, s.TraceID())
	}

	// Server side: extract then start — the local root continues the trace.
	sctx := Extract(context.Background(), h)
	_, server := tr.StartSpan(sctx, "server")
	if server.TraceID() != s.TraceID() {
		t.Fatalf("trace not continued across the hop")
	}
	server.End()
	s.End()
}

func TestInjectWithoutSpan(t *testing.T) {
	h := http.Header{}
	Inject(context.Background(), h)
	if h.Get(TraceparentHeader) != "" {
		t.Fatal("header injected without a span")
	}
	// A context carrying only an extracted remote identity still forwards it.
	rh := http.Header{}
	rh.Set(TraceparentHeader, validTraceparent())
	rctx := Extract(context.Background(), rh)
	h2 := http.Header{}
	Inject(rctx, h2)
	if h2.Get(TraceparentHeader) == "" {
		t.Fatal("remote identity not forwarded")
	}
}

func TestExtractMalformedLeavesContext(t *testing.T) {
	h := http.Header{}
	h.Set(TraceparentHeader, "garbage")
	ctx := Extract(context.Background(), h)
	if _, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		t.Fatal("malformed header stored a remote context")
	}
}
