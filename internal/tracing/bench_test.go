package tracing

import (
	"context"
	"testing"
)

// BenchmarkStartSpan prices one span at the library level: the disabled
// variant is the cost every instrumentation site pays when tracing is
// off (one atomic load + branch — this must stay in the low nanoseconds
// for the ≤2% end-to-end budget, measured against a full Diagnose by
// BenchmarkDiagnoseTracing in internal/core), the recording variant is
// the per-span cost when a trace is being captured.
func BenchmarkStartSpan(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		tr := NewTracer(Config{})
		tr.SetEnabled(false)
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s := tr.StartSpan(ctx, "op")
			s.End()
		}
	})
	b.Run("recording", func(b *testing.B) {
		tr := NewTracer(Config{Capacity: 16})
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s := tr.StartSpan(ctx, "op")
			s.End()
		}
	})
	b.Run("recording-child", func(b *testing.B) {
		tr := NewTracer(Config{Capacity: 16, MaxSpans: 8})
		rctx, root := tr.StartSpan(context.Background(), "root")
		defer root.End()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, s := tr.StartSpan(rctx, "child")
			s.End()
		}
	})
}
