package tracing

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// newTestTracer returns an isolated tracer (tests must not pollute the
// process-wide recorder that examples and the analysis plane read).
func newTestTracer(cfg Config) *Tracer { return NewTracer(cfg) }

func TestSpanNesting(t *testing.T) {
	tr := newTestTracer(Config{})
	ctx, root := tr.StartSpan(context.Background(), "root")
	if root == nil {
		t.Fatal("enabled tracer returned nil span")
	}
	ctx2, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(ctx2, "grandchild")
	grand.SetAttr("k", 42)
	grand.AddEvent("went-deep")
	grand.End()
	child.End()
	root.End()

	rec, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not kept", root.TraceID())
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(rec.Spans))
	}
	tree := rec.Tree()
	if len(tree) != 1 || tree[0].Name != "root" {
		t.Fatalf("bad tree roots: %+v", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "child" {
		t.Fatalf("bad child level: %+v", tree[0].Children)
	}
	gc := tree[0].Children[0].Children
	if len(gc) != 1 || gc[0].Name != "grandchild" {
		t.Fatalf("bad grandchild level: %+v", gc)
	}
	if gc[0].Attrs["k"] != 42 {
		t.Fatalf("attr lost: %v", gc[0].Attrs)
	}
	if len(gc[0].Events) != 1 || gc[0].Events[0].Name != "went-deep" {
		t.Fatalf("event lost: %v", gc[0].Events)
	}
}

func TestNilSpanNoops(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.AddEvent("e")
	s.SetError(errors.New("x"))
	s.Link(SpanContext{TraceID: "t", SpanID: "s"})
	s.Child("c", time.Now(), time.Now())
	s.End()
	s.Stages().Mark("stage")
	if s.TraceID() != "" {
		t.Fatal("nil span has a trace ID")
	}
	if got := (s.Context()); got != (SpanContext{}) {
		t.Fatalf("nil span context: %+v", got)
	}
}

func TestDisabledTracerReturnsNil(t *testing.T) {
	tr := newTestTracer(Config{})
	tr.SetEnabled(false)
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("disabled tracer returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled tracer stored a span in the context")
	}
}

func TestErrorTraceAlwaysKept(t *testing.T) {
	// SampleRate 0 drops every healthy trace; the error trace must survive.
	tr := newTestTracer(Config{SampleRate: -1}) // -1 → clamped to 0
	_, healthy := tr.StartSpan(context.Background(), "healthy")
	healthyID := healthy.TraceID()
	healthy.End()
	if _, ok := tr.Trace(healthyID); ok {
		t.Fatal("unsampled healthy trace was kept")
	}
	_, s := tr.StartSpan(context.Background(), "failing")
	s.SetError(errors.New("boom"))
	id := s.TraceID()
	s.End()
	rec, ok := tr.Trace(id)
	if !ok || !rec.Error {
		t.Fatalf("error trace not kept (ok=%v rec=%+v)", ok, rec)
	}
}

func TestSlowTraceAlwaysKept(t *testing.T) {
	tr := newTestTracer(Config{SampleRate: -1, SlowThreshold: time.Nanosecond})
	_, s := tr.StartSpan(context.Background(), "slow")
	id := s.TraceID()
	time.Sleep(50 * time.Microsecond)
	s.End()
	rec, ok := tr.Trace(id)
	if !ok || !rec.Slow {
		t.Fatalf("slow trace not kept (ok=%v)", ok)
	}
}

func TestDeterministicSampling(t *testing.T) {
	// The same trace ID must get the same verdict at any rate, and the
	// accept fraction should roughly match the rate.
	id := newTraceID()
	for i := 0; i < 3; i++ {
		if sampled(id, 0.5) != sampled(id, 0.5) {
			t.Fatal("sampling not deterministic")
		}
	}
	accepted := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if sampled(newTraceID(), 0.25) {
			accepted++
		}
	}
	if frac := float64(accepted) / n; frac < 0.18 || frac > 0.32 {
		t.Fatalf("accept fraction %.3f far from rate 0.25", frac)
	}
	if !sampled(id, 1) || sampled(id, 0) {
		t.Fatal("rate extremes broken")
	}
}

func TestRingEviction(t *testing.T) {
	tr := newTestTracer(Config{Capacity: 2, SlowCapacity: 1})
	var ids []string
	for i := 0; i < 4; i++ {
		_, s := tr.StartSpan(context.Background(), "r")
		ids = append(ids, s.TraceID())
		s.End()
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Fatal("oldest trace survived a full ring")
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("recent trace %s evicted", id)
		}
	}
	if got := len(tr.Traces()); got != 2 {
		t.Fatalf("want 2 listed traces, got %d", got)
	}
}

func TestMaxSpansBound(t *testing.T) {
	tr := newTestTracer(Config{MaxSpans: 4})
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 10; i++ {
		_, c := tr.StartSpan(ctx, "child")
		c.End()
	}
	root.End()
	rec, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatal("trace not kept")
	}
	// 4 children fill the bound, 6 more are dropped; the root itself is
	// always kept so the record stays attributable.
	if len(rec.Spans) != 5 {
		t.Fatalf("span bound not enforced: %d spans", len(rec.Spans))
	}
	if rec.DroppedSpans != 6 {
		t.Fatalf("want 6 dropped spans, got %d", rec.DroppedSpans)
	}
}

func TestLateSpanDropped(t *testing.T) {
	tr := newTestTracer(Config{})
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, straggler := tr.StartSpan(ctx, "straggler")
	root.End()
	straggler.End() // after finalize: must not corrupt the record
	rec, _ := tr.Trace(root.TraceID())
	if len(rec.Spans) != 1 {
		t.Fatalf("late span leaked into the record: %d spans", len(rec.Spans))
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	tr := newTestTracer(Config{})
	sc := SpanContext{
		TraceID: strings.Repeat("ab", 16),
		SpanID:  strings.Repeat("cd", 8),
		Sampled: true,
	}
	ctx := context.WithValue(context.Background(), remoteKey{}, sc)
	_, s := tr.StartSpan(ctx, "server-side")
	if s.TraceID() != sc.TraceID {
		t.Fatalf("trace ID not continued: %s", s.TraceID())
	}
	s.End()
	rec, ok := tr.Trace(sc.TraceID)
	if !ok {
		t.Fatal("remote-sampled trace not kept")
	}
	if rec.Spans[0].ParentID != sc.SpanID {
		t.Fatalf("remote parent lost: %q", rec.Spans[0].ParentID)
	}
}

func TestStageSpans(t *testing.T) {
	tr := newTestTracer(Config{})
	_, s := tr.StartSpan(context.Background(), "op")
	st := s.Stages()
	st.Mark("phase1")
	st.Mark("phase2")
	s.End()
	rec, _ := tr.Trace(s.TraceID())
	var names []string
	for _, sp := range rec.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "phase1") || !strings.Contains(joined, "phase2") {
		t.Fatalf("stage spans missing: %v", names)
	}
}

func TestTraceRecordJSONRoundTrip(t *testing.T) {
	tr := newTestTracer(Config{})
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, c := tr.StartSpan(ctx, "child")
	c.SetAttr("n", 1.5)
	c.End()
	root.End()
	rec, _ := tr.Trace(root.TraceID())
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back TraceRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.TraceID != rec.TraceID || len(back.Spans) != 2 {
		t.Fatalf("round trip mangled record: %+v", back)
	}
}
