// Package collector implements the client-side agent of Fig. 1: a client
// that periodically probes its landmarks, tracks per-feature baselines
// online, keeps a bounded history window, and emits a diagnosis request
// when its QoE degrades. The paper's prototype runs this loop inside an
// automated Chromium browser (§IV-A-c); here it is a plain Go agent over a
// pluggable measurement source (the simulator or the live HTTP prober).
package collector

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync/atomic"
	"time"

	"diagnet/internal/stats"
	"diagnet/internal/telemetry"
)

// Collector metrics (DESIGN.md §10), shared by every agent in the process
// — a deployment running several agents sums into one event budget.
var (
	mSteps   = telemetry.Default().Counter("collector.steps")
	mEvents  = telemetry.Default().Counter("collector.events")
	mDropped = telemetry.Default().Counter("collector.dropped")
)

// Source abstracts where measurements come from: the simulator, a live
// prober, or a replayed trace.
type Source interface {
	// Sample returns the raw feature vector observed at a tick.
	Sample(tick int64) []float64
	// Degraded reports whether the client's QoE is degraded at the tick.
	Degraded(tick int64) bool
}

// Baseline maintains per-feature online statistics (Welford) and flags
// features that deviate from their own history — a cheap pre-filter that
// annotates diagnosis requests with locally anomalous features.
type Baseline struct {
	features int
	warmup   int
	online   []stats.Online
}

// NewBaseline tracks `features` features; anomalies are only reported
// after `warmup` updates.
func NewBaseline(features, warmup int) *Baseline {
	if warmup < 2 {
		warmup = 2
	}
	return &Baseline{features: features, warmup: warmup, online: make([]stats.Online, features)}
}

// Update folds a sample into the baseline.
func (b *Baseline) Update(x []float64) {
	if len(x) != b.features {
		panic(fmt.Sprintf("collector: baseline got %d features, want %d", len(x), b.features))
	}
	for i, v := range x {
		b.online[i].Add(v)
	}
}

// Ready reports whether the warm-up phase is over.
func (b *Baseline) Ready() bool { return b.online[0].N() >= b.warmup }

// ZScores returns each feature's deviation from its own history in
// standard deviations (0 when the feature has no variance yet).
func (b *Baseline) ZScores(x []float64) []float64 {
	z := make([]float64, b.features)
	for i, v := range x {
		sd := b.online[i].StdDev()
		if sd > 1e-12 {
			z[i] = (v - b.online[i].Mean()) / sd
		}
	}
	return z
}

// Anomalies returns the indices of features whose |z| exceeds the
// threshold, or nil during warm-up.
func (b *Baseline) Anomalies(x []float64, threshold float64) []int {
	if !b.Ready() {
		return nil
	}
	var out []int
	for i, z := range b.ZScores(x) {
		if math.Abs(z) >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// Event is one QoE degradation observed by the agent: the snapshot to
// diagnose plus the locally anomalous features.
type Event struct {
	Tick      int64
	Features  []float64
	Anomalies []int // indices flagged by the baseline pre-filter
	// Seq is the event's journal sequence number when the agent runs
	// with an EventLog (0 otherwise). Consumers pass it to EventLog.Ack
	// once the event is safely handed off.
	Seq uint64
}

// Config tunes the agent.
type Config struct {
	// Window bounds the sample history (default 96 ≈ one simulated day).
	Window int
	// Warmup samples before anomaly flagging (default 12).
	Warmup int
	// ZThreshold for the anomaly pre-filter (default 3).
	ZThreshold float64
	// Log, when set, journals degradation events before they are emitted
	// (crash-safe buffering): Run replays the unacknowledged backlog at
	// startup and journals every new event before sending it. Consumers
	// acknowledge with Log.Ack(ev.Seq).
	Log *EventLog
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 96
	}
	if c.Warmup <= 0 {
		c.Warmup = 12
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3
	}
	return c
}

// Agent is the periodic probing loop. Not safe for concurrent use; drive
// it from one goroutine (Run does).
type Agent struct {
	source   Source
	cfg      Config
	baseline *Baseline
	history  [][]float64
	ticks    []int64
	steps    int
	events   int
	dropped  atomic.Int64 // events lost to a full out channel (Run)
}

// NewAgent builds an agent over a measurement source producing `features`
// features per sample.
func NewAgent(source Source, features int, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	return &Agent{
		source:   source,
		cfg:      cfg,
		baseline: NewBaseline(features, cfg.Warmup),
	}
}

// Step performs one probing round at the given tick. It returns a
// diagnosis event when the QoE is degraded. Nominal samples feed the
// baseline; degraded ones do not (they would poison it).
func (a *Agent) Step(tick int64) (Event, bool) {
	a.steps++
	mSteps.Inc()
	x := a.source.Sample(tick)
	a.history = append(a.history, x)
	a.ticks = append(a.ticks, tick)
	if len(a.history) > a.cfg.Window {
		a.history = a.history[1:]
		a.ticks = a.ticks[1:]
	}
	if a.source.Degraded(tick) {
		a.events++
		mEvents.Inc()
		return Event{Tick: tick, Features: x, Anomalies: a.baseline.Anomalies(x, a.cfg.ZThreshold)}, true
	}
	a.baseline.Update(x)
	return Event{}, false
}

// Run probes every interval until the context ends, sending events to out.
// It never blocks on a slow consumer: events are dropped (and counted, see
// Stats) if out is full — though a journaled drop (cfg.Log) is still
// replayable after a restart, so nothing acknowledged to the journal is
// truly lost.
//
// With cfg.Log set, Run first replays the journal's unacknowledged
// backlog into out (crash recovery), then journals each new event before
// emitting it.
func (a *Agent) Run(ctx context.Context, interval time.Duration, startTick int64, out chan<- Event) {
	if a.cfg.Log != nil {
		recovered, err := a.cfg.Log.Recovered()
		if err != nil {
			log.Printf("collector: event journal replay: %v", err)
		}
		for _, ev := range recovered {
			select {
			case out <- ev:
			case <-ctx.Done():
				return
			}
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	tick := startTick
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if ev, degraded := a.Step(tick); degraded {
				if a.cfg.Log != nil {
					if err := a.cfg.Log.Append(&ev); err != nil {
						log.Printf("collector: event journal append: %v", err)
					}
				}
				select {
				case out <- ev:
				default:
					mDropped.Inc()
					if a.dropped.Add(1) == 1 {
						log.Printf("collector: event channel full at tick %d; dropping (counted in Stats)", ev.Tick)
					}
				}
			}
			tick++
		}
	}
}

// History returns the retained samples (oldest first) and their ticks.
func (a *Agent) History() ([][]float64, []int64) { return a.history, a.ticks }

// Stats returns how many steps ran, how many degradations were seen, and
// how many events Run dropped because the consumer was too slow.
func (a *Agent) Stats() (steps, events, dropped int) {
	return a.steps, a.events, int(a.dropped.Load())
}
