package collector

import (
	"context"
	"testing"
	"time"

	"diagnet/internal/durable"
	"diagnet/internal/telemetry"
)

// degradedSource degrades on every tick in the set.
type degradedSource struct{ degraded map[int64]bool }

func (s degradedSource) Sample(tick int64) []float64 { return []float64{float64(tick), 1} }
func (s degradedSource) Degraded(tick int64) bool    { return s.degraded[tick] }

func TestEventLogAppendAckRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Tick: 4, Features: []float64{1, 2}, Anomalies: []int{0}},
		{Tick: 9, Features: []float64{3, 4}},
		{Tick: 12, Features: []float64{5, 6}, Anomalies: []int{1}},
	}
	for i := range events {
		if err := l.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Ack(events[1].Seq); err != nil {
		t.Fatal(err)
	}
	l.Close()

	before := telemetry.Default().Counter("collector.recovered_events").Value()
	l2, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recovered, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 || recovered[0].Tick != 4 || recovered[1].Tick != 12 {
		t.Fatalf("recovered = %+v", recovered)
	}
	if recovered[0].Anomalies[0] != 0 || recovered[0].Features[1] != 2 {
		t.Fatalf("event payload corrupted: %+v", recovered[0])
	}
	if got := telemetry.Default().Counter("collector.recovered_events").Value() - before; got != 2 {
		t.Fatalf("recovered_events counter advanced by %d, want 2", got)
	}
}

func TestEventLogCrashMidAppendKeepsAcknowledged(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	acked := Event{Tick: 1, Features: []float64{1}}
	if err := l.Append(&acked); err != nil {
		t.Fatal(err)
	}
	durable.SetCrashPoint(durable.CrashMidAppend)
	defer durable.ClearCrashPoint()
	crashed := false
	func() {
		defer durable.RecoverCrash(&crashed)
		torn := Event{Tick: 2, Features: []float64{2}}
		l.Append(&torn)
	}()
	if !crashed {
		t.Fatal("crash point did not fire")
	}
	l2, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recovered, err := l2.Recovered()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Tick != 1 {
		t.Fatalf("want only the fsync-acknowledged event, got %+v", recovered)
	}
}

func TestAgentRunJournalsAndReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	src := degradedSource{degraded: map[int64]bool{2: true, 4: true}}
	a := NewAgent(src, 2, Config{Log: l})
	out := make(chan Event, 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx, time.Millisecond, 0, out)
		close(done)
	}()
	var got []Event
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-out:
			got = append(got, ev)
		case <-deadline:
			t.Fatal("timed out waiting for events")
		}
	}
	cancel()
	<-done
	l.Close()

	// The consumer never acked: a "restarted" agent replays both events
	// before probing resumes.
	l2, err := OpenEventLog(dir, durable.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	a2 := NewAgent(degradedSource{degraded: map[int64]bool{}}, 2, Config{Log: l2})
	out2 := make(chan Event, 8)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go a2.Run(ctx2, time.Hour, 100, out2) // huge interval: only the replay emits
	for i, want := range got {
		select {
		case ev := <-out2:
			if ev.Tick != want.Tick {
				t.Fatalf("replayed event %d tick = %d, want %d", i, ev.Tick, want.Tick)
			}
			if err := l2.Ack(ev.Seq); err != nil {
				t.Fatalf("ack replayed event: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("replay did not emit")
		}
	}
	if l2.Backlog() != 0 {
		t.Fatalf("backlog %d after acking everything", l2.Backlog())
	}
}
