package collector

import (
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/qoe"
	"diagnet/internal/services"
	"diagnet/internal/stats"
)

// SimSource adapts the simulator as a measurement source for one client
// watching one service. Faults can be scheduled per tick.
type SimSource struct {
	World   *netsim.World
	Client  int
	Service services.Service
	Layout  probe.Layout
	// FaultsAt returns the faults active at a tick (nil for none).
	FaultsAt func(tick int64) []netsim.Fault
	Seed     int64

	q *qoe.Model
}

// NewSimSource builds a source; faultsAt may be nil (never any fault).
func NewSimSource(w *netsim.World, client int, svc services.Service, layout probe.Layout, faultsAt func(int64) []netsim.Fault, seed int64) *SimSource {
	return &SimSource{
		World: w, Client: client, Service: svc, Layout: layout,
		FaultsAt: faultsAt, Seed: seed, q: qoe.New(w),
	}
}

func (s *SimSource) env(tick int64) netsim.Env {
	e := netsim.Env{Tick: tick}
	if s.FaultsAt != nil {
		e.Faults = s.FaultsAt(tick)
	}
	return e
}

// Sample implements Source.
func (s *SimSource) Sample(tick int64) []float64 {
	prober := probe.Prober{W: s.World}
	return prober.Sample(s.Client, s.Layout, s.env(tick), stats.NewRand(s.Seed, tick))
}

// Degraded implements Source.
func (s *SimSource) Degraded(tick int64) bool {
	return s.q.Degraded(s.Client, s.Service, s.env(tick))
}
