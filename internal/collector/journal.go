package collector

import (
	"encoding/json"
	"fmt"

	"diagnet/internal/durable"
	"diagnet/internal/telemetry"
)

// mRecovered counts events replayed from the journal after a restart —
// the "nothing buffered was lost" signal (DESIGN.md §13).
var mRecovered = telemetry.Default().Counter("collector.recovered_events")

// EventLog journals degradation events so buffered samples survive a
// crash of the agent process: an event is journaled before it is handed
// to the consumer, and acknowledged (Ack) only once the consumer is done
// with it — a restart replays exactly the unacknowledged suffix.
// Segments are bounded; Compact rewrites the backlog when the acked
// prefix dominates.
type EventLog struct {
	q *durable.Queue
}

// OpenEventLog opens (creating if needed) an event journal in dir. The
// recovered backlog is available via Recovered until the next Append.
func OpenEventLog(dir string, policy durable.FsyncPolicy) (*EventLog, error) {
	q, err := durable.OpenQueue(dir, durable.Options{
		Fsync:        policy,
		SegmentBytes: 256 << 10, // events are small; keep segments fine-grained
	})
	if err != nil {
		return nil, err
	}
	l := &EventLog{q: q}
	mRecovered.Add(int64(q.Len()))
	return l, nil
}

// Append journals one event and stamps its sequence number into ev.
func (l *EventLog) Append(ev *Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	seq, err := l.q.Append(payload)
	if err != nil {
		return err
	}
	ev.Seq = seq
	return nil
}

// Ack marks an event as consumed; acked events are never replayed.
func (l *EventLog) Ack(seq uint64) error { return l.q.Ack(seq) }

// Recovered returns the journaled-but-unacknowledged events in append
// order — after a restart, the backlog a crash interrupted.
func (l *EventLog) Recovered() ([]Event, error) {
	items := l.q.Pending()
	out := make([]Event, 0, len(items))
	for _, it := range items {
		var ev Event
		if err := json.Unmarshal(it.Payload, &ev); err != nil {
			return out, fmt.Errorf("collector: undecodable journaled event seq %d: %w", it.Seq, err)
		}
		ev.Seq = it.Seq
		out = append(out, ev)
	}
	return out, nil
}

// Backlog returns the unacknowledged event count.
func (l *EventLog) Backlog() int { return l.q.Len() }

// Compact rewrites the journal down to the unacknowledged backlog.
func (l *EventLog) Compact() error { return l.q.Compact() }

// Close syncs and closes the journal.
func (l *EventLog) Close() error { return l.q.Close() }
