package collector

import (
	"context"
	"testing"
	"time"

	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/services"
)

func newSimSource(faultsAt func(int64) []netsim.Fault) (*SimSource, probe.Layout) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	layout := probe.FullLayout()
	svc := services.Service{ID: 0, Kind: services.ImageLocal, Host: netsim.GRAV}
	return NewSimSource(w, netsim.AMST, svc, layout, faultsAt, 5), layout
}

func TestBaselineFlagsInjectedAnomaly(t *testing.T) {
	faultFrom := int64(50)
	src, layout := newSimSource(func(tick int64) []netsim.Fault {
		if tick >= faultFrom {
			return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
		}
		return nil
	})
	agent := NewAgent(src, layout.NumFeatures(), Config{Warmup: 10, ZThreshold: 4})

	// Warm up on nominal ticks.
	for tick := int64(0); tick < faultFrom; tick++ {
		if _, degraded := agent.Step(tick); degraded {
			t.Fatalf("degraded during nominal warm-up at tick %d", tick)
		}
	}
	// The loss fault must both degrade QoE and be flagged by the baseline.
	ev, degraded := agent.Step(faultFrom)
	if !degraded {
		t.Fatal("loss fault did not trigger an event")
	}
	lossIdx := layout.FeatureIndex(layout.LandmarkPos(netsim.GRAV), probe.MetricLoss)
	found := false
	for _, j := range ev.Anomalies {
		if j == lossIdx {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline anomalies %v miss the loss feature %d", ev.Anomalies, lossIdx)
	}
}

func TestBaselineWarmup(t *testing.T) {
	b := NewBaseline(3, 5)
	if b.Ready() {
		t.Fatal("ready before any update")
	}
	for i := 0; i < 5; i++ {
		b.Update([]float64{1, 2, 3})
	}
	if !b.Ready() {
		t.Fatal("not ready after warmup")
	}
	// Constant features: zero variance, no anomalies even for new values.
	if z := b.ZScores([]float64{1, 2, 3}); z[0] != 0 || z[1] != 0 {
		t.Fatal("z-scores on constant history should be 0")
	}
}

func TestBaselineZScores(t *testing.T) {
	b := NewBaseline(1, 2)
	for _, v := range []float64{0, 1, 0, 1, 0, 1, 0, 1} {
		b.Update([]float64{v})
	}
	// mean 0.5, std 0.5 → value 3 is z=5.
	z := b.ZScores([]float64{3})
	if z[0] < 4.9 || z[0] > 5.1 {
		t.Fatalf("z = %v, want 5", z[0])
	}
	if got := b.Anomalies([]float64{3}, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("anomalies %v", got)
	}
	if got := b.Anomalies([]float64{0.5}, 4); got != nil {
		t.Fatalf("nominal flagged: %v", got)
	}
}

func TestBaselineWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewBaseline(2, 2).Update([]float64{1})
}

func TestAgentWindowBounded(t *testing.T) {
	src, layout := newSimSource(nil)
	agent := NewAgent(src, layout.NumFeatures(), Config{Window: 10})
	for tick := int64(0); tick < 50; tick++ {
		agent.Step(tick)
	}
	hist, ticks := agent.History()
	if len(hist) != 10 || len(ticks) != 10 {
		t.Fatalf("history %d/%d, want 10", len(hist), len(ticks))
	}
	if ticks[0] != 40 || ticks[9] != 49 {
		t.Fatalf("ring buffer kept wrong ticks: %v", ticks)
	}
	steps, events, dropped := agent.Stats()
	if steps != 50 || events != 0 || dropped != 0 {
		t.Fatalf("stats %d/%d/%d", steps, events, dropped)
	}
}

func TestAgentDegradedSamplesDoNotPoisonBaseline(t *testing.T) {
	// Alternate nominal and faulty ticks; the baseline must reflect only
	// nominal ones so the anomaly stays detectable throughout.
	src, layout := newSimSource(func(tick int64) []netsim.Fault {
		if tick%2 == 1 && tick > 30 {
			return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
		}
		return nil
	})
	agent := NewAgent(src, layout.NumFeatures(), Config{Warmup: 10, ZThreshold: 4})
	lossIdx := layout.FeatureIndex(layout.LandmarkPos(netsim.GRAV), probe.MetricLoss)
	flagged := 0
	total := 0
	for tick := int64(0); tick < 100; tick++ {
		ev, degraded := agent.Step(tick)
		if degraded {
			total++
			for _, j := range ev.Anomalies {
				if j == lossIdx {
					flagged++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no degradations")
	}
	if flagged < total*9/10 {
		t.Fatalf("loss feature flagged on %d/%d events; baseline poisoned?", flagged, total)
	}
}

func TestAgentRunDropsOnFullChannel(t *testing.T) {
	// Every tick degrades; with an unbuffered, never-drained channel the
	// agent must keep stepping rather than block.
	src, layout := newSimSource(func(tick int64) []netsim.Fault {
		return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
	})
	agent := NewAgent(src, layout.NumFeatures(), Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	out := make(chan Event) // nobody reads
	done := make(chan struct{})
	go func() {
		agent.Run(ctx, time.Millisecond, 0, out)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run blocked on a full channel")
	}
	steps, events, dropped := agent.Stats()
	if steps < 10 || events < 10 {
		t.Fatalf("agent stalled: %d steps, %d events", steps, events)
	}
	// Nobody read the channel, so every degradation event was dropped
	// and the drop counter must say so.
	if dropped == 0 {
		t.Fatal("drops not counted")
	}
	if dropped > events {
		t.Fatalf("%d drops for %d events", dropped, events)
	}
}

func TestAgentRunWithContext(t *testing.T) {
	src, layout := newSimSource(func(tick int64) []netsim.Fault {
		return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
	})
	agent := NewAgent(src, layout.NumFeatures(), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan Event, 4)
	done := make(chan struct{})
	go func() {
		agent.Run(ctx, time.Millisecond, 0, out)
		close(done)
	}()
	select {
	case <-out:
	case <-time.After(2 * time.Second):
		t.Fatal("no event within deadline")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}
