// Package eval provides the evaluation metrics of the paper: Recall@k over
// ranked root-cause lists (§IV-C), and accuracy/F1/confusion matrices for
// the coarse classifier (§IV-D).
package eval

import (
	"fmt"
	"math"
	"sort"

	"diagnet/internal/stats"
)

// RankOf returns the 1-based rank of target within scores, using mid-rank
// tie handling: one plus the number of strictly greater entries plus half
// the number of equal entries. Mid-ranking keeps the metric deterministic
// without crediting a model for ranking many causes identically (a model
// that ties 30 causes at the top must not get Recall@1 credit for all of
// them).
func RankOf(scores []float64, target int) int {
	if target < 0 || target >= len(scores) {
		panic(fmt.Sprintf("eval: target %d out of %d scores", target, len(scores)))
	}
	greater, equal := 0, 0
	for i, s := range scores {
		if i == target {
			continue
		}
		switch {
		case s > scores[target]:
			greater++
		case s == scores[target]:
			equal++
		}
	}
	return 1 + greater + equal/2
}

// RecallAtK returns the fraction of ranks ≤ k.
func RecallAtK(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	hit := 0
	for _, r := range ranks {
		if r <= k {
			hit++
		}
	}
	return float64(hit) / float64(len(ranks))
}

// RecallCurve returns Recall@1..Recall@maxK.
func RecallCurve(ranks []int, maxK int) []float64 {
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = RecallAtK(ranks, k)
	}
	return out
}

// MRR returns the mean reciprocal rank, a rank-position-sensitive summary
// complementing Recall@k.
func MRR(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var s float64
	for _, r := range ranks {
		s += 1 / float64(r)
	}
	return s / float64(len(ranks))
}

// BootstrapRecallCI returns a percentile bootstrap confidence interval for
// Recall@k: `iters` resamples of the rank list, interval [alpha/2,
// 1-alpha/2]. Deterministic for a given seed.
func BootstrapRecallCI(ranks []int, k, iters int, alpha float64, seed int64) (lo, hi float64) {
	if len(ranks) == 0 {
		return 0, 0
	}
	if iters <= 0 {
		iters = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	rng := stats.NewRand(seed, 0)
	estimates := make([]float64, iters)
	resample := make([]int, len(ranks))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = ranks[rng.Intn(len(ranks))]
		}
		estimates[it] = RecallAtK(resample, k)
	}
	sort.Float64s(estimates)
	lo = stats.PercentileSorted(estimates, 100*alpha/2)
	hi = stats.PercentileSorted(estimates, 100*(1-alpha/2))
	return lo, hi
}

// Confusion is a square confusion matrix over class indices.
type Confusion struct {
	Classes int
	Counts  [][]int // Counts[truth][pred]
	N       int
}

// NewConfusion creates an empty matrix over `classes` classes.
func NewConfusion(classes int) *Confusion {
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add records one (truth, prediction) pair.
func (c *Confusion) Add(truth, pred int) {
	c.Counts[truth][pred]++
	c.N++
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	if c.N == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(c.N)
}

// AccuracyStdErr returns the binomial standard error of the accuracy, the
// ± the paper quotes for the coarse classifier (Fig. 7).
func (c *Confusion) AccuracyStdErr() float64 {
	if c.N == 0 {
		return 0
	}
	p := c.Accuracy()
	return math.Sqrt(p * (1 - p) / float64(c.N))
}

// Precision returns TP/(TP+FP) for a class (0 when the class was never
// predicted).
func (c *Confusion) Precision(class int) float64 {
	tp := c.Counts[class][class]
	predicted := 0
	for i := 0; i < c.Classes; i++ {
		predicted += c.Counts[i][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall returns TP/(TP+FN) for a class (0 when the class never occurred).
func (c *Confusion) Recall(class int) float64 {
	tp := c.Counts[class][class]
	actual := 0
	for j := 0; j < c.Classes; j++ {
		actual += c.Counts[class][j]
	}
	if actual == 0 {
		return 0
	}
	return float64(tp) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over the classes that actually occur.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	var n int
	for class := 0; class < c.Classes; class++ {
		actual := 0
		for j := 0; j < c.Classes; j++ {
			actual += c.Counts[class][j]
		}
		if actual == 0 {
			continue
		}
		sum += c.F1(class)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Support returns how many samples of the class occurred.
func (c *Confusion) Support(class int) int {
	n := 0
	for j := 0; j < c.Classes; j++ {
		n += c.Counts[class][j]
	}
	return n
}
