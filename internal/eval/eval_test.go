package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRankOf(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.05}
	if RankOf(scores, 1) != 1 {
		t.Fatal("best score should rank 1")
	}
	if RankOf(scores, 2) != 2 {
		t.Fatal("second best should rank 2")
	}
	if RankOf(scores, 3) != 4 {
		t.Fatal("worst should rank 4")
	}
}

func TestRankOfTiesShareBestRank(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.1}
	if RankOf(scores, 0) != 1 || RankOf(scores, 1) != 1 {
		t.Fatal("tied leaders must both rank 1")
	}
}

func TestRankOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RankOf([]float64{1}, 3)
}

func TestRecallAtK(t *testing.T) {
	ranks := []int{1, 3, 2, 10, 1}
	if got := RecallAtK(ranks, 1); got != 0.4 {
		t.Fatalf("Recall@1 = %v", got)
	}
	if got := RecallAtK(ranks, 3); got != 0.8 {
		t.Fatalf("Recall@3 = %v", got)
	}
	if got := RecallAtK(ranks, 10); got != 1 {
		t.Fatalf("Recall@10 = %v", got)
	}
	if RecallAtK(nil, 5) != 0 {
		t.Fatal("empty ranks")
	}
}

func TestRecallCurveMonotone(t *testing.T) {
	ranks := []int{1, 2, 5, 4, 3, 2, 7}
	curve := RecallCurve(ranks, 7)
	if len(curve) != 7 {
		t.Fatal("curve length")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("recall curve must be nondecreasing")
		}
	}
	if curve[6] != 1 {
		t.Fatal("curve should saturate")
	}
}

func TestConfusionAccuracyAndF1(t *testing.T) {
	c := NewConfusion(3)
	// class 0: 2 correct, 1 mistaken as class 1
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(0, 1)
	// class 1: 1 correct
	c.Add(1, 1)
	// class 2: 1 mistaken as 0
	c.Add(2, 0)
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	// class 0: precision 2/3, recall 2/3, F1 2/3
	if got := c.F1(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1(0) = %v", got)
	}
	// class 1: precision 1/2, recall 1, F1 = 2/3
	if got := c.F1(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1(1) = %v", got)
	}
	// class 2: never predicted → F1 0
	if c.F1(2) != 0 {
		t.Fatal("F1(2) should be 0")
	}
	if c.Support(0) != 3 || c.Support(2) != 1 {
		t.Fatal("support wrong")
	}
	if c.N != 5 {
		t.Fatal("N wrong")
	}
}

func TestMacroF1SkipsAbsentClasses(t *testing.T) {
	c := NewConfusion(4)
	c.Add(0, 0)
	c.Add(1, 1)
	// classes 2, 3 never occur.
	if got := c.MacroF1(); got != 1 {
		t.Fatalf("MacroF1 = %v", got)
	}
	if NewConfusion(2).MacroF1() != 0 {
		t.Fatal("empty MacroF1")
	}
}

func TestAccuracyStdErr(t *testing.T) {
	c := NewConfusion(2)
	for i := 0; i < 50; i++ {
		c.Add(0, 0)
		c.Add(1, 0)
	}
	se := c.AccuracyStdErr()
	want := math.Sqrt(0.5 * 0.5 / 100)
	if math.Abs(se-want) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", se, want)
	}
	if NewConfusion(2).AccuracyStdErr() != 0 {
		t.Fatal("empty stderr")
	}
}

func TestBootstrapRecallCI(t *testing.T) {
	// Mixed ranks: true recall@1 = 0.5; CI must bracket it and be
	// deterministic per seed.
	ranks := make([]int, 200)
	for i := range ranks {
		if i%2 == 0 {
			ranks[i] = 1
		} else {
			ranks[i] = 9
		}
	}
	lo, hi := BootstrapRecallCI(ranks, 1, 500, 0.05, 7)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("CI [%v, %v] misses the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI [%v, %v] implausibly wide for n=200", lo, hi)
	}
	lo2, hi2 := BootstrapRecallCI(ranks, 1, 500, 0.05, 7)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic per seed")
	}
	// Degenerate input.
	if lo, hi := BootstrapRecallCI(nil, 1, 10, 0.05, 1); lo != 0 || hi != 0 {
		t.Fatal("empty CI")
	}
	// Perfect ranks: CI collapses to [1, 1].
	lo, hi = BootstrapRecallCI([]int{1, 1, 1, 1}, 1, 100, 0.05, 2)
	if lo != 1 || hi != 1 {
		t.Fatalf("perfect CI [%v, %v]", lo, hi)
	}
}

func TestMRR(t *testing.T) {
	if MRR(nil) != 0 {
		t.Fatal("empty MRR")
	}
	got := MRR([]int{1, 2, 4})
	want := (1 + 0.5 + 0.25) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MRR = %v, want %v", got, want)
	}
	if MRR([]int{1, 1}) != 1 {
		t.Fatal("perfect MRR")
	}
}

// Property: Recall@K equals 1 when K ≥ max rank, and RankOf is within
// [1, len].
func TestRankBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, target := range []int{0, len(raw) - 1} {
			_ = i
			r := RankOf(raw, target)
			if r < 1 || r > len(raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
