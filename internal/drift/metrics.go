package drift

import "diagnet/internal/telemetry"

// Drift-detector metrics (DESIGN.md §15): the live verdict mirrored as
// gauges every time Status() runs, plus a counter of stable→drifted
// transitions. Before this the detector was invisible at runtime — the
// retraining signal existed only for whoever happened to poll /v1/drift.
var (
	mPSI         = telemetry.Default().Gauge("drift.psi")
	mConfDelta   = telemetry.Default().Gauge("drift.confidence_delta")
	mSamplesLive = telemetry.Default().Gauge("drift.samples_live")
	mSamplesRef  = telemetry.Default().Gauge("drift.samples_ref")
	mDrifted     = telemetry.Default().Gauge("drift.drifted")
	mSignals     = telemetry.Default().Counter("drift.signals")
)
