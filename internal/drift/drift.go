// Package drift watches a deployed DiagNet model for distribution drift.
// The paper's premise is that Internet topologies and services evolve
// continuously (§II-A); a model trained last month may silently stop
// fitting. The detector compares the model's live coarse-prediction
// distribution and confidence against a reference window captured at
// deployment time, using the population stability index (PSI) and a
// confidence drop, and raises a retraining signal when either exceeds its
// threshold.
package drift

import (
	"fmt"
	"math"

	"diagnet/internal/stats"
)

// Config tunes the detector.
type Config struct {
	// WindowSize is the number of live predictions compared against the
	// reference (default 200).
	WindowSize int
	// PSIThreshold raises the drift signal (conventional rule of thumb:
	// <0.1 stable, 0.1–0.25 moderate, >0.25 major; default 0.25).
	PSIThreshold float64
	// ConfidenceDrop raises the signal when the mean top-1 probability
	// falls this far below the reference mean (default 0.15).
	ConfidenceDrop float64
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 200
	}
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = 0.25
	}
	if c.ConfidenceDrop <= 0 {
		c.ConfidenceDrop = 0.15
	}
	return c
}

// Detector accumulates coarse predictions. Feed it with Observe; Snapshot
// the reference right after deployment; Status reports drift. Not safe for
// concurrent use.
type Detector struct {
	cfg     Config
	classes int

	refCounts []float64
	refConf   stats.Online
	refSet    bool

	liveCounts []float64
	liveConf   []float64 // ring of recent top-1 confidences
	livePreds  []int     // ring of recent arg-max classes
	pos        int
	filled     bool
}

// NewDetector creates a detector over `classes` coarse classes.
func NewDetector(classes int, cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:        cfg,
		classes:    classes,
		refCounts:  make([]float64, classes),
		liveCounts: make([]float64, classes),
		liveConf:   make([]float64, cfg.WindowSize),
		livePreds:  make([]int, cfg.WindowSize),
	}
}

// Observe folds one coarse prediction (softmax distribution) into the
// detector.
func (d *Detector) Observe(coarse []float64) {
	if len(coarse) != d.classes {
		panic(fmt.Sprintf("drift: %d classes, want %d", len(coarse), d.classes))
	}
	arg := 0
	for k, p := range coarse {
		if p > coarse[arg] {
			arg = k
		}
	}
	if !d.refSet {
		d.refCounts[arg]++
		d.refConf.Add(coarse[arg])
		return
	}
	// Live ring buffer.
	if d.filled {
		old := d.livePreds[d.pos]
		d.liveCounts[old]--
	}
	d.livePreds[d.pos] = arg
	d.liveConf[d.pos] = coarse[arg]
	d.liveCounts[arg]++
	d.pos++
	if d.pos == d.cfg.WindowSize {
		d.pos = 0
		d.filled = true
	}
}

// Freeze captures the reference distribution: observations so far become
// the baseline and subsequent ones feed the live window.
func (d *Detector) Freeze() {
	d.refSet = true
}

// liveN returns the live-window sample count.
func (d *Detector) liveN() int {
	if d.filled {
		return d.cfg.WindowSize
	}
	return d.pos
}

// Status is the detector's verdict.
type Status struct {
	PSI            float64
	RefConfidence  float64
	LiveConfidence float64
	SamplesRef     int
	SamplesLive    int
	Drifted        bool
	Reason         string
}

// Status computes the current drift verdict. It needs a frozen reference
// and at least a half-full live window.
func (d *Detector) Status() Status {
	s := Status{
		RefConfidence: d.refConf.Mean(),
		SamplesRef:    d.refConf.N(),
		SamplesLive:   d.liveN(),
	}
	if !d.refSet || s.SamplesLive < d.cfg.WindowSize/2 {
		s.Reason = "insufficient data"
		return s
	}
	var liveConfSum float64
	for i := 0; i < s.SamplesLive; i++ {
		liveConfSum += d.liveConf[i]
	}
	s.LiveConfidence = liveConfSum / float64(s.SamplesLive)
	s.PSI = psi(d.refCounts, d.liveCounts[:])

	switch {
	case s.PSI > d.cfg.PSIThreshold:
		s.Drifted = true
		s.Reason = fmt.Sprintf("prediction distribution shifted (PSI %.3f > %.3f)", s.PSI, d.cfg.PSIThreshold)
	case s.RefConfidence-s.LiveConfidence > d.cfg.ConfidenceDrop:
		s.Drifted = true
		s.Reason = fmt.Sprintf("confidence dropped %.2f → %.2f", s.RefConfidence, s.LiveConfidence)
	default:
		s.Reason = "stable"
	}
	return s
}

// psi computes the population stability index between two count vectors,
// with epsilon smoothing for empty buckets.
func psi(ref, live []float64) float64 {
	const eps = 1e-4
	var refN, liveN float64
	for i := range ref {
		refN += ref[i]
		liveN += live[i]
	}
	if refN == 0 || liveN == 0 {
		return 0
	}
	var out float64
	for i := range ref {
		p := math.Max(ref[i]/refN, eps)
		q := math.Max(live[i]/liveN, eps)
		out += (q - p) * math.Log(q/p)
	}
	return out
}
