// Package drift watches a deployed DiagNet model for distribution drift.
// The paper's premise is that Internet topologies and services evolve
// continuously (§II-A); a model trained last month may silently stop
// fitting. The detector compares the model's live coarse-prediction
// distribution and confidence against a reference window captured at
// deployment time, using the population stability index (PSI) and a
// confidence drop, and raises a retraining signal when either exceeds its
// threshold.
package drift

import (
	"fmt"
	"math"
	"time"

	"diagnet/internal/stats"
)

// Config tunes the detector.
type Config struct {
	// WindowSize is the number of live predictions compared against the
	// reference (default 200).
	WindowSize int
	// PSIThreshold raises the drift signal (conventional rule of thumb:
	// <0.1 stable, 0.1–0.25 moderate, >0.25 major; default 0.25).
	PSIThreshold float64
	// ConfidenceDrop raises the signal when the mean top-1 probability
	// falls this far below the reference mean (default 0.15).
	ConfidenceDrop float64
	// Now supplies the clock for signal timestamps (default time.Now);
	// injectable for deterministic tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 200
	}
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = 0.25
	}
	if c.ConfidenceDrop <= 0 {
		c.ConfidenceDrop = 0.15
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Detector accumulates coarse predictions. Feed it with Observe; Snapshot
// the reference right after deployment; Status reports drift. Not safe for
// concurrent use.
type Detector struct {
	cfg     Config
	classes int

	refCounts []float64
	refConf   stats.Online
	refSet    bool

	liveCounts []float64
	liveConf   []float64 // ring of recent top-1 confidences
	livePreds  []int     // ring of recent arg-max classes
	pos        int
	filled     bool

	// autoFreeze, when positive, freezes the reference automatically once
	// that many reference observations have accumulated (Reset arms it for
	// unattended re-baselining after a model promotion).
	autoFreeze int
	// Signal bookkeeping: a "signal" is a Status() call whose verdict
	// flips from stable to drifted. wasDrifted dedups repeated drifted
	// verdicts so one episode counts once.
	wasDrifted bool
	signals    int64
	lastSignal time.Time
}

// NewDetector creates a detector over `classes` coarse classes.
func NewDetector(classes int, cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:        cfg,
		classes:    classes,
		refCounts:  make([]float64, classes),
		liveCounts: make([]float64, classes),
		liveConf:   make([]float64, cfg.WindowSize),
		livePreds:  make([]int, cfg.WindowSize),
	}
}

// Observe folds one coarse prediction (softmax distribution) into the
// detector.
func (d *Detector) Observe(coarse []float64) {
	if len(coarse) != d.classes {
		panic(fmt.Sprintf("drift: %d classes, want %d", len(coarse), d.classes))
	}
	arg := 0
	for k, p := range coarse {
		if p > coarse[arg] {
			arg = k
		}
	}
	if !d.refSet {
		d.refCounts[arg]++
		d.refConf.Add(coarse[arg])
		if d.autoFreeze > 0 && d.refConf.N() >= d.autoFreeze {
			d.Freeze()
		}
		return
	}
	// Live ring buffer.
	if d.filled {
		old := d.livePreds[d.pos]
		d.liveCounts[old]--
	}
	d.livePreds[d.pos] = arg
	d.liveConf[d.pos] = coarse[arg]
	d.liveCounts[arg]++
	d.pos++
	if d.pos == d.cfg.WindowSize {
		d.pos = 0
		d.filled = true
	}
}

// Freeze captures the reference distribution: observations so far become
// the baseline and subsequent ones feed the live window.
func (d *Detector) Freeze() {
	d.refSet = true
	d.autoFreeze = 0
}

// Reset discards both the reference and the live window so the detector
// can re-baseline against a new model's prediction distribution (the
// continual-learning plane calls this right after a promotion: the old
// reference describes the old model and would read the legitimate change
// of decision function as drift). When autoFreezeAfter > 0 the new
// reference freezes itself once that many observations have accumulated;
// 0 re-arms the previous window size, and a caller that wants a manual
// Freeze can pass a negative value.
func (d *Detector) Reset(autoFreezeAfter int) {
	if autoFreezeAfter == 0 {
		autoFreezeAfter = d.cfg.WindowSize
	}
	if autoFreezeAfter < 0 {
		autoFreezeAfter = 0
	}
	d.refSet = false
	d.autoFreeze = autoFreezeAfter
	d.refConf = stats.Online{}
	for i := range d.refCounts {
		d.refCounts[i] = 0
	}
	for i := range d.liveCounts {
		d.liveCounts[i] = 0
	}
	d.pos = 0
	d.filled = false
	d.wasDrifted = false
}

// WindowSize returns the configured live-window size.
func (d *Detector) WindowSize() int { return d.cfg.WindowSize }

// liveN returns the live-window sample count.
func (d *Detector) liveN() int {
	if d.filled {
		return d.cfg.WindowSize
	}
	return d.pos
}

// Status is the detector's verdict.
type Status struct {
	PSI            float64
	RefConfidence  float64
	LiveConfidence float64
	// ConfidenceDelta is RefConfidence − LiveConfidence (positive when the
	// model has become less sure than it was at baseline).
	ConfidenceDelta float64
	SamplesRef      int
	SamplesLive     int
	// WindowSize is the configured live-window size; WindowFilled reports
	// whether the live ring has wrapped at least once.
	WindowSize   int
	WindowFilled bool
	// Frozen reports whether a reference baseline has been captured.
	Frozen  bool
	Drifted bool
	Reason  string
	// Signals counts stable→drifted transitions since creation (or the
	// last Reset); LastSignal is the wall-clock time of the latest one
	// (zero if none).
	Signals    int64     `json:",omitempty"`
	LastSignal time.Time `json:",omitempty"`
}

// Status computes the current drift verdict. It needs a frozen reference
// and at least a half-full live window.
func (d *Detector) Status() Status {
	s := Status{
		RefConfidence: d.refConf.Mean(),
		SamplesRef:    d.refConf.N(),
		SamplesLive:   d.liveN(),
		WindowSize:    d.cfg.WindowSize,
		WindowFilled:  d.filled,
		Frozen:        d.refSet,
		Signals:       d.signals,
		LastSignal:    d.lastSignal,
	}
	defer s.publish()
	if !d.refSet || s.SamplesLive < d.cfg.WindowSize/2 {
		s.Reason = "insufficient data"
		return s
	}
	var liveConfSum float64
	for i := 0; i < s.SamplesLive; i++ {
		liveConfSum += d.liveConf[i]
	}
	s.LiveConfidence = liveConfSum / float64(s.SamplesLive)
	s.ConfidenceDelta = s.RefConfidence - s.LiveConfidence
	s.PSI = psi(d.refCounts, d.liveCounts[:])

	switch {
	case s.PSI > d.cfg.PSIThreshold:
		s.Drifted = true
		s.Reason = fmt.Sprintf("prediction distribution shifted (PSI %.3f > %.3f)", s.PSI, d.cfg.PSIThreshold)
	case s.ConfidenceDelta > d.cfg.ConfidenceDrop:
		s.Drifted = true
		s.Reason = fmt.Sprintf("confidence dropped %.2f → %.2f", s.RefConfidence, s.LiveConfidence)
	default:
		s.Reason = "stable"
	}
	if s.Drifted && !d.wasDrifted {
		d.signals++
		d.lastSignal = d.cfg.Now()
		s.Signals = d.signals
		s.LastSignal = d.lastSignal
		mSignals.Inc()
	}
	d.wasDrifted = s.Drifted
	return s
}

// publish mirrors the verdict into the drift.* telemetry gauges so the
// detector is visible on /v1/metrics, not only on /v1/drift.
func (s *Status) publish() {
	mPSI.Set(s.PSI)
	mConfDelta.Set(s.ConfidenceDelta)
	mSamplesLive.Set(float64(s.SamplesLive))
	mSamplesRef.Set(float64(s.SamplesRef))
	if s.Drifted {
		mDrifted.Set(1)
	} else {
		mDrifted.Set(0)
	}
}

// PSI computes the population stability index between two count vectors,
// with epsilon smoothing for empty buckets. Exported for consumers that
// compare prediction histograms outside a Detector — e.g. the continual
// promotion gate weighing incumbent vs candidate shadow predictions.
func PSI(ref, live []float64) float64 { return psi(ref, live) }

// psi computes the population stability index between two count vectors,
// with epsilon smoothing for empty buckets.
func psi(ref, live []float64) float64 {
	const eps = 1e-4
	var refN, liveN float64
	for i := range ref {
		refN += ref[i]
		liveN += live[i]
	}
	if refN == 0 || liveN == 0 {
		return 0
	}
	var out float64
	for i := range ref {
		p := math.Max(ref[i]/refN, eps)
		q := math.Max(live[i]/liveN, eps)
		out += (q - p) * math.Log(q/p)
	}
	return out
}
