package drift

import (
	"math/rand"
	"testing"
)

// dist returns a one-hot-ish coarse distribution peaked at class k with
// the given confidence.
func dist(classes, k int, conf float64) []float64 {
	out := make([]float64, classes)
	rest := (1 - conf) / float64(classes-1)
	for i := range out {
		out[i] = rest
	}
	out[k] = conf
	return out
}

func TestStableStreamNotDrifted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDetector(7, Config{WindowSize: 100})
	feed := func(n int) {
		for i := 0; i < n; i++ {
			d.Observe(dist(7, rng.Intn(3), 0.8+0.1*rng.Float64()))
		}
	}
	feed(300)
	d.Freeze()
	feed(150)
	s := d.Status()
	if s.Drifted {
		t.Fatalf("stable stream flagged: %+v", s)
	}
	if s.PSI > 0.1 {
		t.Fatalf("PSI %v on identical distributions", s.PSI)
	}
}

func TestClassShiftDetected(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100})
	for i := 0; i < 300; i++ {
		d.Observe(dist(7, 0, 0.9)) // reference: always class 0
	}
	d.Freeze()
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 4, 0.9)) // live: always class 4
	}
	s := d.Status()
	if !s.Drifted {
		t.Fatalf("class shift not detected: %+v", s)
	}
	if s.PSI <= 0.25 {
		t.Fatalf("PSI %v too small for a total shift", s.PSI)
	}
}

func TestConfidenceDropDetected(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100, PSIThreshold: 10 /* disable PSI path */})
	for i := 0; i < 200; i++ {
		d.Observe(dist(7, 1, 0.95))
	}
	d.Freeze()
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 1, 0.4)) // same class, much less confident
	}
	s := d.Status()
	if !s.Drifted {
		t.Fatalf("confidence collapse not detected: %+v", s)
	}
	if s.LiveConfidence > 0.5 || s.RefConfidence < 0.9 {
		t.Fatalf("confidences wrong: %+v", s)
	}
}

func TestInsufficientData(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100})
	d.Observe(dist(7, 0, 0.9))
	d.Freeze()
	d.Observe(dist(7, 0, 0.9))
	s := d.Status()
	if s.Drifted || s.Reason != "insufficient data" {
		t.Fatalf("%+v", s)
	}
}

func TestRingBufferEviction(t *testing.T) {
	d := NewDetector(3, Config{WindowSize: 10})
	for i := 0; i < 20; i++ {
		d.Observe(dist(3, 0, 0.9))
	}
	d.Freeze()
	// Fill the ring twice over with class 1; old class-1 entries must be
	// evicted, keeping counts == window size.
	for i := 0; i < 25; i++ {
		d.Observe(dist(3, 1, 0.9))
	}
	var total float64
	for _, c := range d.liveCounts {
		total += c
	}
	if total != 10 {
		t.Fatalf("live counts sum to %v, want window size 10", total)
	}
}

func TestObserveWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDetector(7, Config{}).Observe([]float64{1})
}

func TestPSIEdgeCases(t *testing.T) {
	if psi([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("empty reference should give 0")
	}
	if got := psi([]float64{5, 5}, []float64{7, 7}); got > 1e-9 {
		t.Fatalf("identical shapes give PSI %v", got)
	}
}
