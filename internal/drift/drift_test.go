package drift

import (
	"math/rand"
	"testing"
	"time"
)

// dist returns a one-hot-ish coarse distribution peaked at class k with
// the given confidence.
func dist(classes, k int, conf float64) []float64 {
	out := make([]float64, classes)
	rest := (1 - conf) / float64(classes-1)
	for i := range out {
		out[i] = rest
	}
	out[k] = conf
	return out
}

func TestStableStreamNotDrifted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDetector(7, Config{WindowSize: 100})
	feed := func(n int) {
		for i := 0; i < n; i++ {
			d.Observe(dist(7, rng.Intn(3), 0.8+0.1*rng.Float64()))
		}
	}
	feed(300)
	d.Freeze()
	feed(150)
	s := d.Status()
	if s.Drifted {
		t.Fatalf("stable stream flagged: %+v", s)
	}
	if s.PSI > 0.1 {
		t.Fatalf("PSI %v on identical distributions", s.PSI)
	}
}

func TestClassShiftDetected(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100})
	for i := 0; i < 300; i++ {
		d.Observe(dist(7, 0, 0.9)) // reference: always class 0
	}
	d.Freeze()
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 4, 0.9)) // live: always class 4
	}
	s := d.Status()
	if !s.Drifted {
		t.Fatalf("class shift not detected: %+v", s)
	}
	if s.PSI <= 0.25 {
		t.Fatalf("PSI %v too small for a total shift", s.PSI)
	}
}

func TestConfidenceDropDetected(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100, PSIThreshold: 10 /* disable PSI path */})
	for i := 0; i < 200; i++ {
		d.Observe(dist(7, 1, 0.95))
	}
	d.Freeze()
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 1, 0.4)) // same class, much less confident
	}
	s := d.Status()
	if !s.Drifted {
		t.Fatalf("confidence collapse not detected: %+v", s)
	}
	if s.LiveConfidence > 0.5 || s.RefConfidence < 0.9 {
		t.Fatalf("confidences wrong: %+v", s)
	}
}

func TestInsufficientData(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100})
	d.Observe(dist(7, 0, 0.9))
	d.Freeze()
	d.Observe(dist(7, 0, 0.9))
	s := d.Status()
	if s.Drifted || s.Reason != "insufficient data" {
		t.Fatalf("%+v", s)
	}
}

func TestRingBufferEviction(t *testing.T) {
	d := NewDetector(3, Config{WindowSize: 10})
	for i := 0; i < 20; i++ {
		d.Observe(dist(3, 0, 0.9))
	}
	d.Freeze()
	// Fill the ring twice over with class 1; old class-1 entries must be
	// evicted, keeping counts == window size.
	for i := 0; i < 25; i++ {
		d.Observe(dist(3, 1, 0.9))
	}
	var total float64
	for _, c := range d.liveCounts {
		total += c
	}
	if total != 10 {
		t.Fatalf("live counts sum to %v, want window size 10", total)
	}
}

func TestObserveWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDetector(7, Config{}).Observe([]float64{1})
}

func TestPSIEdgeCases(t *testing.T) {
	if psi([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("empty reference should give 0")
	}
	if got := psi([]float64{5, 5}, []float64{7, 7}); got > 1e-9 {
		t.Fatalf("identical shapes give PSI %v", got)
	}
}

// TestResetAutoFreeze exercises the re-baselining path the continual plane
// uses after a promotion: Reset discards both windows, the new reference
// freezes itself after the configured count, and drift against the NEW
// baseline is detected while the legitimate model change is not.
func TestResetAutoFreeze(t *testing.T) {
	d := NewDetector(7, Config{WindowSize: 100})
	for i := 0; i < 200; i++ {
		d.Observe(dist(7, 0, 0.9))
	}
	d.Freeze()
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 4, 0.9))
	}
	if s := d.Status(); !s.Drifted {
		t.Fatalf("shift not detected before reset: %+v", s)
	}

	// Promotion: the new model legitimately predicts class 4.
	d.Reset(0) // 0 re-arms the window size (100)
	if s := d.Status(); s.Drifted || s.Frozen {
		t.Fatalf("reset detector still drifted/frozen: %+v", s)
	}
	for i := 0; i < 100; i++ {
		d.Observe(dist(7, 4, 0.9)) // becomes the new reference
	}
	if s := d.Status(); !s.Frozen {
		t.Fatalf("auto-freeze did not fire after 100 observations: %+v", s)
	}
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 4, 0.9))
	}
	if s := d.Status(); s.Drifted {
		t.Fatalf("stable post-promotion stream flagged: %+v", s)
	}
	for i := 0; i < 150; i++ {
		d.Observe(dist(7, 1, 0.9))
	}
	if s := d.Status(); !s.Drifted {
		t.Fatalf("drift against the new baseline not detected: %+v", s)
	}
}

// TestSignalAccounting pins the stable→drifted edge counting and the
// signal timestamp: repeated drifted verdicts within one episode count
// once, and a new episode after recovery counts again.
func TestSignalAccounting(t *testing.T) {
	now := int64(0)
	clock := func() time.Time { return time.Unix(now, 0) }
	d := NewDetector(7, Config{WindowSize: 100, Now: clock})
	for i := 0; i < 200; i++ {
		d.Observe(dist(7, 0, 0.9))
	}
	d.Freeze()
	if s := d.Status(); s.Signals != 0 || !s.LastSignal.IsZero() {
		t.Fatalf("signals before any drift: %+v", s)
	}
	now = 42
	for i := 0; i < 100; i++ {
		d.Observe(dist(7, 4, 0.9))
	}
	s := d.Status()
	if s.Signals != 1 || !s.LastSignal.Equal(time.Unix(42, 0)) {
		t.Fatalf("first signal not recorded: %+v", s)
	}
	now = 43
	if s = d.Status(); s.Signals != 1 {
		t.Fatalf("repeated drifted verdict double-counted: %+v", s)
	}
	// Recovery: live window refills with the reference class.
	for i := 0; i < 100; i++ {
		d.Observe(dist(7, 0, 0.9))
	}
	if s = d.Status(); s.Drifted || s.Signals != 1 {
		t.Fatalf("recovery not observed: %+v", s)
	}
	now = 99
	for i := 0; i < 100; i++ {
		d.Observe(dist(7, 4, 0.9))
	}
	s = d.Status()
	if s.Signals != 2 || !s.LastSignal.Equal(time.Unix(99, 0)) {
		t.Fatalf("second episode not counted: %+v", s)
	}
}
