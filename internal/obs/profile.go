package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diagnet/internal/telemetry"
)

// ProfilerConfig configures the anomaly-triggered profile capturer.
type ProfilerConfig struct {
	// Dir is the on-disk ring directory (e.g. <state-dir>/profiles).
	Dir string
	// Cooldown rate-limits captures: a sustained incident costs at most
	// one CPU+heap pair per cooldown (default 10m).
	Cooldown time.Duration
	// CPUDuration bounds the CPU profile (default 5s).
	CPUDuration time.Duration
	// MaxCaptures bounds the ring; the oldest pair is deleted to admit a
	// new one (default 8).
	MaxCaptures int
	// Registry receives the profiler's own metrics (default telemetry.Default()).
	Registry *telemetry.Registry
}

// Capture is one CPU+heap profile pair in the ring.
type Capture struct {
	ID          string `json:"id"` // timestamped directory name
	Reason      string `json:"reason"`
	AtUnixMs    int64  `json:"at_unix_ms"`
	CPUProfile  string `json:"cpu_profile"` // file name inside the capture dir
	HeapProfile string `json:"heap_profile"`
}

// Profiler captures bounded CPU+heap pprof pairs into an on-disk ring
// when the observability plane detects an anomaly (burn-rate alert
// firing, p99 breach). Trigger is asynchronous and rate-limited; List and
// the HTTP handlers expose the ring.
type Profiler struct {
	cfg ProfilerConfig

	captures  *telemetry.Counter
	suppress  *telemetry.Counter
	capturing atomic.Bool
	last      atomic.Int64 // unix nanos of last capture start

	// closed gates Trigger; stop interrupts an in-flight capture's CPU
	// window; wg awaits the capture goroutine so Close never strands it.
	closed    atomic.Bool
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu sync.Mutex // serializes ring mutation
}

// OpenProfiler builds a profiler rooted at cfg.Dir, creating it.
func OpenProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Minute
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 8
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	return &Profiler{
		cfg:      cfg,
		captures: reg.Counter("obs.profiles.captured"),
		suppress: reg.Counter("obs.profiles.suppressed"),
		stop:     make(chan struct{}),
	}, nil
}

// Close stops the profiler: new triggers are refused and any in-flight
// capture is interrupted (its CPU window is cut short, the pair is still
// written) and awaited. Idempotent.
func (p *Profiler) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		close(p.stop)
	})
	p.wg.Wait()
}

// Trigger requests a capture for the given reason. It returns immediately:
// the capture runs on its own goroutine (the CPU profile takes
// CPUDuration). Returns true if a capture was started, false if it was
// suppressed by the cooldown or an in-flight capture.
func (p *Profiler) Trigger(reason string) bool {
	if p.closed.Load() {
		p.suppress.Inc()
		return false
	}
	now := time.Now()
	last := p.last.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < p.cfg.Cooldown {
		p.suppress.Inc()
		return false
	}
	if !p.last.CompareAndSwap(last, now.UnixNano()) {
		p.suppress.Inc() // lost the race to a concurrent trigger
		return false
	}
	if !p.capturing.CompareAndSwap(false, true) {
		p.suppress.Inc()
		return false
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.capturing.Store(false)
		p.capture(now, reason)
	}()
	return true
}

// capture writes one CPU+heap pair and prunes the ring.
func (p *Profiler) capture(now time.Time, reason string) {
	id := now.UTC().Format("20060102T150405.000") + "_" + sanitizeReason(reason)
	dir := filepath.Join(p.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	meta := Capture{
		ID:          id,
		Reason:      reason,
		AtUnixMs:    now.UnixMilli(),
		CPUProfile:  "cpu.pprof",
		HeapProfile: "heap.pprof",
	}

	if f, err := os.Create(filepath.Join(dir, meta.CPUProfile)); err == nil {
		if err := pprof.StartCPUProfile(f); err == nil {
			// Interruptible CPU window: Close must not wait out a 5s sleep.
			t := time.NewTimer(p.cfg.CPUDuration)
			select {
			case <-t.C:
			case <-p.stop:
				t.Stop()
			}
			pprof.StopCPUProfile()
		}
		f.Close()
	}
	if f, err := os.Create(filepath.Join(dir, meta.HeapProfile)); err == nil {
		_ = pprof.Lookup("heap").WriteTo(f, 0)
		f.Close()
	}
	if b, err := json.MarshalIndent(meta, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(dir, "capture.json"), b, 0o644)
	}
	p.captures.Inc()
	p.pruneRing()
}

// sanitizeReason makes a reason safe for a directory name.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	if b.Len() == 0 {
		return "anomaly"
	}
	return b.String()
}

// pruneRing deletes the oldest captures beyond MaxCaptures.
func (p *Profiler) pruneRing() {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := p.ids()
	for len(ids) > p.cfg.MaxCaptures {
		_ = os.RemoveAll(filepath.Join(p.cfg.Dir, ids[0]))
		ids = ids[1:]
	}
}

// ids lists capture directory names, oldest first (the timestamped names
// sort chronologically).
func (p *Profiler) ids() []string {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids
}

// List returns the ring's captures, newest first.
func (p *Profiler) List() []Capture {
	p.mu.Lock()
	ids := p.ids()
	p.mu.Unlock()
	out := make([]Capture, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		var c Capture
		b, err := os.ReadFile(filepath.Join(p.cfg.Dir, ids[i], "capture.json"))
		if err != nil || json.Unmarshal(b, &c) != nil {
			// A capture still in flight has no metadata yet; list the
			// directory so the operator sees it exists.
			c = Capture{ID: ids[i], Reason: "(in progress)"}
		}
		out = append(out, c)
	}
	return out
}

// ServeHTTP serves the capture ring under a /v1/profiles prefix:
//
//	GET /v1/profiles                  — JSON list, newest first
//	GET /v1/profiles/{id}/{file}      — download one profile file
func (p *Profiler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/profiles")
	rest = strings.Trim(rest, "/")
	if rest == "" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Captures []Capture `json:"captures"`
		}{p.List()})
		return
	}
	id, file, ok := strings.Cut(rest, "/")
	if !ok || strings.Contains(id, "..") || strings.Contains(file, "/") || strings.Contains(file, "..") {
		http.Error(w, "bad profile path", http.StatusBadRequest)
		return
	}
	path := filepath.Join(p.cfg.Dir, id, file)
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	defer f.Close()
	if strings.HasSuffix(file, ".json") {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	http.ServeContent(w, r, file, time.Time{}, f)
}
