package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"diagnet/internal/telemetry"
)

// ContentType is the exposition media type served by /metrics. The
// OpenMetrics text format is the Prometheus exposition format that admits
// exemplars; Prometheus negotiates it natively.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteExposition renders an Export in the OpenMetrics text format:
// per-family HELP/TYPE pairs, counters as <name>_total, histograms as
// cumulative _bucket series with a terminal +Inf bucket plus _sum and
// _count, the registry's tail exemplar annotated on its bucket line, and
// a terminal # EOF. Families are emitted in Export order (sorted), so two
// scrapes of identical state are byte-identical.
func WriteExposition(w io.Writer, ex *telemetry.Export) error {
	bw := bufio.NewWriter(w)
	for i := range ex.Counters {
		c := &ex.Counters[i]
		n := PromName(c.Name)
		writeHeader(bw, n, "counter", c.Name)
		bw.WriteString(n)
		bw.WriteString("_total ")
		bw.WriteString(strconv.FormatInt(c.Value, 10))
		bw.WriteByte('\n')
	}
	for i := range ex.Gauges {
		g := &ex.Gauges[i]
		n := PromName(g.Name)
		writeHeader(bw, n, "gauge", g.Name)
		bw.WriteString(n)
		bw.WriteByte(' ')
		bw.WriteString(formatValue(g.Value))
		bw.WriteByte('\n')
	}
	for i := range ex.Histograms {
		writeHistogram(bw, &ex.Histograms[i])
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// writeHeader emits the HELP/TYPE pair for one metric family.
func writeHeader(bw *bufio.Writer, name, typ, source string) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteString(" DiagNet ")
	bw.WriteString(typ)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(source))
	bw.WriteString(".\n# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

// writeHistogram emits one histogram family: cumulative buckets (with the
// exemplar annotated on the bucket the tail observation landed in), the
// +Inf terminal bucket, then _sum and _count.
func writeHistogram(bw *bufio.Writer, p *telemetry.HistogramPoint) {
	n := PromName(p.Name)
	writeHeader(bw, n, "histogram", p.Name)
	exemplarBucket := -1
	if p.Exemplar != nil {
		exemplarBucket = len(p.Bounds) // +Inf unless a bound holds it
		for i, b := range p.Bounds {
			if p.Exemplar.Value <= b {
				exemplarBucket = i
				break
			}
		}
	}
	for i := 0; i < len(p.Cumulative); i++ {
		bw.WriteString(n)
		bw.WriteString(`_bucket{le="`)
		if i < len(p.Bounds) {
			bw.WriteString(formatValue(p.Bounds[i]))
		} else {
			bw.WriteString("+Inf")
		}
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(p.Cumulative[i], 10))
		if i == exemplarBucket {
			bw.WriteString(` # {trace_id="`)
			bw.WriteString(p.Exemplar.TraceID)
			bw.WriteString(`"} `)
			bw.WriteString(formatValue(p.Exemplar.Value))
		}
		bw.WriteByte('\n')
	}
	bw.WriteString(n)
	bw.WriteString("_sum ")
	bw.WriteString(formatValue(p.Sum))
	bw.WriteByte('\n')
	bw.WriteString(n)
	bw.WriteString("_count ")
	count := int64(0)
	if len(p.Cumulative) > 0 {
		count = p.Cumulative[len(p.Cumulative)-1]
	}
	bw.WriteString(strconv.FormatInt(count, 10))
	bw.WriteByte('\n')
}

// formatValue renders a float64 so it round-trips exactly through
// strconv.ParseFloat — federation merges parsed values, so the text hop
// must not lose precision.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortExport re-sorts an Export in place by metric name — parsed and
// merged exports pass through here so every downstream consumer sees the
// same deterministic order a Registry.Export() has natively.
func sortExport(ex *telemetry.Export) {
	sort.Slice(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name })
	sort.Slice(ex.Gauges, func(i, j int) bool { return ex.Gauges[i].Name < ex.Gauges[j].Name })
	sort.Slice(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name })
}
