package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"diagnet/internal/telemetry"
)

// FederatorConfig configures the fleet metric federator.
type FederatorConfig struct {
	// Targets returns the current replica base URLs (e.g. from the
	// router's pool), re-evaluated each sweep so membership changes are
	// picked up without restarting the federator.
	Targets func() []string
	// Client performs the scrapes; nil means a client with Timeout.
	Client *http.Client
	// Path is the scrape path on each target (default /metrics).
	Path string
	// Timeout bounds one scrape (default 2s).
	Timeout time.Duration
	// GaugePolicy overrides DefaultGaugePolicy when non-nil.
	GaugePolicy func(string) GaugePolicy
	// Registry receives the federator's own metrics (default
	// telemetry.Default()).
	Registry *telemetry.Registry
}

// ReplicaMetrics is one replica's slice of the fleet view.
type ReplicaMetrics struct {
	Name   string           `json:"name"`
	Error  string           `json:"error,omitempty"`
	Export telemetry.Export `json:"export"`
}

// FleetView is the federated snapshot served at /v1/fleet/metrics: the
// exactly-merged fleet export plus the per-replica breakdown it was
// computed from.
type FleetView struct {
	UpdatedUnixMs int64            `json:"updated_unix_ms"`
	Replicas      []ReplicaMetrics `json:"replicas"`
	Fleet         telemetry.Export `json:"fleet"`
	Warnings      []string         `json:"warnings,omitempty"`
}

// Federator periodically scrapes every replica's exposition endpoint,
// decodes each through the strict parser, and maintains the exactly-merged
// fleet view. It does not own a goroutine — the caller drives Sweep from
// its own loop (the router folds it into its background cadence).
type Federator struct {
	cfg FederatorConfig

	sweeps *telemetry.Counter
	errs   *telemetry.Counter

	mu   sync.RWMutex
	view FleetView
	ok   bool
}

// NewFederator builds a federator; cfg.Targets is required.
func NewFederator(cfg FederatorConfig) *Federator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Client == nil {
		// Private transport: scrape keep-alives must not pile up in (or
		// outlive the federator on) the process-global DefaultTransport —
		// leak checks over a closed federator would see its idle conns.
		tr, _ := http.DefaultTransport.(*http.Transport)
		if tr != nil {
			tr = tr.Clone()
			tr.MaxIdleConnsPerHost = 4
		}
		cfg.Client = &http.Client{Timeout: cfg.Timeout, Transport: tr}
	}
	if cfg.Path == "" {
		cfg.Path = "/metrics"
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	return &Federator{
		cfg:    cfg,
		sweeps: reg.Counter("obs.federate.sweeps"),
		errs:   reg.Counter("obs.federate.errors"),
	}
}

// Sweep scrapes all current targets concurrently, merges the successful
// exports, and publishes the new fleet view. Scrape or parse failures
// degrade that replica to an error entry — the merge proceeds over the
// replicas that answered.
func (f *Federator) Sweep(ctx context.Context) FleetView {
	f.sweeps.Inc()
	targets := f.cfg.Targets()
	replicas := make([]ReplicaMetrics, len(targets))
	var wg sync.WaitGroup
	for i, url := range targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			replicas[i] = f.scrape(ctx, url)
		}(i, url)
	}
	wg.Wait()

	exports := make([]telemetry.Export, 0, len(replicas))
	for i := range replicas {
		if replicas[i].Error == "" {
			exports = append(exports, replicas[i].Export)
		} else {
			f.errs.Inc()
		}
	}
	fleet, warnings := MergeExports(exports, f.cfg.GaugePolicy)
	view := FleetView{
		UpdatedUnixMs: time.Now().UnixMilli(),
		Replicas:      replicas,
		Fleet:         fleet,
		Warnings:      warnings,
	}
	f.mu.Lock()
	f.view = view
	f.ok = true
	f.mu.Unlock()
	return view
}

// scrape fetches and strictly parses one replica's exposition.
func (f *Federator) scrape(ctx context.Context, base string) ReplicaMetrics {
	rm := ReplicaMetrics{Name: base}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+f.cfg.Path, nil)
	if err != nil {
		rm.Error = err.Error()
		return rm
	}
	req.Header.Set("Accept", ContentType)
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		rm.Error = err.Error()
		return rm
	}
	// Drain every exit path (error status, parse failure, oversized body
	// tail) before Close, so the scrape connection goes back to the
	// keep-alive pool — a federator re-dialing per sweep leaks sockets
	// into TIME_WAIT at exactly the cadence it scrapes.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		rm.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return rm
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		rm.Error = err.Error()
		return rm
	}
	ex, err := ParseExposition(body)
	if err != nil {
		rm.Error = err.Error()
		return rm
	}
	rm.Export = ex
	return rm
}

// Close releases the federator's idle scrape connections. Idempotent;
// the caller must have stopped driving Sweep first.
func (f *Federator) Close() {
	f.cfg.Client.CloseIdleConnections()
}

// View returns the latest fleet view; ok is false before the first sweep
// completes.
func (f *Federator) View() (FleetView, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.view, f.ok
}

// ServeView writes the fleet view as JSON (GET /v1/fleet/metrics), or 503
// before the first sweep.
func (f *Federator) ServeView(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	view, ok := f.View()
	if !ok {
		http.Error(w, "federation has not completed a sweep yet", http.StatusServiceUnavailable)
		return
	}
	if WantsExposition(r) {
		w.Header().Set("Content-Type", ContentType)
		_ = WriteExposition(w, &view.Fleet)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}
