package obs

import (
	"testing"

	"diagnet/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind —
// federators, profilers and SLO engines must release everything on Close.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
