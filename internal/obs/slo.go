package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"diagnet/internal/telemetry"
)

// Objective is one declarative service-level objective evaluated over the
// federated fleet export. Exactly one of the two shapes is used:
//
//   - availability: Errors/Requests name two counters; the bad ratio is
//     Δerrors/Δrequests over a window.
//   - latency: Histogram names a latency histogram and ThresholdMs the
//     bound that splits good from bad; the bad ratio is the fraction of
//     observations above the threshold. ThresholdMs should be one of the
//     histogram's fixed bucket bounds — the split is then exact; otherwise
//     the nearest bound at or below the threshold is used.
type Objective struct {
	Name        string  `json:"name"`
	Goal        float64 `json:"goal"` // e.g. 0.999
	Requests    string  `json:"requests,omitempty"`
	Errors      string  `json:"errors,omitempty"`
	Histogram   string  `json:"histogram,omitempty"`
	ThresholdMs float64 `json:"threshold_ms,omitempty"`
}

// counts extracts the cumulative (bad, total) pair from an export.
func (o *Objective) counts(ex *telemetry.Export) (bad, total int64, ok bool) {
	if o.Histogram != "" {
		h, found := ex.Histogram(o.Histogram)
		if !found {
			return 0, 0, false
		}
		total = h.Count()
		good := int64(0)
		for i, b := range h.Bounds {
			if b <= o.ThresholdMs {
				good = h.Cumulative[i]
			} else {
				break
			}
		}
		return total - good, total, true
	}
	total, okT := ex.Counter(o.Requests)
	bad, okB := ex.Counter(o.Errors)
	return bad, total, okT && okB
}

// DefaultObjectives returns the standard pair over the router's federated
// /v1/diagnose metrics (Prometheus family names — these read the merged
// fleet export, which carries post-exposition names).
func DefaultObjectives(target, latencyMs float64) []Objective {
	return []Objective{
		{
			Name:     "diagnose-availability",
			Goal:     target,
			Requests: "http_diagnose_requests",
			Errors:   "http_diagnose_errors",
		},
		{
			Name:        "diagnose-latency",
			Goal:        target,
			Histogram:   "http_diagnose_latency_ms",
			ThresholdMs: latencyMs,
		},
	}
}

// BurnRule is one multi-window burn-rate alert rule: it fires when the
// error-budget burn rate meets Factor on BOTH the short and the long
// window (the short window makes the alert reset quickly after recovery,
// the long window keeps a brief blip from paging), and clears when the
// short-window burn drops back below Factor.
type BurnRule struct {
	Name     string        `json:"name"`
	Short    time.Duration `json:"-"`
	Long     time.Duration `json:"-"`
	Factor   float64       `json:"factor"`
	Severity string        `json:"severity"` // "page" or "warn"
}

// DefaultBurnRules is the classic multiwindow pair: the fast rule pages
// on a burn that would spend ~2% of a 30-day budget in an hour, the slow
// rule warns on a burn that would just exhaust the budget.
func DefaultBurnRules() []BurnRule {
	return []BurnRule{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Factor: 14.4, Severity: "page"},
		{Name: "slow", Short: 6 * time.Hour, Long: 72 * time.Hour, Factor: 1, Severity: "warn"},
	}
}

// AlertEvent is delivered to OnTransition when a (objective, rule) pair
// starts or stops firing.
type AlertEvent struct {
	Objective string
	Rule      string
	Severity  string
	Firing    bool
	Burn      float64 // short-window burn at transition time
	At        time.Time
}

// SLOConfig configures the engine.
type SLOConfig struct {
	Objectives []Objective
	Rules      []BurnRule // nil means DefaultBurnRules()
	// OnTransition, when set, observes alert state changes (the router
	// uses it to trigger profile capture).
	OnTransition func(AlertEvent)
	// Registry receives the engine's own metrics (default telemetry.Default()).
	Registry *telemetry.Registry
}

// sample is one cumulative (bad, total) observation.
type sample struct {
	t          time.Time
	bad, total int64
}

// alertKey identifies one (objective, rule) alert instance.
type alertKey struct{ obj, rule string }

type alertState struct {
	firing bool
	since  time.Time
}

// SLOEngine evaluates burn-rate rules over sliding windows of cumulative
// (bad, total) samples extracted from successive fleet exports. Feed it
// with Observe after every federation sweep; read it at /v1/slo.
type SLOEngine struct {
	cfg    SLOConfig
	rules  []BurnRule
	fired  *telemetry.Counter
	clear  *telemetry.Counter
	firing *telemetry.Gauge

	mu      sync.Mutex
	history map[string][]sample // objective name -> time-ordered ring
	alerts  map[alertKey]*alertState
}

// NewSLOEngine builds an engine over the given objectives.
func NewSLOEngine(cfg SLOConfig) *SLOEngine {
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultBurnRules()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	return &SLOEngine{
		cfg:     cfg,
		rules:   rules,
		fired:   reg.Counter("slo.alerts.fired"),
		clear:   reg.Counter("slo.alerts.cleared"),
		firing:  reg.Gauge("slo.alerts.firing"),
		history: map[string][]sample{},
		alerts:  map[alertKey]*alertState{},
	}
}

// Observe records one fleet export at the given time and re-evaluates
// every (objective, rule) pair, emitting transitions.
func (e *SLOEngine) Observe(now time.Time, ex *telemetry.Export) {
	var events []AlertEvent
	e.mu.Lock()
	for i := range e.cfg.Objectives {
		o := &e.cfg.Objectives[i]
		bad, total, ok := o.counts(ex)
		if !ok {
			continue
		}
		hist := append(e.history[o.Name], sample{t: now, bad: bad, total: total})
		e.history[o.Name] = e.prune(hist, now)
		for _, r := range e.rules {
			burnShort := e.burn(o, now, r.Short)
			burnLong := e.burn(o, now, r.Long)
			key := alertKey{o.Name, r.Name}
			st := e.alerts[key]
			if st == nil {
				st = &alertState{}
				e.alerts[key] = st
			}
			switch {
			case !st.firing && burnShort >= r.Factor && burnLong >= r.Factor:
				st.firing = true
				st.since = now
				e.fired.Inc()
				e.firing.Add(1)
				events = append(events, AlertEvent{
					Objective: o.Name, Rule: r.Name, Severity: r.Severity,
					Firing: true, Burn: burnShort, At: now,
				})
			case st.firing && burnShort < r.Factor:
				st.firing = false
				e.clear.Inc()
				e.firing.Add(-1)
				events = append(events, AlertEvent{
					Objective: o.Name, Rule: r.Name, Severity: r.Severity,
					Firing: false, Burn: burnShort, At: now,
				})
			}
		}
	}
	e.mu.Unlock()
	if e.cfg.OnTransition != nil {
		for _, ev := range events {
			e.cfg.OnTransition(ev)
		}
	}
}

// prune drops samples that can no longer anchor any rule's long window,
// keeping one sample beyond the horizon so the window delta stays
// anchored.
func (e *SLOEngine) prune(hist []sample, now time.Time) []sample {
	var longest time.Duration
	for _, r := range e.rules {
		if r.Long > longest {
			longest = r.Long
		}
	}
	horizon := now.Add(-longest)
	cut := 0
	for cut < len(hist)-1 && hist[cut+1].t.Before(horizon) {
		cut++
	}
	if cut == 0 {
		return hist
	}
	return append(hist[:0], hist[cut:]...)
}

// burn computes the error-budget burn rate over the trailing window W:
// (bad ratio over W) / (1 − goal). The window anchor is the newest sample
// at or before now−W; with fewer samples than the window spans, the
// oldest sample anchors (the window "grows into" its width on startup).
// Called with e.mu held.
func (e *SLOEngine) burn(o *Objective, now time.Time, w time.Duration) float64 {
	hist := e.history[o.Name]
	if len(hist) < 2 {
		return 0
	}
	latest := hist[len(hist)-1]
	cutoff := now.Add(-w)
	anchor := hist[0]
	for _, s := range hist {
		if s.t.After(cutoff) {
			break
		}
		anchor = s
	}
	dTotal := latest.total - anchor.total
	dBad := latest.bad - anchor.bad
	if dTotal <= 0 || dBad <= 0 {
		return 0
	}
	budget := 1 - o.Goal
	if budget <= 0 {
		return 0
	}
	return (float64(dBad) / float64(dTotal)) / budget
}

// AlertStatus is one (objective, rule) alert's externally visible state.
type AlertStatus struct {
	Objective   string  `json:"objective"`
	Rule        string  `json:"rule"`
	Severity    string  `json:"severity"`
	Factor      float64 `json:"factor"`
	ShortMs     int64   `json:"short_window_ms"`
	LongMs      int64   `json:"long_window_ms"`
	BurnShort   float64 `json:"burn_short"`
	BurnLong    float64 `json:"burn_long"`
	Firing      bool    `json:"firing"`
	SinceUnixMs int64   `json:"since_unix_ms,omitempty"`
}

// ObjectiveStatus is one objective's externally visible state.
type ObjectiveStatus struct {
	Objective
	// BudgetRemaining is the fraction of the error budget left over the
	// slowest rule's long window: 1 − burn. Negative once overspent.
	BudgetRemaining float64       `json:"budget_remaining"`
	Alerts          []AlertStatus `json:"alerts"`
}

// Status renders the alert state machine (GET /v1/slo).
func (e *SLOEngine) Status(now time.Time) []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	var longest BurnRule
	for _, r := range e.rules {
		if r.Long > longest.Long {
			longest = r
		}
	}
	out := make([]ObjectiveStatus, 0, len(e.cfg.Objectives))
	for i := range e.cfg.Objectives {
		o := &e.cfg.Objectives[i]
		os := ObjectiveStatus{
			Objective:       *o,
			BudgetRemaining: 1 - e.burn(o, now, longest.Long),
		}
		for _, r := range e.rules {
			st := e.alerts[alertKey{o.Name, r.Name}]
			as := AlertStatus{
				Objective: o.Name,
				Rule:      r.Name,
				Severity:  r.Severity,
				Factor:    r.Factor,
				ShortMs:   r.Short.Milliseconds(),
				LongMs:    r.Long.Milliseconds(),
				BurnShort: e.burn(o, now, r.Short),
				BurnLong:  e.burn(o, now, r.Long),
			}
			if st != nil && st.firing {
				as.Firing = true
				as.SinceUnixMs = st.since.UnixMilli()
			}
			os.Alerts = append(os.Alerts, as)
		}
		out = append(out, os)
	}
	return out
}

// ServeStatus writes the SLO status as JSON (GET /v1/slo).
func (e *SLOEngine) ServeStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		UpdatedUnixMs int64             `json:"updated_unix_ms"`
		Objectives    []ObjectiveStatus `json:"objectives"`
	}{time.Now().UnixMilli(), e.Status(time.Now())})
}
