package obs

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"diagnet/internal/telemetry"
)

// benchThink is the per-client pause between requests: the benchmark
// models paced load (each client thinks, then calls), so added latency
// shows up as latency instead of vanishing into a closed feedback loop.
const benchThink = time.Millisecond

// scrapeEvery is the scraper cadence in the scrape-on variant —
// deliberately far more aggressive than a production Prometheus (100ms
// vs 15–60s) so the gate prices a worst case, not the steady state.
const scrapeEvery = 10 * time.Millisecond

// runPaced drives fn from c paced clients (same shape as the serving and
// cluster benchmarks) and reports client-observed p50/p99 latency.
func runPaced(b *testing.B, c int, fn func()) {
	b.Helper()
	if b.N < c {
		c = b.N
	}
	lat := make([][]float64, c)
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < c; g++ {
		n := b.N / c
		if g == 0 {
			n += b.N % c
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			ls := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				time.Sleep(time.Duration((0.5 + rng.Float64()) * float64(benchThink)))
				start := time.Now()
				fn()
				ls = append(ls, float64(time.Since(start).Nanoseconds())/1e6)
			}
			lat[g] = ls
		}(g, n)
	}
	wg.Wait()
	b.StopTimer()
	var all []float64
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	if len(all) > 0 {
		b.ReportMetric(all[len(all)/2], "p50_ms")
		b.ReportMetric(all[len(all)*99/100], "p99_ms")
	}
}

// benchRegistry builds a registry with a production-like metric
// population — the scrape cost scales with family count and histogram
// width, so an empty registry would flatter the exposition path.
func benchRegistry() *telemetry.Registry {
	reg := telemetry.New()
	for i := 0; i < 40; i++ {
		reg.Counter(fmt.Sprintf("bench.counter.%02d", i)).Add(int64(i) * 17)
	}
	for i := 0; i < 10; i++ {
		reg.Gauge(fmt.Sprintf("bench.gauge.%02d", i)).Set(float64(i) * 1.5)
	}
	for i := 0; i < 12; i++ {
		h := reg.Histogram(fmt.Sprintf("bench.latency.%02d", i), telemetry.LatencyBuckets)
		for j := 0; j < 200; j++ {
			h.ObserveExemplar(float64(j%500)/7, fmt.Sprintf("%032d", j))
		}
	}
	return reg
}

// BenchmarkExposition prices what a live scraper costs the request path:
// the same instrumented handler serves 16 paced clients, and the
// scrape-on variant adds a background scraper hitting GET /metrics every
// 10ms. The exposition writer holds no registry-wide lock — counters are
// read atomically point by point — so the only interference is the CPU
// and allocation cost of rendering the text, which is what the CI gate
// bounds: p99(scrape-on) ≤ 1.10 × p99(scrape-off) at c16
// (results/BENCH_obs.json).
func BenchmarkExposition(b *testing.B) {
	for _, scraping := range []bool{false, true} {
		name := "scrape-off"
		if scraping {
			name = "scrape-on"
		}
		b.Run(fmt.Sprintf("%s/c16", name), func(b *testing.B) {
			reg := benchRegistry()
			work := reg.Histogram("http.diagnose.latency_ms", telemetry.LatencyBuckets)
			mux := http.NewServeMux()
			mux.Handle("/v1/diagnose", Instrument(reg, "diagnose",
				http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					// A stand-in for inference: touch the registry the way
					// the serving path does.
					work.Observe(1.5)
					fmt.Fprint(w, `{"ok":true}`)
				})))
			mux.Handle("/metrics", ExpositionHandler(reg))
			srv := httptest.NewServer(mux)
			defer srv.Close()
			client := srv.Client()

			stop := make(chan struct{})
			var scrapeWG sync.WaitGroup
			if scraping {
				scrapeWG.Add(1)
				go func() {
					defer scrapeWG.Done()
					t := time.NewTicker(scrapeEvery)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
							resp, err := client.Get(srv.URL + "/metrics")
							if err == nil {
								io.Copy(io.Discard, resp.Body)
								resp.Body.Close()
							}
						}
					}
				}()
			}

			runPaced(b, 16, func() {
				resp, err := client.Get(srv.URL + "/v1/diagnose")
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			})
			close(stop)
			scrapeWG.Wait()
		})
	}
}

// BenchmarkWriteExposition prices one render of a production-size
// registry to the OpenMetrics text format — the per-scrape cost a
// replica pays when the router's federator sweeps it.
func BenchmarkWriteExposition(b *testing.B) {
	reg := benchRegistry()
	ex := reg.Export()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteExposition(io.Discard, &ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseExposition prices the strict decode of one replica's
// scrape — the federator pays this per replica per sweep.
func BenchmarkParseExposition(b *testing.B) {
	reg := benchRegistry()
	ex := reg.Export()
	var buf []byte
	{
		w := &sliceWriter{}
		if err := WriteExposition(w, &ex); err != nil {
			b.Fatal(err)
		}
		buf = w.b
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseExposition(buf); err != nil {
			b.Fatal(err)
		}
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
