// Package obs is DiagNet's fleet observability plane (DESIGN.md §16),
// layered on the internal/telemetry registry:
//
//   - Prometheus text exposition. Every daemon serves GET /metrics in the
//     OpenMetrics text format — counters (_total), gauges, and fixed-bucket
//     histograms with cumulative _bucket series, _sum/_count and the
//     registry's tail exemplars annotated on their bucket line. Zero
//     dependencies: the writer and its strict parser live here.
//
//   - Metric federation. The router scrapes each replica's /metrics on a
//     timer, decodes it with the same strict parser, and merges the fleet
//     exactly: counters and cumulative buckets sum element-wise (exact
//     because every histogram of a given name shares fixed bounds), gauges
//     aggregate under a name-based policy. GET /v1/fleet/metrics serves
//     the merged view with a per-replica breakdown.
//
//   - SLO engine. Declarative objectives (availability and a latency
//     threshold over /v1/diagnose) evaluated with multi-window burn-rate
//     rules — fast 5m/1h page, slow 6h/3d warn — over sliding windows of
//     the federated counters. GET /v1/slo exposes the alert state machine
//     and the remaining error budget.
//
//   - Anomaly-triggered profiling. When a burn-rate rule fires, or the
//     fleet p99 breaches a configured bound, a bounded CPU+heap pprof pair
//     is captured into a small on-disk ring, rate-limited so a sustained
//     incident costs at most one capture per cooldown. GET /v1/profiles
//     lists and serves the captures.
//
// The paper's premise is diagnosing other services at Internet scale;
// this package applies the same discipline to the diagnoser itself — the
// continuously collected, aggregated telemetry substrate that online RCA
// systems (NetRCA, online multi-modal RCA) presuppose.
package obs

import (
	"net/http"
	"strings"
	"time"

	"diagnet/internal/telemetry"
)

// PromName maps a dotted registry name to a Prometheus metric family
// name: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed. Idempotent, so parsed-and-re-exposed names are
// stable across federation hops.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WantsExposition reports whether the request's Accept header prefers the
// Prometheus/OpenMetrics text format over the legacy JSON snapshot. The
// JSON shape stays the default (and byte-compatible) so existing tooling
// keeps working without sending a header.
func WantsExposition(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "openmetrics") ||
		strings.Contains(accept, "text/plain")
}

// ServeExposition writes the registry's current state in the exposition
// text format.
func ServeExposition(w http.ResponseWriter, r *http.Request, reg *telemetry.Registry) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	ex := reg.Export()
	_ = WriteExposition(w, &ex)
}

// ExpositionHandler serves GET /metrics from the given registry, counting
// scrapes (into the same registry) so the observability plane observes
// itself.
func ExpositionHandler(reg *telemetry.Registry) http.Handler {
	scrapes := reg.Counter("obs.scrapes")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		scrapes.Inc()
		ServeExposition(w, r, reg)
	})
}

// Instrument wraps an HTTP handler with the standard per-route metrics —
// http.<route>.requests, http.<route>.errors (status ≥ 400 or panic) and
// http.<route>.latency_ms — recorded into the GIVEN registry rather than
// the process default. The analysis and cluster planes instrument their
// own routes directly; this helper exists for handlers outside those
// packages, and for multi-replica-in-one-process setups (tests, the
// observability example) where each replica needs its own registry so the
// federated fleet view sums distinct processes, not one shared registry
// counted twice.
func Instrument(reg *telemetry.Registry, route string, inner http.Handler) http.Handler {
	requests := reg.Counter("http." + route + ".requests")
	errors := reg.Counter("http." + route + ".errors")
	latency := reg.Histogram("http."+route+".latency_ms", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		finished := false
		defer func() {
			// Runs during panic unwinding too: a panic counts as an error
			// and the panic keeps propagating to the server's recoverer.
			latency.Observe(telemetry.Millis(time.Since(start)))
			if !finished || rec.status >= 400 {
				errors.Inc()
			}
		}()
		inner.ServeHTTP(rec, r)
		finished = true
	})
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
