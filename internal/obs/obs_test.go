package obs

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diagnet/internal/telemetry"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"http.diagnose.latency_ms": "http_diagnose_latency_ms",
		"slo.alerts.fired":         "slo_alerts_fired",
		"9lives":                   "_9lives",
		"already_fine:ok":          "already_fine:ok",
		"":                         "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if got := PromName(PromName(in)); got != want {
			t.Errorf("PromName not idempotent on %q: %q", in, got)
		}
	}
}

// TestExpositionRoundTrip pins the wire format end to end: a populated
// registry exposes, the strict parser decodes, and every value survives
// exactly.
func TestExpositionRoundTrip(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("http.diagnose.requests").Add(42)
	reg.Counter("http.diagnose.errors").Add(3)
	reg.Gauge("http.inflight").Set(2.5)
	h := reg.Histogram("http.diagnose.latency_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	h.ObserveExemplar(7, "deadbeef")

	var buf bytes.Buffer
	ex := reg.Export()
	if err := WriteExposition(&buf, &ex); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := buf.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("missing terminal # EOF:\n%s", text)
	}
	if !strings.Contains(text, `# {trace_id="deadbeef"} 7`) {
		t.Errorf("exemplar annotation missing:\n%s", text)
	}

	got, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if v, ok := got.Counter("http_diagnose_requests"); !ok || v != 42 {
		t.Errorf("requests counter: got %d, %v", v, ok)
	}
	if v, ok := got.Counter("http_diagnose_errors"); !ok || v != 3 {
		t.Errorf("errors counter: got %d, %v", v, ok)
	}
	if v, ok := got.Gauge("http_inflight"); !ok || v != 2.5 {
		t.Errorf("inflight gauge: got %v, %v", v, ok)
	}
	hp, ok := got.Histogram("http_diagnose_latency_ms")
	if !ok {
		t.Fatalf("latency histogram missing")
	}
	if hp.Count() != 5 {
		t.Errorf("count: got %d, want 5", hp.Count())
	}
	if want := 0.5 + 5 + 50 + 500 + 7; hp.Sum != want {
		t.Errorf("sum: got %v, want %v", hp.Sum, want)
	}
	wantCum := []int64{1, 3, 4, 5}
	for i, c := range hp.Cumulative {
		if c != wantCum[i] {
			t.Errorf("cumulative[%d]: got %d, want %d", i, c, wantCum[i])
		}
	}
	if hp.Exemplar == nil || hp.Exemplar.TraceID != "deadbeef" || hp.Exemplar.Value != 7 {
		t.Errorf("exemplar: got %+v", hp.Exemplar)
	}

	// Re-exposing the parsed export must be byte-identical modulo the
	// already-prom names: exposition is idempotent across federation hops.
	var buf2, buf3 bytes.Buffer
	if err := WriteExposition(&buf2, &got); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	got2, err := ParseExposition(buf2.Bytes())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if err := WriteExposition(&buf3, &got2); err != nil {
		t.Fatalf("re-re-write: %v", err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Errorf("exposition not stable across parse/write cycles:\n%s\nvs\n%s", buf2.String(), buf3.String())
	}
}

// TestParserLint pins the strict rules: each malformed document must be
// rejected.
func TestParserLint(t *testing.T) {
	cases := map[string]string{
		"missing EOF":                 "# HELP a A.\n# TYPE a counter\na_total 1\n",
		"content after EOF":           "# HELP a A.\n# TYPE a counter\na_total 1\n# EOF\nx_total 2\n",
		"bad family name":             "# HELP 1bad A.\n# TYPE 1bad counter\n1bad_total 1\n# EOF\n",
		"type before help":            "# TYPE a counter\na_total 1\n# EOF\n",
		"sample before type":          "# HELP a A.\na_total 1\n# TYPE a counter\n# EOF\n",
		"unknown type":                "# HELP a A.\n# TYPE a summary\na 1\n# EOF\n",
		"duplicate family":            "# HELP a A.\n# TYPE a counter\na_total 1\n# HELP a A.\n# TYPE a counter\na_total 2\n# EOF\n",
		"counter without _total":      "# HELP a A.\n# TYPE a counter\na 1\n# EOF\n",
		"counter negative":            "# HELP a A.\n# TYPE a counter\na_total -1\n# EOF\n",
		"counter float":               "# HELP a A.\n# TYPE a counter\na_total 1.5\n# EOF\n",
		"family without samples":      "# HELP a A.\n# TYPE a counter\n# HELP b B.\n# TYPE b counter\nb_total 1\n# EOF\n",
		"histogram without +Inf":      "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
		"histogram non-monotone":      "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n",
		"histogram descending bounds": "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n# EOF\n",
		"histogram count mismatch":    "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n# EOF\n",
		"histogram missing sum":       "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n# EOF\n",
		"histogram bucket after inf":  "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 2\n# EOF\n",
		"gauge with exemplar":         "# HELP g G.\n# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n# EOF\n",
		"blank interior line":         "# HELP a A.\n\n# TYPE a counter\na_total 1\n# EOF\n",
	}
	for name, doc := range cases {
		if _, err := ParseExposition([]byte(doc)); err == nil {
			t.Errorf("%s: parser accepted malformed document:\n%s", name, doc)
		}
	}
}

// TestMergeExact pins federation arithmetic: fleet totals are the exact
// sums of per-replica values.
func TestMergeExact(t *testing.T) {
	mkReplica := func(reqs, errs int64, latencies []float64, inflight float64) telemetry.Export {
		reg := telemetry.New()
		reg.Counter("http_diagnose_requests").Add(reqs)
		reg.Counter("http_diagnose_errors").Add(errs)
		reg.Gauge("http_inflight").Set(inflight)
		h := reg.Histogram("http_diagnose_latency_ms", []float64{1, 10, 100})
		for _, v := range latencies {
			h.Observe(v)
		}
		return reg.Export()
	}
	a := mkReplica(100, 5, []float64{0.5, 5, 50}, 2)
	b := mkReplica(200, 1, []float64{0.7, 500}, 3)
	c := mkReplica(50, 0, []float64{5, 5, 5}, 1)

	fleet, warnings := MergeExports([]telemetry.Export{a, b, c}, nil)
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if v, _ := fleet.Counter("http_diagnose_requests"); v != 350 {
		t.Errorf("requests: got %d, want 350", v)
	}
	if v, _ := fleet.Counter("http_diagnose_errors"); v != 6 {
		t.Errorf("errors: got %d, want 6", v)
	}
	// inflight matches the occupancy heuristic, so it sums.
	if v, _ := fleet.Gauge("http_inflight"); v != 6 {
		t.Errorf("inflight: got %v, want 6", v)
	}
	h, ok := fleet.Histogram("http_diagnose_latency_ms")
	if !ok {
		t.Fatalf("merged histogram missing")
	}
	if h.Count() != 8 {
		t.Errorf("count: got %d, want 8", h.Count())
	}
	if want := 0.5 + 5 + 50 + 0.7 + 500 + 15; h.Sum != want {
		t.Errorf("sum: got %v, want %v", h.Sum, want)
	}
	wantCum := []int64{2, 6, 7, 8} // ≤1: {0.5,0.7}; ≤10: +{5,5,5,5}; ≤100: +{50}; +Inf: +{500}
	for i, c := range h.Cumulative {
		if c != wantCum[i] {
			t.Errorf("cumulative[%d]: got %d, want %d", i, c, wantCum[i])
		}
	}
}

func TestMergeGaugeAvgAndBoundsMismatch(t *testing.T) {
	r1 := telemetry.New()
	r1.Gauge("drift_score").Set(0.2)
	r1.Histogram("h", []float64{1, 2}).Observe(1)
	r2 := telemetry.New()
	r2.Gauge("drift_score").Set(0.4)
	r2.Histogram("h", []float64{1, 3}).Observe(1)

	fleet, warnings := MergeExports([]telemetry.Export{r1.Export(), r2.Export()}, nil)
	if v, _ := fleet.Gauge("drift_score"); math.Abs(v-0.3) > 1e-12 {
		t.Errorf("avg gauge: got %v, want 0.3", v)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "mismatched bounds") {
		t.Errorf("expected a bounds-mismatch warning, got %v", warnings)
	}
	h, _ := fleet.Histogram("h")
	if h.Count() != 1 {
		t.Errorf("mismatched replica leaked into merge: count %d", h.Count())
	}
}

// TestSLOBurnAndTransitions drives the engine through a healthy phase, an
// error burst, and recovery, asserting the fast rule fires and clears
// with transition events.
func TestSLOBurnAndTransitions(t *testing.T) {
	var events []AlertEvent
	rules := []BurnRule{{Name: "fast", Short: 10 * time.Second, Long: 40 * time.Second, Factor: 10, Severity: "page"}}
	eng := NewSLOEngine(SLOConfig{
		Objectives: []Objective{{
			Name: "avail", Goal: 0.99,
			Requests: "reqs", Errors: "errs",
		}},
		Rules:        rules,
		Registry:     telemetry.New(),
		OnTransition: func(ev AlertEvent) { events = append(events, ev) },
	})

	mkExport := func(reqs, errs int64) telemetry.Export {
		reg := telemetry.New()
		reg.Counter("reqs").Add(reqs)
		reg.Counter("errs").Add(errs)
		return reg.Export()
	}

	t0 := time.Unix(1_700_000_000, 0)
	// Healthy traffic: 100 req/s, no errors, for 60s.
	reqs, errs := int64(0), int64(0)
	now := t0
	for i := 0; i < 60; i++ {
		reqs += 100
		ex := mkExport(reqs, errs)
		eng.Observe(now, &ex)
		now = now.Add(time.Second)
	}
	if len(events) != 0 {
		t.Fatalf("alert fired on healthy traffic: %+v", events)
	}

	// Burst: 50%% errors. Burn = 0.5/0.01 = 50 ≥ 10 on the short window
	// quickly; the long window needs enough bad deltas to cross too.
	for i := 0; i < 30; i++ {
		reqs += 100
		errs += 50
		ex := mkExport(reqs, errs)
		eng.Observe(now, &ex)
		now = now.Add(time.Second)
	}
	if len(events) == 0 || !events[0].Firing {
		t.Fatalf("fast rule did not fire during burst: %+v", events)
	}
	if events[0].Severity != "page" || events[0].Objective != "avail" {
		t.Errorf("bad event: %+v", events[0])
	}

	// Recovery: errors stop; the short window drains and the alert clears.
	for i := 0; i < 30; i++ {
		reqs += 100
		ex := mkExport(reqs, errs)
		eng.Observe(now, &ex)
		now = now.Add(time.Second)
	}
	last := events[len(events)-1]
	if last.Firing {
		t.Fatalf("alert did not clear after recovery: %+v", events)
	}
	if len(events) != 2 {
		t.Errorf("expected exactly fire+clear, got %+v", events)
	}

	st := eng.Status(now)
	if len(st) != 1 || len(st[0].Alerts) != 1 {
		t.Fatalf("status shape: %+v", st)
	}
	if st[0].Alerts[0].Firing {
		t.Errorf("status still firing: %+v", st[0].Alerts[0])
	}
	if st[0].BudgetRemaining >= 1 {
		t.Errorf("budget should be partially spent, got %v", st[0].BudgetRemaining)
	}
}

// TestSLOLatencyObjective pins the histogram-threshold split.
func TestSLOLatencyObjective(t *testing.T) {
	o := Objective{Name: "lat", Goal: 0.9, Histogram: "h", ThresholdMs: 10}
	reg := telemetry.New()
	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	ex := reg.Export()
	bad, total, ok := o.counts(&ex)
	if !ok || total != 4 || bad != 2 {
		t.Errorf("counts: bad=%d total=%d ok=%v, want 2/4/true", bad, total, ok)
	}
}

// TestProfilerCooldownAndRing pins the rate limit (one capture per
// cooldown) and the bounded on-disk ring.
func TestProfilerCooldownAndRing(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenProfiler(ProfilerConfig{
		Dir:         dir,
		Cooldown:    time.Hour,
		CPUDuration: 20 * time.Millisecond,
		MaxCaptures: 2,
		Registry:    telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trigger("test-burst") {
		t.Fatal("first trigger suppressed")
	}
	if p.Trigger("test-burst") {
		t.Fatal("second trigger inside cooldown not suppressed")
	}
	waitCaptured(t, p, 1)

	caps := p.List()
	if caps[0].Reason != "test-burst" {
		t.Errorf("capture reason: %+v", caps[0])
	}
	cpu := filepath.Join(dir, caps[0].ID, caps[0].CPUProfile)
	heap := filepath.Join(dir, caps[0].ID, caps[0].HeapProfile)
	for _, f := range []string{cpu, heap} {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("profile file %s missing or empty: %v", f, err)
		}
	}

	// Force two more captures past the cooldown; the ring keeps 2.
	for i := 0; i < 2; i++ {
		p.last.Store(0)
		if !p.Trigger("again") {
			t.Fatalf("trigger %d suppressed", i)
		}
		waitFor(t, 5*time.Second, func() bool { return !p.capturing.Load() })
	}
	if got := len(p.List()); got != 2 {
		t.Errorf("ring size: got %d, want 2", got)
	}
}

func TestProfilerHTTP(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenProfiler(ProfilerConfig{
		Dir: dir, Cooldown: time.Hour, CPUDuration: 20 * time.Millisecond,
		Registry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Trigger("http-test")
	waitCaptured(t, p, 1)

	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/profiles", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "http-test") {
		t.Fatalf("list: %d %s", rec.Code, rec.Body.String())
	}
	id := p.List()[0].ID

	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/profiles/"+id+"/heap.pprof", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("download: %d len=%d", rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/profiles/../../etc/passwd", nil))
	if rec.Code == http.StatusOK {
		t.Errorf("path traversal served: %d", rec.Code)
	}
}

// TestInstrument pins that the wrapper records into the given registry,
// not the process default.
func TestInstrument(t *testing.T) {
	reg := telemetry.New()
	h := Instrument(reg, "diagnose", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ex := reg.Export()
	if v, _ := ex.Counter("http.diagnose.requests"); v != 4 {
		t.Errorf("requests: got %d, want 4", v)
	}
	if v, _ := ex.Counter("http.diagnose.errors"); v != 1 {
		t.Errorf("errors: got %d, want 1", v)
	}
	hp, ok := ex.Histogram("http.diagnose.latency_ms")
	if !ok || hp.Count() != 4 {
		t.Errorf("latency histogram: ok=%v count=%d", ok, hp.Count())
	}
}

func TestExpositionHandlerAndNegotiation(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("a.b").Add(1)
	srv := httptest.NewServer(ExpositionHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("content type: %q", got)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Errorf("self-scrape fails lint: %v\n%s", err, buf.String())
	}
}

// waitCaptured blocks until n captures have fully finished (metadata and
// profile files on disk, no capture in flight).
func waitCaptured(t *testing.T, p *Profiler, n int) {
	t.Helper()
	waitFor(t, 5*time.Second, func() bool {
		if p.capturing.Load() {
			return false
		}
		caps := p.List()
		if len(caps) != n {
			return false
		}
		for _, c := range caps {
			if c.CPUProfile == "" {
				return false
			}
		}
		return true
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}
