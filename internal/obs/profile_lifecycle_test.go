package obs

import (
	"testing"
	"time"
)

// TestProfilerCloseAwaitsInFlightCapture pins the awaited-shutdown
// contract: Close must interrupt a capture mid-CPU-window (not wait out
// its full duration), block until the capture goroutine exits, and refuse
// later triggers. Before Profiler gained Close, the capture goroutine was
// spawned unawaited — a shutdown during its 5s CPU window stranded it,
// and every e2e suite that tripped an SLO alert leaked it.
func TestProfilerCloseAwaitsInFlightCapture(t *testing.T) {
	p, err := OpenProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		CPUDuration: 30 * time.Second, // Close must not wait this out
		Cooldown:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trigger("lifecycle-test") {
		t.Fatal("trigger suppressed on a fresh profiler")
	}

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not interrupt the in-flight capture")
	}

	// After Close the goroutine is gone (the package leak check verifies),
	// the interrupted capture was still written, and triggers are refused.
	if got := p.List(); len(got) != 1 {
		t.Fatalf("%d captures after interrupted Close, want 1", len(got))
	}
	if p.Trigger("post-close") {
		t.Fatal("Trigger accepted after Close")
	}
	p.Close() // idempotent
}
