package obs

import (
	"fmt"
	"strings"

	"diagnet/internal/telemetry"
)

// GaugePolicy decides how one gauge family aggregates across replicas.
type GaugePolicy int

const (
	// GaugeSum adds replica values — right for occupancy-style gauges
	// (in-flight requests, queue depths) where the fleet total is the sum
	// of per-replica totals.
	GaugeSum GaugePolicy = iota
	// GaugeAvg averages replica values — right for level-style gauges
	// (readiness, drift scores, config epochs) where summing across the
	// fleet is meaningless.
	GaugeAvg
)

// DefaultGaugePolicy classifies by name: occupancy-style gauges sum, the
// rest average.
func DefaultGaugePolicy(name string) GaugePolicy {
	for _, marker := range []string{"inflight", "in_flight", "outstanding", "depth", "pending"} {
		if strings.Contains(name, marker) {
			return GaugeSum
		}
	}
	return GaugeAvg
}

// MergeExports combines per-replica exports into one fleet export:
//
//   - counters: integer sum — exact.
//   - histograms: element-wise sum of cumulative bucket counts plus the
//     float sum of sums. Exact (up to float addition of the sums) because
//     every DiagNet histogram of a given name shares fixed bounds; a
//     replica whose bounds disagree is skipped for that family and
//     reported in warnings rather than polluting the merge. The merged
//     exemplar is the one with the largest value — the fleet-wide tail
//     witness.
//   - gauges: policy-chosen sum or mean.
//
// The result is sorted by name, so merging the same inputs always yields
// byte-identical exposition.
func MergeExports(exports []telemetry.Export, policy func(string) GaugePolicy) (telemetry.Export, []string) {
	if policy == nil {
		policy = DefaultGaugePolicy
	}
	var warnings []string

	counters := map[string]int64{}
	type gaugeAgg struct {
		sum float64
		n   int
	}
	gauges := map[string]*gaugeAgg{}
	hists := map[string]*telemetry.HistogramPoint{}

	for ri := range exports {
		ex := &exports[ri]
		for _, c := range ex.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range ex.Gauges {
			a := gauges[g.Name]
			if a == nil {
				a = &gaugeAgg{}
				gauges[g.Name] = a
			}
			a.sum += g.Value
			a.n++
		}
		for _, h := range ex.Histograms {
			m := hists[h.Name]
			if m == nil {
				cp := h
				cp.Bounds = append([]float64(nil), h.Bounds...)
				cp.Cumulative = append([]int64(nil), h.Cumulative...)
				hists[h.Name] = &cp
				continue
			}
			if !sameBounds(m.Bounds, h.Bounds) {
				warnings = append(warnings, fmt.Sprintf("histogram %s: replica %d has mismatched bounds; skipped", h.Name, ri))
				continue
			}
			for i := range m.Cumulative {
				m.Cumulative[i] += h.Cumulative[i]
			}
			m.Sum += h.Sum
			if h.Exemplar != nil && (m.Exemplar == nil || h.Exemplar.Value > m.Exemplar.Value) {
				m.Exemplar = h.Exemplar
			}
		}
	}

	var out telemetry.Export
	for name, v := range counters {
		out.Counters = append(out.Counters, telemetry.CounterPoint{Name: name, Value: v})
	}
	for name, a := range gauges {
		v := a.sum
		if policy(name) == GaugeAvg && a.n > 0 {
			v = a.sum / float64(a.n)
		}
		out.Gauges = append(out.Gauges, telemetry.GaugePoint{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	sortExport(&out)
	return out, warnings
}

// SubtractHistogram returns the windowed distribution cur − prev
// (element-wise cumulative-count difference): the observations that
// arrived since prev was taken. A nil prev yields cur itself (the first
// window is the lifetime). Reports false on mismatched bounds or a
// negative delta (replica restart reset the counters).
func SubtractHistogram(cur, prev *telemetry.HistogramPoint) (telemetry.HistogramPoint, bool) {
	if prev == nil {
		return *cur, true
	}
	if !sameBounds(cur.Bounds, prev.Bounds) || len(cur.Cumulative) != len(prev.Cumulative) {
		return telemetry.HistogramPoint{}, false
	}
	out := telemetry.HistogramPoint{
		Name:       cur.Name,
		Bounds:     cur.Bounds,
		Cumulative: make([]int64, len(cur.Cumulative)),
		Sum:        cur.Sum - prev.Sum,
	}
	for i := range cur.Cumulative {
		d := cur.Cumulative[i] - prev.Cumulative[i]
		if d < 0 {
			return telemetry.HistogramPoint{}, false
		}
		out.Cumulative[i] = d
	}
	return out, true
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
