package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"diagnet/internal/telemetry"
)

// ParseExposition strictly parses exposition text back into an Export
// (metric names are the Prometheus family names). It doubles as the
// repo's promlint: beyond decoding, it enforces the rules a healthy
// exposition must satisfy —
//
//   - metric family names match [a-zA-Z_:][a-zA-Z0-9_:]*
//   - every family declares # HELP then # TYPE before any sample, with a
//     known type (counter, gauge, histogram) and no duplicate families
//   - counters expose exactly one <family>_total sample with a
//     non-negative integer value
//   - gauges expose exactly one <family> sample
//   - histograms expose _bucket series with strictly ascending le bounds,
//     monotone non-decreasing cumulative counts, a terminal le="+Inf"
//     bucket, then _sum and _count, with _count equal to the +Inf bucket
//   - exemplars ({trace_id="..."} annotations) appear only on bucket lines
//   - the document ends with # EOF and nothing follows it
//
// The federation path decodes replica scrapes through this same parser,
// so a replica whose exposition would fail lint is also rejected from the
// fleet merge — the lint rules are load-bearing, not advisory.
func ParseExposition(data []byte) (telemetry.Export, error) {
	p := &parser{}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			if i == len(lines)-1 {
				continue // trailing newline
			}
			return telemetry.Export{}, fmt.Errorf("obs: line %d: blank line inside exposition", ln)
		}
		if p.eof {
			return telemetry.Export{}, fmt.Errorf("obs: line %d: content after # EOF", ln)
		}
		var err error
		switch {
		case line == "# EOF":
			if err = p.finish(); err == nil {
				p.eof = true
			}
		case strings.HasPrefix(line, "# HELP "):
			err = p.help(line[len("# HELP "):])
		case strings.HasPrefix(line, "# TYPE "):
			err = p.typ(line[len("# TYPE "):])
		case strings.HasPrefix(line, "#"):
			err = fmt.Errorf("unexpected comment")
		default:
			err = p.sample(line)
		}
		if err != nil {
			return telemetry.Export{}, fmt.Errorf("obs: line %d: %w", ln, err)
		}
	}
	if !p.eof {
		return telemetry.Export{}, fmt.Errorf("obs: missing terminal # EOF")
	}
	sortExport(&p.out)
	return p.out, nil
}

// parser accumulates one family at a time; finish validates and commits
// it into the output export.
type parser struct {
	out  telemetry.Export
	seen map[string]bool
	eof  bool

	fam     string
	famType string
	samples int

	// histogram accumulation
	bounds   []float64
	counts   []int64
	sawInf   bool
	sum      float64
	sumSet   bool
	count    int64
	countSet bool
	exemplar *telemetry.Exemplar

	// counter / gauge value
	cval int64
	gval float64
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// help opens a new family (closing the previous one).
func (p *parser) help(rest string) error {
	name, _, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		return fmt.Errorf("malformed HELP")
	}
	if !validName(name) {
		return fmt.Errorf("invalid metric family name %q", name)
	}
	if err := p.finish(); err != nil {
		return err
	}
	if p.seen == nil {
		p.seen = map[string]bool{}
	}
	if p.seen[name] {
		return fmt.Errorf("duplicate metric family %q", name)
	}
	p.seen[name] = true
	p.fam = name
	return nil
}

func (p *parser) typ(rest string) error {
	name, t, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("malformed TYPE")
	}
	if p.fam == "" || name != p.fam {
		return fmt.Errorf("TYPE %q without preceding HELP", name)
	}
	if p.famType != "" {
		return fmt.Errorf("duplicate TYPE for %q", name)
	}
	switch t {
	case "counter", "gauge", "histogram":
		p.famType = t
	default:
		return fmt.Errorf("unknown type %q for %q", t, name)
	}
	return nil
}

// finish validates and commits the open family, resetting the
// accumulator.
func (p *parser) finish() error {
	if p.fam == "" {
		return nil
	}
	if p.famType == "" {
		return fmt.Errorf("family %q has HELP but no TYPE", p.fam)
	}
	if p.samples == 0 {
		return fmt.Errorf("family %q has no samples", p.fam)
	}
	switch p.famType {
	case "counter":
		p.out.Counters = append(p.out.Counters, telemetry.CounterPoint{Name: p.fam, Value: p.cval})
	case "gauge":
		p.out.Gauges = append(p.out.Gauges, telemetry.GaugePoint{Name: p.fam, Value: p.gval})
	case "histogram":
		if !p.sawInf {
			return fmt.Errorf("histogram %q lacks the terminal +Inf bucket", p.fam)
		}
		if !p.sumSet || !p.countSet {
			return fmt.Errorf("histogram %q lacks _sum or _count", p.fam)
		}
		if p.count != p.counts[len(p.counts)-1] {
			return fmt.Errorf("histogram %q _count %d != +Inf bucket %d", p.fam, p.count, p.counts[len(p.counts)-1])
		}
		p.out.Histograms = append(p.out.Histograms, telemetry.HistogramPoint{
			Name:       p.fam,
			Bounds:     p.bounds,
			Cumulative: p.counts,
			Sum:        p.sum,
			Exemplar:   p.exemplar,
		})
	}
	p.fam, p.famType, p.samples = "", "", 0
	p.bounds, p.counts, p.sawInf = nil, nil, false
	p.sum, p.sumSet, p.count, p.countSet = 0, false, 0, false
	p.exemplar = nil
	p.cval, p.gval = 0, 0
	return nil
}

// sample parses one sample line and applies the per-type rules.
func (p *parser) sample(line string) error {
	if p.fam == "" || p.famType == "" {
		return fmt.Errorf("sample before HELP/TYPE")
	}
	name, labels, value, exemplar, err := splitSample(line)
	if err != nil {
		return err
	}
	switch p.famType {
	case "counter":
		if name != p.fam+"_total" {
			return fmt.Errorf("counter %q: unexpected sample %q", p.fam, name)
		}
		if p.samples != 0 {
			return fmt.Errorf("counter %q: duplicate sample", p.fam)
		}
		if labels != "" || exemplar != nil {
			return fmt.Errorf("counter %q: unexpected labels or exemplar", p.fam)
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("counter %q: value %q is not a non-negative integer", p.fam, value)
		}
		p.cval = v
	case "gauge":
		if name != p.fam {
			return fmt.Errorf("gauge %q: unexpected sample %q", p.fam, name)
		}
		if p.samples != 0 {
			return fmt.Errorf("gauge %q: duplicate sample", p.fam)
		}
		if labels != "" || exemplar != nil {
			return fmt.Errorf("gauge %q: unexpected labels or exemplar", p.fam)
		}
		v, err := parseValue(value)
		if err != nil {
			return fmt.Errorf("gauge %q: bad value %q", p.fam, value)
		}
		p.gval = v
	case "histogram":
		return p.histogramSample(name, labels, value, exemplar)
	}
	p.samples++
	return nil
}

func (p *parser) histogramSample(name, labels, value string, exemplar *telemetry.Exemplar) error {
	switch name {
	case p.fam + "_bucket":
		if p.sumSet || p.countSet {
			return fmt.Errorf("histogram %q: bucket after _sum/_count", p.fam)
		}
		le, ok := strings.CutPrefix(labels, `le="`)
		if !ok || !strings.HasSuffix(le, `"`) || strings.Contains(le[:len(le)-1], `"`) {
			return fmt.Errorf("histogram %q: bucket needs exactly the le label, got %q", p.fam, labels)
		}
		le = le[:len(le)-1]
		c, err := strconv.ParseInt(value, 10, 64)
		if err != nil || c < 0 {
			return fmt.Errorf("histogram %q: bucket count %q is not a non-negative integer", p.fam, value)
		}
		if len(p.counts) > 0 && c < p.counts[len(p.counts)-1] {
			return fmt.Errorf("histogram %q: cumulative bucket counts decrease at le=%q", p.fam, le)
		}
		if p.sawInf {
			return fmt.Errorf("histogram %q: bucket after le=\"+Inf\"", p.fam)
		}
		if le == "+Inf" {
			p.sawInf = true
		} else {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil || math.IsNaN(b) || math.IsInf(b, 0) {
				return fmt.Errorf("histogram %q: bad le %q", p.fam, le)
			}
			if len(p.bounds) > 0 && b <= p.bounds[len(p.bounds)-1] {
				return fmt.Errorf("histogram %q: le bounds not strictly ascending at %q", p.fam, le)
			}
			p.bounds = append(p.bounds, b)
		}
		p.counts = append(p.counts, c)
		if exemplar != nil {
			p.exemplar = exemplar
		}
	case p.fam + "_sum":
		if labels != "" || exemplar != nil {
			return fmt.Errorf("histogram %q: _sum with labels or exemplar", p.fam)
		}
		if p.sumSet {
			return fmt.Errorf("histogram %q: duplicate _sum", p.fam)
		}
		v, err := parseValue(value)
		if err != nil {
			return fmt.Errorf("histogram %q: bad _sum %q", p.fam, value)
		}
		p.sum, p.sumSet = v, true
	case p.fam + "_count":
		if labels != "" || exemplar != nil {
			return fmt.Errorf("histogram %q: _count with labels or exemplar", p.fam)
		}
		if !p.sumSet {
			return fmt.Errorf("histogram %q: _count before _sum", p.fam)
		}
		if p.countSet {
			return fmt.Errorf("histogram %q: duplicate _count", p.fam)
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("histogram %q: _count %q is not a non-negative integer", p.fam, value)
		}
		p.count, p.countSet = v, true
	default:
		return fmt.Errorf("histogram %q: unexpected sample %q", p.fam, name)
	}
	p.samples++
	return nil
}

// parseValue parses a sample value, admitting the exposition spellings of
// the non-finite floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	return strconv.ParseFloat(s, 64)
}

// splitSample breaks a sample line into name, raw label block (without
// braces), value token and optional exemplar.
//
//	name{le="0.5"} 123 # {trace_id="ab12"} 0.4
func splitSample(line string) (name, labels, value string, exemplar *telemetry.Exemplar, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", "", nil, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !validName(name) && !validName(strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_total"), "_bucket"), "_sum")) {
		return "", "", "", nil, fmt.Errorf("invalid sample name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", "", nil, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", "", nil, fmt.Errorf("missing value in %q", line)
	}
	rest = rest[1:]
	value, rest, _ = strings.Cut(rest, " ")
	if rest != "" {
		ex, err := parseExemplar(rest)
		if err != nil {
			return "", "", "", nil, err
		}
		exemplar = ex
	}
	return name, labels, value, exemplar, nil
}

// parseExemplar parses the OpenMetrics exemplar tail:
//
//	# {trace_id="ab12"} 0.4
func parseExemplar(s string) (*telemetry.Exemplar, error) {
	rest, ok := strings.CutPrefix(s, `# {trace_id="`)
	if !ok {
		return nil, fmt.Errorf("malformed exemplar %q", s)
	}
	id, rest, ok := strings.Cut(rest, `"`)
	if !ok || !strings.HasPrefix(rest, "} ") {
		return nil, fmt.Errorf("malformed exemplar %q", s)
	}
	v, err := parseValue(rest[2:])
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value in %q", s)
	}
	return &telemetry.Exemplar{TraceID: id, Value: v}, nil
}
