package obs

import (
	"bytes"
	"testing"

	"diagnet/internal/telemetry"
)

// FuzzParseExposition asserts the strict parser never panics, and that
// any document it accepts survives a write→reparse round trip with a
// byte-identical re-exposition (the property federation relies on).
func FuzzParseExposition(f *testing.F) {
	reg := telemetry.New()
	reg.Counter("http.diagnose.requests").Add(42)
	reg.Gauge("http.inflight").Set(1.5)
	h := reg.Histogram("http.diagnose.latency_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.ObserveExemplar(50, "cafe01")
	var seed bytes.Buffer
	ex := reg.Export()
	if err := WriteExposition(&seed, &ex); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("# EOF\n"))
	f.Add([]byte("# HELP a A.\n# TYPE a counter\na_total 1\n# EOF\n"))
	f.Add([]byte("# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3.5\nh_count 2\n# EOF\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseExposition(data)
		if err != nil {
			return
		}
		var out1, out2 bytes.Buffer
		if err := WriteExposition(&out1, &parsed); err != nil {
			t.Fatalf("write after accept: %v", err)
		}
		re, err := ParseExposition(out1.Bytes())
		if err != nil {
			t.Fatalf("accepted document fails reparse: %v\ninput: %q\nre-exposed:\n%s", err, data, out1.String())
		}
		if err := WriteExposition(&out2, &re); err != nil {
			t.Fatalf("re-write: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("exposition unstable:\n%s\nvs\n%s", out1.String(), out2.String())
		}
	})
}
