package landmark

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// drainServer accepts uploads and discards them, without the landmark
// counters in the way.
func drainServer(b *testing.B) *httptest.Server {
	b.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusNoContent)
	}))
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkUploadStreaming measures the streaming upload path: the payload
// is generated on the fly from a shared 32 KiB pattern buffer, so
// allocations stay flat regardless of UploadBytes.
func BenchmarkUploadStreaming(b *testing.B) {
	ts := drainServer(b)
	p := NewProber(ProberConfig{})
	const n = 1 << 20
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.upload(context.Background(), ts.URL, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUploadMaterialized is the pre-streaming baseline: materialize
// the whole payload per call (the old bytes.Repeat approach) — kept as a
// benchmark so the ~1 MiB/op allocation win stays visible.
func BenchmarkUploadMaterialized(b *testing.B) {
	ts := drainServer(b)
	p := NewProber(ProberConfig{})
	const n = 1 << 20
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := bytes.Repeat([]byte{0xA5}, n)
		req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, ts.URL+"/upload", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := p.Client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestRepeatReaderExactLength pins the streaming body's framing: it must
// deliver exactly n bytes of the pattern and then EOF.
func TestRepeatReaderExactLength(t *testing.T) {
	for _, n := range []int64{0, 1, 100, 32 << 10, 32<<10 + 7, 1 << 20} {
		r := &repeatReader{remaining: n}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != n {
			t.Fatalf("n=%d: read %d bytes", n, len(data))
		}
		for i, b := range data {
			if b != 0xA5 {
				t.Fatalf("n=%d: byte %d = %#x", n, i, b)
			}
		}
	}
}
