package landmark

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diagnet/internal/stats"
)

// FlakyConfig describes the fault mix a FlakyHandler injects. The rates
// are per-request probabilities evaluated in order (error, stall,
// truncate, latency); their sum should stay ≤ 1.
type FlakyConfig struct {
	// ErrorRate answers requests with a 500 instead of serving them.
	ErrorRate float64
	// StallRate accepts the request and never responds until the client
	// gives up (connection hang — the nastiest WAN failure mode).
	StallRate float64
	// TruncateRate advertises a full Content-Length, writes half the
	// body, then aborts the connection mid-transfer.
	TruncateRate float64
	// LatencyRate delays the response by Latency before serving normally.
	LatencyRate float64
	// Latency is the injected delay (default 200ms when LatencyRate > 0).
	Latency time.Duration
	// Seed makes the fault sequence deterministic when non-zero.
	Seed int64
}

// FlakyHandler wraps a landmark (or any) HTTP handler with configurable
// fault injection: error rates, latency spikes, stalls and truncated
// bodies. Chaos tests use it to assert that the probing plane degrades
// instead of failing when a fraction of landmarks misbehave. The config
// can be swapped at runtime (SetConfig) to script recovery scenarios.
type FlakyHandler struct {
	inner http.Handler

	mu  sync.Mutex
	cfg FlakyConfig
	// rng is a per-handler locked source: concurrent requests draw from
	// this handler's own deterministic sequence, never the global one, so
	// a seeded chaos run replays regardless of what else the process does.
	rng *stats.LockedRand

	served   atomic.Int64 // requests passed through unharmed
	injected atomic.Int64 // requests that got a fault
}

// NewFlakyHandler wraps inner with the given fault mix.
func NewFlakyHandler(inner http.Handler, cfg FlakyConfig) *FlakyHandler {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &FlakyHandler{inner: inner, cfg: cfg, rng: stats.NewLocked(seed)}
}

// SetConfig replaces the fault mix (e.g. to heal a landmark mid-test).
func (f *FlakyHandler) SetConfig(cfg FlakyConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// Served returns how many requests passed through unharmed.
func (f *FlakyHandler) Served() int64 { return f.served.Load() }

// Injected returns how many requests received an injected fault.
func (f *FlakyHandler) Injected() int64 { return f.injected.Load() }

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultStall
	faultTruncate
	faultLatency
)

// roll draws the fault for one request.
func (f *FlakyHandler) roll() (faultKind, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.rng.Float64()
	cfg := f.cfg
	if p < cfg.ErrorRate {
		return faultError, 0
	}
	p -= cfg.ErrorRate
	if p < cfg.StallRate {
		return faultStall, 0
	}
	p -= cfg.StallRate
	if p < cfg.TruncateRate {
		return faultTruncate, 0
	}
	p -= cfg.TruncateRate
	if p < cfg.LatencyRate {
		d := cfg.Latency
		if d <= 0 {
			d = 200 * time.Millisecond
		}
		return faultLatency, d
	}
	return faultNone, 0
}

// ServeHTTP implements http.Handler.
func (f *FlakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	kind, delay := f.roll()
	switch kind {
	case faultError:
		f.injected.Add(1)
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	case faultStall:
		f.injected.Add(1)
		// Hold the request open until the client abandons it.
		<-r.Context().Done()
		return
	case faultTruncate:
		f.injected.Add(1)
		// Promise a body, deliver half, then kill the connection so the
		// client sees an unexpected EOF rather than a clean close.
		const promised = 64 << 10
		w.Header().Set("Content-Length", strconv.Itoa(promised))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(make([]byte, promised/2))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	case faultLatency:
		f.injected.Add(1)
		// Stoppable timer: with time.After, a client that gives up early
		// leaves the timer allocated until the full delay elapses — under
		// chaos soak cadence that is thousands of live timers.
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		f.inner.ServeHTTP(w, r)
		return
	}
	f.served.Add(1)
	f.inner.ServeHTTP(w, r)
}
