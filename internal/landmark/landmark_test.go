package landmark

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diagnet/internal/tcpinfo"
)

func newTestLandmark(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := &Server{}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestPingEndpoint(t *testing.T) {
	s, ts := newTestLandmark(t)
	resp, err := http.Get(ts.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if s.Stats().Pings != 1 {
		t.Fatalf("ping counter %d", s.Stats().Pings)
	}
}

func TestDownloadExactBytes(t *testing.T) {
	s, ts := newTestLandmark(t)
	resp, err := http.Get(ts.URL + "/download?bytes=12345")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	if n != 12345 {
		t.Fatalf("got %d bytes", n)
	}
	if s.Stats().BytesServed != 12345 || s.Stats().Downloads != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestDownloadRejectsBadRequests(t *testing.T) {
	_, ts := newTestLandmark(t)
	for _, q := range []string{"bytes=-1", "bytes=abc", "bytes=0", fmt.Sprintf("bytes=%d", int64(maxDownloadBytes)+1)} {
		resp, err := http.Get(ts.URL + "/download?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestDownloadPayloadIncompressible(t *testing.T) {
	_, ts := newTestLandmark(t)
	resp, err := http.Get(ts.URL + "/download?bytes=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	// A constant payload would have one distinct byte; random data has many.
	distinct := map[byte]bool{}
	for _, b := range body {
		distinct[b] = true
	}
	if len(distinct) < 64 {
		t.Fatalf("payload too uniform: %d distinct bytes", len(distinct))
	}
}

func TestUploadCountsBytes(t *testing.T) {
	s, ts := newTestLandmark(t)
	resp, err := http.Post(ts.URL+"/upload", "application/octet-stream", strings.NewReader(strings.Repeat("x", 5000)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if s.Stats().BytesReceived != 5000 {
		t.Fatalf("received %d", s.Stats().BytesReceived)
	}
	// GET on upload is rejected.
	resp, _ = http.Get(ts.URL + "/upload")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET upload status %d", resp.StatusCode)
	}
}

func TestStatsEndpointJSON(t *testing.T) {
	_, ts := newTestLandmark(t)
	http.Get(ts.URL + "/ping")
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Pings != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestServerConcurrentSafety(t *testing.T) {
	s, ts := newTestLandmark(t)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/ping")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if s.Stats().Pings != 20 {
		t.Fatalf("pings %d", s.Stats().Pings)
	}
}

func TestSaturationSheddingLoad(t *testing.T) {
	s := &Server{MaxConcurrentTransfers: 1}
	gate := make(chan struct{})
	// Wrap the handler so we can hold one download open.
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("hold") == "1" {
			<-gate
		}
		s.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()

	// Start a download that blocks inside the slot.
	started := make(chan struct{})
	bgDone := make(chan struct{})
	go func() {
		close(started)
		defer close(bgDone)
		resp, err := http.Get(ts.URL + "/download?bytes=1048576&hold=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	// The hold happens before the semaphore, so instead drive saturation
	// directly through acquire.
	release, ok := s.acquire()
	if !ok {
		t.Fatal("first slot should acquire")
	}
	if _, ok := s.acquire(); ok {
		t.Fatal("second slot must be rejected")
	}
	// A saturated server answers 503 on transfers but still pings.
	resp, err := http.Get(ts.URL + "/download?bytes=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated download status %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/ping")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatal("ping must survive saturation")
	}
	release()
	close(gate)
	// Let the held background download drain its slot before checking
	// that transfers flow again (it may legitimately grab it first).
	<-bgDone
	// After release, transfers flow again.
	resp, err = http.Get(ts.URL + "/download?bytes=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release download status %d", resp.StatusCode)
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejections not counted")
	}
}

func TestProbeEndToEnd(t *testing.T) {
	_, ts := newTestLandmark(t)
	p := NewProber(ProberConfig{Pings: 5, DownloadBytes: 256 << 10, UploadBytes: 128 << 10})
	m, err := p.Probe(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m.RTTMs <= 0 {
		t.Fatalf("RTT %v", m.RTTMs)
	}
	if m.JitterMs < 0 {
		t.Fatalf("jitter %v", m.JitterMs)
	}
	if m.DownMbps <= 0 || m.UpMbps <= 0 {
		t.Fatalf("throughput %v/%v", m.DownMbps, m.UpMbps)
	}
	if m.Stats.Downloads != 1 || m.Stats.Uploads != 1 {
		t.Fatalf("landmark stats %+v", m.Stats)
	}
	// Loopback RTT must be far below WAN latencies.
	if m.RTTMs > 100 {
		t.Fatalf("loopback RTT %v ms implausible", m.RTTMs)
	}
}

func TestProbeKernelTCPInfo(t *testing.T) {
	if !tcpinfo.Supported() {
		t.Skip("TCP_INFO unsupported")
	}
	_, ts := newTestLandmark(t)
	p := NewProber(ProberConfig{Pings: 3, DownloadBytes: 512 << 10, UploadBytes: 256 << 10})
	m, err := p.Probe(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m.LossProxy < 0 {
		t.Fatal("loss proxy unavailable despite TCP_INFO support")
	}
	// Loopback: no retransmissions.
	if m.LossProxy != 0 {
		t.Fatalf("loopback loss proxy %v", m.LossProxy)
	}
	if m.KernelRTTMs <= 0 || m.KernelRTTMs > 100 {
		t.Fatalf("kernel RTT %v ms implausible for loopback", m.KernelRTTMs)
	}
}

func TestProbeTimeout(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer slow.Close()
	p := NewProber(ProberConfig{Timeout: 50 * time.Millisecond})
	if _, err := p.Probe(context.Background(), slow.URL); err == nil {
		t.Fatal("want timeout error")
	}
}

func TestProbeBadLandmark(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer broken.Close()
	p := NewProber(ProberConfig{})
	if _, err := p.Probe(context.Background(), broken.URL); err == nil {
		t.Fatal("want error from broken landmark")
	}
}

func TestProberConfigDefaults(t *testing.T) {
	cfg := ProberConfig{}.withDefaults()
	if cfg.Pings != 7 || cfg.DownloadBytes != 2<<20 || cfg.UploadBytes != 1<<20 || cfg.Timeout <= 0 {
		t.Fatalf("defaults %+v", cfg)
	}
}
