package landmark

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"diagnet/internal/resilience"
	"diagnet/internal/tcpinfo"
)

// Measurement is what one probe of one landmark yields: the live
// counterpart of the simulator's per-landmark metric vector.
type Measurement struct {
	RTTMs    float64 // median of the ping round trips
	JitterMs float64 // spread (p90−p10) of the ping round trips
	DownMbps float64
	UpMbps   float64
	Stats    Stats // landmark-side counters at probe time
	// LossProxy is the retransmitted-segment ratio of the probe's own TCP
	// connection, read via getsockopt(TCP_INFO) where the platform allows
	// (the paper's loss metric, §IV-A-b); -1 when unavailable.
	LossProxy float64
	// KernelRTTMs is the kernel's smoothed RTT estimate for the probing
	// connection; 0 when unavailable.
	KernelRTTMs float64
}

// ProberConfig tunes the probing cost.
type ProberConfig struct {
	Pings         int   // RTT samples; default 7
	DownloadBytes int64 // default 2 MiB
	UploadBytes   int64 // default 1 MiB
	Timeout       time.Duration
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Pings <= 0 {
		c.Pings = 7
	}
	if c.DownloadBytes <= 0 {
		c.DownloadBytes = 2 << 20
	}
	if c.UploadBytes <= 0 {
		c.UploadBytes = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Prober measures landmarks over HTTP, reusing connections so that RTT
// pings after the first approximate a single round trip (the paper used a
// WebSocket upgrade for the same reason). On platforms exposing TCP_INFO,
// the prober also reads its own connections' kernel statistics for the
// retransmission (loss) metric.
type Prober struct {
	Client *http.Client
	Config ProberConfig

	conns *connTracker
}

// connTracker remembers the most recent TCP connection dialed per remote
// address so the prober can query its kernel statistics.
type connTracker struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

func (ct *connTracker) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	ct.mu.Lock()
	ct.conns[addr] = conn
	ct.mu.Unlock()
	return conn, nil
}

func (ct *connTracker) lookup(addr string) net.Conn {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.conns[addr]
}

// NewProber returns a prober with keep-alive transport and defaults.
func NewProber(cfg ProberConfig) *Prober {
	ct := &connTracker{conns: map[string]net.Conn{}}
	return &Prober{
		Client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			DialContext:         ct.dial,
		}},
		Config: cfg.withDefaults(),
		conns:  ct,
	}
}

// Probe measures the landmark at baseURL (e.g. "http://host:port").
func (p *Prober) Probe(ctx context.Context, baseURL string) (Measurement, error) {
	cfg := p.Config.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	var m Measurement

	// Warm the connection (DNS/TCP), then time pings.
	if err := p.ping(ctx, baseURL); err != nil {
		return m, fmt.Errorf("landmark: warm-up: %w", err)
	}
	rtts := make([]float64, 0, cfg.Pings)
	for i := 0; i < cfg.Pings; i++ {
		start := time.Now()
		if err := p.ping(ctx, baseURL); err != nil {
			return m, fmt.Errorf("landmark: ping %d: %w", i, err)
		}
		rtts = append(rtts, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(rtts)
	m.RTTMs = rtts[len(rtts)/2]
	m.JitterMs = rtts[len(rtts)*9/10] - rtts[len(rtts)/10]

	// Download throughput.
	start := time.Now()
	n, err := p.download(ctx, baseURL, cfg.DownloadBytes)
	if err != nil {
		return m, fmt.Errorf("landmark: download: %w", err)
	}
	m.DownMbps = mbps(n, time.Since(start))

	// Upload throughput.
	start = time.Now()
	if err := p.upload(ctx, baseURL, cfg.UploadBytes); err != nil {
		return m, fmt.Errorf("landmark: upload: %w", err)
	}
	m.UpMbps = mbps(cfg.UploadBytes, time.Since(start))

	// Landmark-side stats.
	stats, err := p.stats(ctx, baseURL)
	if err != nil {
		return m, fmt.Errorf("landmark: stats: %w", err)
	}
	m.Stats = stats

	// Kernel-level TCP statistics of our own probing connection
	// (best effort: absent off Linux or when the transport re-dialed).
	m.LossProxy = -1
	if host := hostOf(baseURL); host != "" {
		if conn := p.conns.lookup(host); conn != nil {
			if info, err := tcpinfo.Get(conn); err == nil {
				m.KernelRTTMs = float64(info.RTTUs) / 1000
				mss := int64(info.SndMSS)
				if mss == 0 {
					mss = 1448
				}
				segsEstimate := (cfg.DownloadBytes + cfg.UploadBytes) / mss
				if segsEstimate > 0 {
					m.LossProxy = float64(info.TotalRetrans) / float64(segsEstimate)
				}
			}
		}
	}
	return m, nil
}

// hostOf extracts host:port from a landmark base URL.
func hostOf(baseURL string) string {
	u, err := url.Parse(baseURL)
	if err != nil {
		return ""
	}
	host := u.Host
	if u.Port() == "" {
		switch u.Scheme {
		case "https":
			host += ":443"
		default:
			host += ":80"
		}
	}
	return host
}

func mbps(bytes int64, d time.Duration) float64 {
	secs := d.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return float64(bytes) * 8 / 1e6 / secs
}

func (p *Prober) ping(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/ping", nil)
	if err != nil {
		return err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("ping: %w", &resilience.HTTPStatusError{Code: resp.StatusCode})
	}
	return nil
}

func (p *Prober) download(ctx context.Context, base string, n int64) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/download?bytes=%d", base, n), nil)
	if err != nil {
		return 0, err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("download: %w", &resilience.HTTPStatusError{Code: resp.StatusCode})
	}
	got, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return got, err
	}
	if got != n {
		return got, fmt.Errorf("download returned %d bytes, want %d: %w", got, n, io.ErrUnexpectedEOF)
	}
	return got, nil
}

// uploadPattern is the shared chunk the streaming upload body copies
// from; one page-sized buffer serves every probe instead of materializing
// the full 1 MiB+ payload per landmark per round.
var uploadPattern = func() []byte {
	b := make([]byte, 32<<10)
	for i := range b {
		b[i] = 0xA5
	}
	return b
}()

// repeatReader streams n pattern bytes without allocating them.
type repeatReader struct{ remaining int64 }

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.remaining > 0 {
		c := copy(p[n:], uploadPattern)
		if int64(c) > r.remaining {
			c = int(r.remaining)
		}
		n += c
		r.remaining -= int64(c)
	}
	return n, nil
}

func (p *Prober) upload(ctx context.Context, base string, n int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/upload", &repeatReader{remaining: n})
	if err != nil {
		return err
	}
	// An explicit length (plus GetBody for transparent transport retries)
	// keeps the request un-chunked, like the bytes.Reader it replaces.
	req.ContentLength = n
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(&repeatReader{remaining: n}), nil
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("upload: %w", &resilience.HTTPStatusError{Code: resp.StatusCode})
	}
	return nil
}

func (p *Prober) stats(ctx context.Context, base string) (Stats, error) {
	var s Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return s, err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("stats: %w", &resilience.HTTPStatusError{Code: resp.StatusCode})
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, err
	}
	return s, nil
}
