package landmark

import (
	"testing"

	"diagnet/internal/probe"
)

func TestFeaturesLayoutOrder(t *testing.T) {
	ms := []Measurement{
		{RTTMs: 10, JitterMs: 1, DownMbps: 50, UpMbps: 30},
		{RTTMs: 20, JitterMs: 2, DownMbps: 40, UpMbps: 25},
	}
	local := LocalMetrics{GatewayRTTMs: 3, GatewayJitterMs: 0.5, CPULoad: 0.2, MemLoad: 0.4, IOLoad: 0.1}
	x := Features(ms, []float64{0.01, 0.02}, local)

	layout := probe.NewLayout([]int{0, 1})
	if len(x) != layout.NumFeatures() {
		t.Fatalf("len %d, want %d", len(x), layout.NumFeatures())
	}
	if x[layout.FeatureIndex(1, probe.MetricRTT)] != 20 {
		t.Fatal("RTT misplaced")
	}
	if x[layout.FeatureIndex(0, probe.MetricLoss)] != 0.01 {
		t.Fatal("loss misplaced")
	}
	if x[layout.FeatureIndex(1, probe.MetricUpBW)] != 25 {
		t.Fatal("upload misplaced")
	}
	if x[layout.LocalIndex(probe.LocalGatewayRTT)] != 3 {
		t.Fatal("gateway RTT misplaced")
	}
	if x[layout.LocalIndex(probe.LocalIO)] != 0.1 {
		t.Fatal("IO load misplaced")
	}
}

func TestFeaturesNilLossDefaultsZero(t *testing.T) {
	x := Features([]Measurement{{RTTMs: 5}}, nil, LocalMetrics{})
	layout := probe.NewLayout([]int{0})
	if x[layout.FeatureIndex(0, probe.MetricLoss)] != 0 {
		t.Fatal("nil loss should yield 0")
	}
}
