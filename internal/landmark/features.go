package landmark

import "diagnet/internal/probe"

// LocalMetrics carries the client-side measurements accompanying a probe
// round (gateway RTT/jitter and host load), the paper's "local features".
type LocalMetrics struct {
	GatewayRTTMs    float64
	GatewayJitterMs float64
	CPULoad         float64
	MemLoad         float64
	IOLoad          float64
}

// Features flattens live landmark measurements plus local metrics into a
// DiagNet feature vector in probe-layout order (k = 5 metrics per
// landmark, then the local block). The loss metric comes from the explicit
// `loss` slice when given, else from each measurement's kernel-derived
// LossProxy (getsockopt TCP_INFO, Linux), else zero.
func Features(ms []Measurement, loss []float64, local LocalMetrics) []float64 {
	k := int(probe.NumMetrics)
	out := make([]float64, len(ms)*k+probe.NumLocal)
	for i, m := range ms {
		out[i*k+int(probe.MetricRTT)] = m.RTTMs
		out[i*k+int(probe.MetricJitter)] = m.JitterMs
		switch {
		case loss != nil:
			out[i*k+int(probe.MetricLoss)] = loss[i]
		case m.LossProxy >= 0:
			out[i*k+int(probe.MetricLoss)] = m.LossProxy
		}
		out[i*k+int(probe.MetricDownBW)] = m.DownMbps
		out[i*k+int(probe.MetricUpBW)] = m.UpMbps
	}
	base := len(ms) * k
	out[base+probe.LocalGatewayRTT] = local.GatewayRTTMs
	out[base+probe.LocalGatewayJitter] = local.GatewayJitterMs
	out[base+probe.LocalCPU] = local.CPULoad
	out[base+probe.LocalMem] = local.MemLoad
	out[base+probe.LocalIO] = local.IOLoad
	return out
}
