package landmark

import (
	"context"
	"fmt"
	"sync"
	"time"

	"diagnet/internal/resilience"
	"diagnet/internal/telemetry"
	"diagnet/internal/tracing"
)

// Probing-plane metrics (DESIGN.md §10): round and landmark counters plus
// circuit-breaker state transitions, shared by every MultiProber in the
// process.
var (
	mRounds         = telemetry.Default().Counter("probe.rounds")
	mRoundsDegraded = telemetry.Default().Counter("probe.rounds_degraded")
	mRoundMs        = telemetry.Default().Histogram("probe.round_ms", nil)
	mLandmarkMs     = telemetry.Default().Histogram("probe.landmark_ms", nil)
	mProbeSuccesses = telemetry.Default().Counter("probe.landmark.successes")
	mProbeFailures  = telemetry.Default().Counter("probe.landmark.failures")
	mProbeSkips     = telemetry.Default().Counter("probe.landmark.skips")
	mBreakerOpened  = telemetry.Default().Counter("probe.breaker.opened")
	mBreakerHalf    = telemetry.Default().Counter("probe.breaker.half_open")
	mBreakerClosed  = telemetry.Default().Counter("probe.breaker.closed")
)

// countTransition feeds breaker state changes into the transition counters.
func countTransition(_, to resilience.BreakerState) {
	switch to {
	case resilience.Open:
		mBreakerOpened.Inc()
	case resilience.HalfOpen:
		mBreakerHalf.Inc()
	case resilience.Closed:
		mBreakerClosed.Inc()
	}
}

// MultiProberConfig tunes the fault-tolerant multi-landmark prober.
type MultiProberConfig struct {
	// Prober configures the underlying single-landmark prober.
	Prober ProberConfig
	// MaxConcurrent bounds the worker pool probing landmarks in parallel
	// (default 4).
	MaxConcurrent int
	// RoundTimeout caps one ProbeAll round across all landmarks
	// (default 60s).
	RoundTimeout time.Duration
	// Retry is applied per landmark around the full probe (default:
	// 2 attempts — probes are expensive, one retry covers blips).
	Retry resilience.RetryPolicy
	// Breaker configures the per-landmark circuit breakers (default:
	// 3 consecutive failures open; 30s cooldown).
	Breaker resilience.BreakerConfig
	// PingTimeout caps the cheap half-open recovery ping (default 5s).
	PingTimeout time.Duration
}

func (c MultiProberConfig) withDefaults() MultiProberConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 60 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 2
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = 5 * time.Second
	}
	return c
}

// ProbeResult is the outcome of one landmark in a probing round.
type ProbeResult struct {
	URL         string
	Index       int // position in the ProbeAll input slice
	Measurement Measurement
	Err         error // nil on success
	Skipped     bool  // circuit open: no full probe was attempted
	Attempts    int   // full-probe attempts (0 when skipped)
	Elapsed     time.Duration
}

// OK reports whether the landmark yielded a usable measurement.
func (r ProbeResult) OK() bool { return r.Err == nil && !r.Skipped }

// LandmarkHealth is a snapshot of one landmark's probing history.
type LandmarkHealth struct {
	State               string    `json:"state"` // closed | open | half-open
	ConsecutiveFailures int       `json:"consecutive_failures"`
	EWMALatencyMs       float64   `json:"ewma_latency_ms"` // full-probe wall time
	Probes              int64     `json:"probes"`          // full probes attempted
	Successes           int64     `json:"successes"`
	Skips               int64     `json:"skips"` // rounds skipped by an open circuit
	LastError           string    `json:"last_error,omitempty"`
	LastSuccess         time.Time `json:"last_success"`
}

// landmarkState is the per-landmark mutable record.
type landmarkState struct {
	breaker *resilience.Breaker
	latency *resilience.EWMA

	mu          sync.Mutex
	probes      int64
	successes   int64
	skips       int64
	lastError   string
	lastSuccess time.Time
}

// MultiProber probes many landmarks concurrently and keeps per-landmark
// health: retries with backoff inside a round, circuit breakers across
// rounds, and partial results when some landmarks are down — the live
// counterpart of the model's ZeroMask extensibility (§IV-B-a). Safe for
// concurrent use.
type MultiProber struct {
	prober *Prober
	cfg    MultiProberConfig

	mu     sync.Mutex
	states map[string]*landmarkState
}

// NewMultiProber returns a fault-tolerant prober over the given config.
func NewMultiProber(cfg MultiProberConfig) *MultiProber {
	cfg = cfg.withDefaults()
	return &MultiProber{
		prober: NewProber(cfg.Prober),
		cfg:    cfg,
		states: map[string]*landmarkState{},
	}
}

// state returns (creating if needed) the record for a landmark URL.
func (mp *MultiProber) state(url string) *landmarkState {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	st, ok := mp.states[url]
	if !ok {
		bcfg := mp.cfg.Breaker
		if bcfg.OnTransition == nil {
			bcfg.OnTransition = countTransition
		}
		st = &landmarkState{
			breaker: resilience.NewBreaker(bcfg),
			latency: resilience.NewEWMA(0.3),
		}
		mp.states[url] = st
	}
	return st
}

// ProbeAll probes every URL concurrently within a bounded worker pool and
// a round deadline. It returns one ProbeResult per input URL (same order)
// and partial=true when at least one landmark did not yield a measurement
// — the caller should then issue a degraded-mode diagnosis from the
// surviving subset.
func (mp *MultiProber) ProbeAll(ctx context.Context, urls []string) ([]ProbeResult, bool) {
	ctx, cancel := context.WithTimeout(ctx, mp.cfg.RoundTimeout)
	defer cancel()
	ctx, span := tracing.StartSpan(ctx, "probe.round")
	span.SetAttr("landmarks", len(urls))
	mRounds.Inc()
	roundStart := time.Now()

	results := make([]ProbeResult, len(urls))
	sem := make(chan struct{}, mp.cfg.MaxConcurrent)
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = mp.probeOne(ctx, i, url)
		}(i, url)
	}
	wg.Wait()

	partial := false
	for i := range results {
		if !results[i].OK() {
			partial = true
			break
		}
	}
	telemetry.ObserveSince(mRoundMs, roundStart)
	if partial {
		mRoundsDegraded.Inc()
	}
	span.SetAttr("partial", partial)
	span.End()
	return results, partial
}

// probeOne runs the breaker + retry pipeline for a single landmark,
// recording it as a "probe.landmark" child span of the round: attempts,
// breaker state and skip/error outcomes all land on the span, so a
// degraded round's trace shows exactly which landmark burned the time.
func (mp *MultiProber) probeOne(ctx context.Context, index int, url string) (res ProbeResult) {
	res = ProbeResult{URL: url, Index: index}
	st := mp.state(url)

	_, span := tracing.StartSpan(ctx, "probe.landmark")
	span.SetAttr("url", url)
	defer func() {
		span.SetAttr("attempts", res.Attempts)
		span.SetAttr("skipped", res.Skipped)
		span.SetError(res.Err)
		span.End()
	}()

	state, allowed := st.breaker.Allow()
	span.SetAttr("breaker", state.String())
	if !allowed {
		res.Skipped = true
		res.Err = fmt.Errorf("landmark %s: %w (state %s)", url, resilience.ErrCircuitOpen, state)
		st.recordSkip()
		mProbeSkips.Inc()
		return res
	}
	if state == resilience.HalfOpen {
		// Probe-through recovery: one cheap ping decides instead of a
		// full multi-MiB probe. Only a responsive landmark graduates to
		// the full measurement below.
		pingCtx, cancel := context.WithTimeout(ctx, mp.cfg.PingTimeout)
		err := mp.prober.ping(pingCtx, url)
		cancel()
		if err != nil {
			st.breaker.Failure()
			res.Skipped = true
			res.Err = fmt.Errorf("landmark %s: half-open ping failed: %w", url, err)
			st.recordFailure(res.Err)
			mProbeFailures.Inc()
			return res
		}
		st.breaker.Success()
	}

	start := time.Now()
	var m Measurement
	err, attempts := mp.cfg.Retry.DoCount(ctx, func(ctx context.Context) error {
		var probeErr error
		m, probeErr = mp.prober.Probe(ctx, url)
		return probeErr
	})
	res.Elapsed = time.Since(start)
	res.Attempts = attempts
	st.recordProbe()
	if err != nil {
		st.breaker.Failure()
		res.Err = fmt.Errorf("landmark %s: %w", url, err)
		st.recordFailure(res.Err)
		mProbeFailures.Inc()
		return res
	}
	st.breaker.Success()
	st.latency.Observe(float64(res.Elapsed.Milliseconds()))
	st.recordSuccess()
	mProbeSuccesses.Inc()
	mLandmarkMs.Observe(telemetry.Millis(res.Elapsed))
	res.Measurement = m
	return res
}

func (s *landmarkState) recordProbe() {
	s.mu.Lock()
	s.probes++
	s.mu.Unlock()
}

func (s *landmarkState) recordSuccess() {
	s.mu.Lock()
	s.successes++
	s.lastSuccess = time.Now()
	s.lastError = ""
	s.mu.Unlock()
}

func (s *landmarkState) recordFailure(err error) {
	s.mu.Lock()
	s.lastError = err.Error()
	s.mu.Unlock()
}

func (s *landmarkState) recordSkip() {
	s.mu.Lock()
	s.skips++
	s.mu.Unlock()
}

// Health snapshots every known landmark's probing record, keyed by URL.
func (mp *MultiProber) Health() map[string]LandmarkHealth {
	mp.mu.Lock()
	states := make(map[string]*landmarkState, len(mp.states))
	for url, st := range mp.states {
		states[url] = st
	}
	mp.mu.Unlock()

	out := make(map[string]LandmarkHealth, len(states))
	for url, st := range states {
		st.mu.Lock()
		h := LandmarkHealth{
			State:               st.breaker.State().String(),
			ConsecutiveFailures: st.breaker.ConsecutiveFailures(),
			EWMALatencyMs:       st.latency.Value(),
			Probes:              st.probes,
			Successes:           st.successes,
			Skips:               st.skips,
			LastError:           st.lastError,
			LastSuccess:         st.lastSuccess,
		}
		st.mu.Unlock()
		out[url] = h
	}
	return out
}
