package landmark

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"diagnet/internal/resilience"
)

// fastProbe keeps chaos rounds cheap: tiny transfers, short timeouts.
func fastProbe() ProberConfig {
	return ProberConfig{Pings: 2, DownloadBytes: 32 << 10, UploadBytes: 16 << 10, Timeout: 3 * time.Second}
}

// noRetrySleep removes real backoff waits from tests.
func noRetrySleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func newLandmarkFleet(t *testing.T, healthy int, flakyCfg FlakyConfig, flaky int) ([]string, []*Server, []*FlakyHandler) {
	t.Helper()
	urls := make([]string, 0, healthy+flaky)
	servers := make([]*Server, 0, healthy+flaky)
	handlers := make([]*FlakyHandler, 0, flaky)
	for i := 0; i < healthy; i++ {
		s := &Server{}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		servers = append(servers, s)
	}
	for i := 0; i < flaky; i++ {
		s := &Server{}
		cfg := flakyCfg
		cfg.Seed = int64(i + 1)
		fh := NewFlakyHandler(s.Handler(), cfg)
		ts := httptest.NewServer(fh)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		servers = append(servers, s)
		handlers = append(handlers, fh)
	}
	return urls, servers, handlers
}

func TestMultiProberAllHealthy(t *testing.T) {
	urls, _, _ := newLandmarkFleet(t, 5, FlakyConfig{}, 0)
	mp := NewMultiProber(MultiProberConfig{Prober: fastProbe(), MaxConcurrent: 3, RoundTimeout: 20 * time.Second})
	results, partial := mp.ProbeAll(context.Background(), urls)
	if partial {
		t.Fatal("healthy fleet reported partial")
	}
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("landmark %d failed: %v", i, r.Err)
		}
		if r.Index != i || r.URL != urls[i] {
			t.Fatalf("result %d misordered: %+v", i, r)
		}
		if r.Measurement.DownMbps <= 0 {
			t.Fatalf("landmark %d empty measurement", i)
		}
	}
	for url, h := range mp.Health() {
		if h.State != "closed" || h.Successes != 1 || h.EWMALatencyMs < 0 {
			t.Fatalf("%s health %+v", url, h)
		}
	}
}

func TestMultiProberPartialUnderChaos(t *testing.T) {
	// 7 healthy + 3 always-erroring landmarks: the round must return the
	// healthy subset and flag partial within the round deadline.
	urls, _, _ := newLandmarkFleet(t, 7, FlakyConfig{ErrorRate: 1}, 3)
	mp := NewMultiProber(MultiProberConfig{
		Prober:        fastProbe(),
		MaxConcurrent: 4,
		RoundTimeout:  20 * time.Second,
		Retry:         resilience.RetryPolicy{MaxAttempts: 2, Sleep: noRetrySleep},
	})
	start := time.Now()
	results, partial := mp.ProbeAll(context.Background(), urls)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("round blew the deadline: %v", elapsed)
	}
	if !partial {
		t.Fatal("chaos round not flagged partial")
	}
	ok := 0
	for i, r := range results {
		if r.OK() {
			ok++
			if i >= 7 {
				t.Fatalf("flaky landmark %d reported healthy", i)
			}
		} else if i < 7 {
			t.Fatalf("healthy landmark %d failed: %v", i, r.Err)
		}
	}
	if ok != 7 {
		t.Fatalf("%d healthy landmarks survived, want 7", ok)
	}
}

func TestMultiProberStallsBoundedByRoundDeadline(t *testing.T) {
	// A stalled landmark must not block the round beyond its deadline.
	urls, _, _ := newLandmarkFleet(t, 2, FlakyConfig{StallRate: 1}, 1)
	mp := NewMultiProber(MultiProberConfig{
		Prober:        ProberConfig{Pings: 2, DownloadBytes: 16 << 10, UploadBytes: 8 << 10, Timeout: time.Second},
		MaxConcurrent: 3,
		RoundTimeout:  5 * time.Second,
		Retry:         resilience.RetryPolicy{MaxAttempts: 1},
	})
	start := time.Now()
	results, partial := mp.ProbeAll(context.Background(), urls)
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("stall leaked past the per-probe timeout: %v", elapsed)
	}
	if !partial {
		t.Fatal("stalled landmark not flagged")
	}
	if !results[0].OK() || !results[1].OK() {
		t.Fatalf("healthy landmarks failed: %v / %v", results[0].Err, results[1].Err)
	}
	if results[2].OK() {
		t.Fatal("stalled landmark reported ok")
	}
}

func TestMultiProberTruncatedBodiesFailThenHeal(t *testing.T) {
	// Truncated responses must surface as probe failures (not bogus
	// measurements), and a healed landmark probes cleanly again.
	s := &Server{}
	fh := NewFlakyHandler(s.Handler(), FlakyConfig{TruncateRate: 1, Seed: 7})
	ts := httptest.NewServer(fh)
	defer ts.Close()
	mp := NewMultiProber(MultiProberConfig{
		Prober:       fastProbe(),
		RoundTimeout: 10 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 2, Sleep: noRetrySleep},
	})
	results, partial := mp.ProbeAll(context.Background(), []string{ts.URL})
	if !partial || results[0].OK() {
		t.Fatalf("always-truncating landmark succeeded? %+v", results[0])
	}
	fh.SetConfig(FlakyConfig{}) // heal
	results, partial = mp.ProbeAll(context.Background(), []string{ts.URL})
	if partial || !results[0].OK() {
		t.Fatalf("healed landmark still failing: %v", results[0].Err)
	}
}

func TestCircuitBreakerSkipsFullProbeAndRecovers(t *testing.T) {
	clk := struct {
		now atomic.Int64
	}{}
	base := time.Unix(1700000000, 0)
	clk.now.Store(0)
	now := func() time.Time { return base.Add(time.Duration(clk.now.Load())) }

	s := &Server{}
	fh := NewFlakyHandler(s.Handler(), FlakyConfig{ErrorRate: 1, Seed: 3})
	ts := httptest.NewServer(fh)
	defer ts.Close()

	mp := NewMultiProber(MultiProberConfig{
		Prober:       fastProbe(),
		RoundTimeout: 10 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 1},
		Breaker:      resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Now: now},
	})
	urls := []string{ts.URL}

	// Two failing rounds open the circuit.
	for i := 0; i < 2; i++ {
		if results, _ := mp.ProbeAll(context.Background(), urls); results[0].OK() {
			t.Fatal("failing landmark probed ok")
		}
	}
	if h := mp.Health()[ts.URL]; h.State != "open" {
		t.Fatalf("breaker state %q, want open", h.State)
	}

	// While open (cooldown pending) the landmark gets NO traffic at all:
	// the expensive download/upload path is skipped.
	downloadsBefore := s.Stats().Downloads
	pingsBefore := s.Stats().Pings
	results, partial := mp.ProbeAll(context.Background(), urls)
	if !partial || !results[0].Skipped {
		t.Fatalf("open circuit did not skip: %+v", results[0])
	}
	if s.Stats().Downloads != downloadsBefore || s.Stats().Pings != pingsBefore {
		t.Fatal("open circuit still sent requests")
	}
	if mp.Health()[ts.URL].Skips == 0 {
		t.Fatal("skip not recorded in health")
	}

	// Cooldown elapses while the landmark is still broken: the half-open
	// trial costs exactly one cheap ping, not a full probe.
	clk.now.Add(int64(61 * time.Second))
	results, _ = mp.ProbeAll(context.Background(), urls)
	if !results[0].Skipped {
		t.Fatalf("failed trial should re-skip: %+v", results[0])
	}
	if got := s.Stats().Downloads; got != downloadsBefore {
		t.Fatalf("half-open trial triggered a full download (%d → %d)", downloadsBefore, got)
	}

	// Landmark recovers; after the next cooldown the ping goes through,
	// the breaker closes, and full probing resumes.
	fh.SetConfig(FlakyConfig{})
	clk.now.Add(int64(61 * time.Second))
	results, partial = mp.ProbeAll(context.Background(), urls)
	if partial || !results[0].OK() {
		t.Fatalf("recovered landmark not probed: %+v", results[0])
	}
	if s.Stats().Downloads != downloadsBefore+1 {
		t.Fatalf("downloads %d, want %d", s.Stats().Downloads, downloadsBefore+1)
	}
	if h := mp.Health()[ts.URL]; h.State != "closed" || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after recovery %+v", h)
	}
}

func TestMultiProberRetryRecoversTransientError(t *testing.T) {
	// Fail the first /ping of every connection-warming sequence once: a
	// handler that errors exactly on the first request overall.
	var calls atomic.Int64
	s := &Server{}
	inner := s.Handler()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	mp := NewMultiProber(MultiProberConfig{
		Prober:       fastProbe(),
		RoundTimeout: 10 * time.Second,
		Retry:        resilience.RetryPolicy{MaxAttempts: 3, Sleep: noRetrySleep},
	})
	results, partial := mp.ProbeAll(context.Background(), []string{ts.URL})
	if partial || !results[0].OK() {
		t.Fatalf("retry did not recover: %+v", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("attempts %d, want 2", results[0].Attempts)
	}
}

func TestMultiProberContextCancellation(t *testing.T) {
	urls, _, _ := newLandmarkFleet(t, 3, FlakyConfig{}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mp := NewMultiProber(MultiProberConfig{Prober: fastProbe()})
	results, partial := mp.ProbeAll(ctx, urls)
	if !partial {
		t.Fatal("canceled round not partial")
	}
	for _, r := range results {
		if r.OK() {
			t.Fatal("probe succeeded under a dead context")
		}
	}
}

func TestFlakyHandlerFaultMix(t *testing.T) {
	s := &Server{}
	fh := NewFlakyHandler(s.Handler(), FlakyConfig{ErrorRate: 0.5, Seed: 11})
	ts := httptest.NewServer(fh)
	defer ts.Close()
	errs := 0
	for i := 0; i < 100; i++ {
		resp, err := http.Get(ts.URL + "/ping")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusInternalServerError {
			errs++
		}
		resp.Body.Close()
	}
	if errs < 30 || errs > 70 {
		t.Fatalf("error rate 0.5 produced %d/100 errors", errs)
	}
	if fh.Served()+fh.Injected() != 100 {
		t.Fatalf("counters %d+%d != 100", fh.Served(), fh.Injected())
	}
	// Latency injection delays but still serves.
	fh.SetConfig(FlakyConfig{LatencyRate: 1, Latency: 50 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(ts.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("latency fault broke the response: %d", resp.StatusCode)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("no latency injected")
	}
}
