// Package landmark implements the paper's measurement plane as real
// network code: the stateless public HTTP landmark service (§III-A) with
// ping, download, upload and stats endpoints, and the client-side prober
// that derives the per-landmark metrics from timed requests (§IV-A-b).
//
// The paper's prototype measured RTT over an upgraded WebSocket to dodge
// per-request HTTP overhead and pulled raw TCP statistics via the
// getsockopt syscall. This implementation measures RTT over a kept-alive
// HTTP connection (one small request ≈ one round trip after warm-up), and
// on Linux the prober reads its own connection's kernel TCP statistics
// (internal/tcpinfo) for the retransmission/loss metric, exactly the
// paper's mechanism. The simulator still drives the experiments, since a
// loopback cannot exhibit WAN pathologies (see DESIGN.md §2).
package landmark

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// Maximum payload a download request may ask for (64 MiB).
const maxDownloadBytes = 64 << 20

// Stats is the landmark's public counter snapshot.
type Stats struct {
	Pings         int64 `json:"pings"`
	Downloads     int64 `json:"downloads"`
	Uploads       int64 `json:"uploads"`
	Rejected      int64 `json:"rejected"`
	BytesServed   int64 `json:"bytes_served"`
	BytesReceived int64 `json:"bytes_received"`
}

// Server is a stateless landmark HTTP service. The zero value is ready;
// use Handler to mount it.
//
// MaxConcurrentTransfers, when positive, caps simultaneous download/upload
// requests; excess requests get 503 (landmarks under "saturated capacity"
// should shed load visibly rather than skew everyone's throughput
// measurements — clients simply probe another landmark, which the
// extensible model tolerates by design).
type Server struct {
	MaxConcurrentTransfers int

	pings         atomic.Int64
	downloads     atomic.Int64
	uploads       atomic.Int64
	rejected      atomic.Int64
	bytesServed   atomic.Int64
	bytesReceived atomic.Int64

	semOnce sync.Once
	sem     chan struct{}
}

// acquire reserves a transfer slot; it reports false when saturated.
func (s *Server) acquire() (release func(), ok bool) {
	if s.MaxConcurrentTransfers <= 0 {
		return func() {}, true
	}
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.MaxConcurrentTransfers) })
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.rejected.Add(1)
		return nil, false
	}
}

// Handler returns the landmark's HTTP handler:
//
//	GET  /ping            → 204, no body (RTT probes)
//	GET  /download?bytes=N → N pseudo-random bytes (download throughput)
//	POST /upload          → drains the body, 204 (upload throughput)
//	GET  /stats           → JSON counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", s.handlePing)
	mux.HandleFunc("/download", s.handleDownload)
	mux.HandleFunc("/upload", s.handleUpload)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	s.pings.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	n := int64(1 << 20)
	if q := r.URL.Query().Get("bytes"); q != "" {
		parsed, err := strconv.ParseInt(q, 10, 64)
		if err != nil || parsed <= 0 {
			http.Error(w, "bytes must be a positive integer", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	if n > maxDownloadBytes {
		http.Error(w, fmt.Sprintf("bytes capped at %d", maxDownloadBytes), http.StatusBadRequest)
		return
	}
	release, ok := s.acquire()
	if !ok {
		http.Error(w, "landmark saturated", http.StatusServiceUnavailable)
		return
	}
	defer release()
	s.downloads.Add(1)
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	// Incompressible pseudo-random payload so middleboxes cannot shrink it.
	rng := rand.New(rand.NewSource(n))
	buf := make([]byte, 32<<10)
	var sent int64
	for sent < n {
		chunk := int64(len(buf))
		if n-sent < chunk {
			chunk = n - sent
		}
		rng.Read(buf[:chunk])
		m, err := w.Write(buf[:chunk])
		sent += int64(m)
		if err != nil {
			break
		}
	}
	s.bytesServed.Add(sent)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.acquire()
	if !ok {
		http.Error(w, "landmark saturated", http.StatusServiceUnavailable)
		return
	}
	defer release()
	n, _ := io.Copy(io.Discard, r.Body)
	s.uploads.Add(1)
	s.bytesReceived.Add(n)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats())
}

// Stats returns a consistent snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Pings:         s.pings.Load(),
		Downloads:     s.downloads.Load(),
		Uploads:       s.uploads.Load(),
		Rejected:      s.rejected.Load(),
		BytesServed:   s.bytesServed.Load(),
		BytesReceived: s.bytesReceived.Load(),
	}
}
