// Package kde implements one-dimensional Gaussian kernel density
// estimation with Silverman bandwidth selection, plus the union ("merge")
// operation the paper's extensible Naive Bayes baseline builds its generic
// likelihoods with (§IV-B-b).
package kde

import (
	"math"
	"sort"

	"diagnet/internal/stats"
)

// invSqrt2Pi = 1/√(2π), the Gaussian kernel normalizer.
const invSqrt2Pi = 0.3989422804014327

// KDE is a fitted one-dimensional kernel density estimate.
type KDE struct {
	points    []float64
	bandwidth float64
}

// New fits a KDE on points. A non-positive bandwidth selects Silverman's
// rule of thumb. New panics on an empty sample.
func New(points []float64, bandwidth float64) *KDE {
	if len(points) == 0 {
		panic("kde: empty sample")
	}
	pts := append([]float64(nil), points...)
	if bandwidth <= 0 {
		bandwidth = Silverman(pts)
	}
	return &KDE{points: pts, bandwidth: bandwidth}
}

// Silverman returns the rule-of-thumb bandwidth
// 0.9·min(σ, IQR/1.34)·n^(−1/5), floored to stay strictly positive for
// degenerate samples.
func Silverman(points []float64) float64 {
	n := float64(len(points))
	sorted := append([]float64(nil), points...)
	sort.Float64s(sorted)
	sigma := stats.StdDev(points)
	iqr := stats.PercentileSorted(sorted, 75) - stats.PercentileSorted(sorted, 25)
	spread := sigma
	if iqr/1.34 < spread && iqr > 0 {
		spread = iqr / 1.34
	}
	h := 0.9 * spread * math.Pow(n, -0.2)
	if h <= 0 {
		// Degenerate (constant) sample: use a narrow kernel scaled to the
		// value's magnitude so the density is still well defined.
		h = math.Max(math.Abs(points[0])*1e-3, 1e-6)
	}
	return h
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Len returns the number of support points.
func (k *KDE) Len() int { return len(k.points) }

// Density returns the estimated probability density at x.
func (k *KDE) Density(x float64) float64 {
	var s float64
	inv := 1 / k.bandwidth
	for _, p := range k.points {
		u := (x - p) * inv
		s += math.Exp(-0.5 * u * u)
	}
	return s * invSqrt2Pi * inv / float64(len(k.points))
}

// LogDensity returns log(Density(x)), floored to avoid −Inf so Naive Bayes
// log-likelihood sums stay finite.
func (k *KDE) LogDensity(x float64) float64 {
	d := k.Density(x)
	if d < 1e-300 {
		return math.Log(1e-300)
	}
	return math.Log(d)
}

// Merge returns the union KDE of all inputs: the concatenation of their
// support points with a freshly selected Silverman bandwidth. This is the
// paper's KDE-merge used to build generic likelihoods for features and
// classes unseen during training.
func Merge(ks ...*KDE) *KDE {
	var pts []float64
	for _, k := range ks {
		if k != nil {
			pts = append(pts, k.points...)
		}
	}
	if len(pts) == 0 {
		panic("kde: Merge of no samples")
	}
	return New(pts, 0)
}

// Subsample deterministically reduces points to at most max elements using
// an even stride over the sorted values, preserving the distribution's
// shape while bounding density-evaluation cost.
func Subsample(points []float64, max int) []float64 {
	if len(points) <= max || max <= 0 {
		return append([]float64(nil), points...)
	}
	sorted := append([]float64(nil), points...)
	sort.Float64s(sorted)
	out := make([]float64, max)
	step := float64(len(sorted)-1) / float64(max-1)
	for i := range out {
		out[i] = sorted[int(math.Round(float64(i)*step))]
	}
	return out
}
