package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]float64, 200)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	k := New(pts, 0)
	// Trapezoidal integration over a wide support.
	var integral float64
	const dx = 0.01
	for x := -8.0; x <= 8.0; x += dx {
		integral += k.Density(x) * dx
	}
	if math.Abs(integral-1) > 0.02 {
		t.Fatalf("KDE integrates to %v", integral)
	}
}

func TestDensityPeaksNearData(t *testing.T) {
	k := New([]float64{0, 0.1, -0.1, 0.05}, 0)
	if k.Density(0) <= k.Density(5) {
		t.Fatal("density should peak near the data")
	}
}

func TestSilvermanPositiveOnConstantSample(t *testing.T) {
	if h := Silverman([]float64{3, 3, 3}); h <= 0 {
		t.Fatalf("Silverman = %v on constant sample", h)
	}
	if h := Silverman([]float64{0, 0}); h <= 0 {
		t.Fatalf("Silverman = %v on zero sample", h)
	}
}

func TestNewEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(nil, 0)
}

func TestLogDensityFinite(t *testing.T) {
	k := New([]float64{0}, 0.001)
	ld := k.LogDensity(1e9)
	if math.IsInf(ld, 0) || math.IsNaN(ld) {
		t.Fatalf("LogDensity = %v", ld)
	}
}

func TestMergeFlattens(t *testing.T) {
	a := New([]float64{-5, -5.1, -4.9}, 0)
	b := New([]float64{5, 5.1, 4.9}, 0)
	m := Merge(a, b)
	if m.Len() != 6 {
		t.Fatalf("merged len %d", m.Len())
	}
	// The merged KDE covers both modes.
	if m.Density(-5) < b.Density(-5) {
		t.Fatal("merged KDE lost the left mode")
	}
	if m.Density(5) < a.Density(5) {
		t.Fatal("merged KDE lost the right mode")
	}
	// Merge skips nils.
	m2 := Merge(nil, a, nil)
	if m2.Len() != 3 {
		t.Fatal("Merge should skip nils")
	}
}

func TestMergeAllNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Merge(nil, nil)
}

func TestSubsamplePreservesRangeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]float64, 1000)
	for i := range pts {
		pts[i] = rng.Float64() * 100
	}
	sub := Subsample(pts, 50)
	if len(sub) != 50 {
		t.Fatalf("len %d", len(sub))
	}
	min, max := pts[0], pts[0]
	for _, p := range pts {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if sub[0] != min || sub[len(sub)-1] != max {
		t.Fatal("subsample must keep extremes")
	}
	// Small inputs pass through.
	small := []float64{3, 1}
	if got := Subsample(small, 10); len(got) != 2 {
		t.Fatal("small sample should pass through")
	}
	// The pass-through must still copy.
	got := Subsample(small, 10)
	got[0] = 99
	if small[0] == 99 {
		t.Fatal("Subsample must not alias its input")
	}
}

// Property: density is non-negative everywhere and symmetric for symmetric
// data.
func TestDensityNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]float64, 1+rng.Intn(30))
		for i := range pts {
			pts[i] = rng.NormFloat64() * 10
		}
		k := New(pts, 0)
		for i := 0; i < 20; i++ {
			if k.Density(rng.NormFloat64()*20) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	pts := []float64{1, 2, 3}
	k := New(pts, 0)
	pts[0] = 100
	if k.Density(100) > k.Density(2) {
		t.Fatal("KDE must copy its input points")
	}
}
