package services

import (
	"testing"

	"diagnet/internal/netsim"
)

func nearestStub(client int) int { return client }

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 12 {
		t.Fatalf("catalog size %d", len(cat))
	}
	seen := map[string]bool{}
	serviceRegions := map[int]bool{netsim.GRAV: true, netsim.SEAT: true, netsim.SING: true}
	kinds := map[Kind]int{}
	for i, s := range cat {
		if s.ID != i {
			t.Fatalf("service %d has ID %d", i, s.ID)
		}
		if !serviceRegions[s.Host] {
			t.Fatalf("service %s hosted outside the paper's service regions", s.Name())
		}
		if seen[s.Name()] {
			t.Fatalf("duplicate service %s", s.Name())
		}
		seen[s.Name()] = true
		kinds[s.Kind]++
	}
	for k := Kind(0); k < NumKinds; k++ {
		if kinds[k] != 2 {
			t.Fatalf("kind %s instantiated %d times, want 2", k, kinds[k])
		}
	}
}

func TestTrainingAndExtraSplit(t *testing.T) {
	if len(TrainingSet()) != 8 {
		t.Fatalf("training set %d, want 8 (paper §IV-F)", len(TrainingSet()))
	}
	if len(TrainingSet())+len(ExtraSet()) != len(Catalog()) {
		t.Fatal("split does not cover catalog")
	}
	if TrainingSet()[0].ID != 0 || ExtraSet()[0].ID != 8 {
		t.Fatal("split IDs wrong")
	}
}

func TestResourcesPerKind(t *testing.T) {
	cases := []struct {
		kind      Kind
		resources int
		depHost   int // -1: no dependency, -2: nearest(client)
	}{
		{Single, 1, -1},
		{ScriptFar, 2, netsim.BEAU},
		{ScriptCDN, 2, -2},
		{ImageLocal, 2, -3}, // same host, reused connection
		{ImageFar, 2, netsim.BEAU},
		{ImageCDN, 2, -2},
	}
	const client = netsim.TOKY
	for _, c := range cases {
		s := Service{ID: 0, Kind: c.kind, Host: netsim.GRAV}
		res := s.Resources(client, nearestStub)
		if len(res) != c.resources {
			t.Fatalf("%s: %d resources, want %d", c.kind, len(res), c.resources)
		}
		if res[0].Host != netsim.GRAV {
			t.Fatalf("%s: HTML not from host", c.kind)
		}
		switch c.depHost {
		case -1:
		case -2:
			if res[1].Host != client {
				t.Fatalf("%s: CDN dependency from %d, want nearest %d", c.kind, res[1].Host, client)
			}
		case -3:
			if res[1].Host != netsim.GRAV || !res[1].ReuseConn {
				t.Fatalf("%s: local image must reuse the host connection", c.kind)
			}
		default:
			if res[1].Host != c.depHost {
				t.Fatalf("%s: dependency from %d, want %d", c.kind, res[1].Host, c.depHost)
			}
		}
	}
}

func TestImageServicesAreHeavy(t *testing.T) {
	light := Service{Kind: Single, Host: netsim.GRAV}.TotalBytes(netsim.TOKY, nearestStub)
	heavy := Service{Kind: ImageFar, Host: netsim.GRAV}.TotalBytes(netsim.TOKY, nearestStub)
	if heavy < 50*light {
		t.Fatalf("image service only %dx heavier than single", heavy/light)
	}
}

// Fig. 10 needs services hosted at GRAV that also depend on BEAU, so that
// simultaneous BEAU+GRAV faults can both be relevant at once.
func TestCatalogHasBothFaultSensitiveServices(t *testing.T) {
	foundFar := false
	for _, s := range Catalog() {
		if s.Host == netsim.GRAV && (s.Kind == ScriptFar || s.Kind == ImageFar) {
			foundFar = true
		}
	}
	if !foundFar {
		t.Fatal("no GRAV-hosted BEAU-dependent service in catalog")
	}
}

func TestKindString(t *testing.T) {
	if Single.String() != "single" || ImageCDN.String() != "image.cdn" {
		t.Fatal("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("out-of-range kind name empty")
	}
	s := Service{Kind: ScriptFar, Host: netsim.SEAT}
	if s.Name() != "script.far@SEAT" {
		t.Fatalf("Name = %s", s.Name())
	}
}
