// Package services models the paper's mock-up online services (Table II):
// six archetypes ranging from a dependency-free static page to pages
// pulling a 5 MB image from a distant region or the nearest CDN point of
// presence. The catalog instantiates the archetypes across the three
// service-hosting regions (GRAV, SEAT, SING), giving the 8 services the
// general DiagNet model trains on (§IV-F) plus extra services reserved for
// specialization experiments.
package services

import (
	"fmt"

	"diagnet/internal/netsim"
)

// Kind enumerates the Table II service archetypes.
type Kind int

const (
	// Single is a static HTML page with no dependency.
	Single Kind = iota
	// ScriptFar requires a JS file hosted in BEAU.
	ScriptFar
	// ScriptCDN requires a JS file from the region nearest to the client.
	ScriptCDN
	// ImageLocal loads a 5 MB image from the same server over the same
	// HTTP connection.
	ImageLocal
	// ImageFar loads a 5 MB image from BEAU.
	ImageFar
	// ImageCDN loads a 5 MB image from the region nearest to the client.
	ImageCDN
	NumKinds
)

var kindNames = [NumKinds]string{
	"single", "script.far", "script.cdn", "image.local", "image.far", "image.cdn",
}

// String returns the archetype's Table II name.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Resource sizes.
const (
	htmlBytes   = 60 << 10  // base page
	scriptBytes = 300 << 10 // JS dependency
	imageBytes  = 5 << 20   // 5 MB image (Table II)
)

// Service is one deployed mock-up service.
type Service struct {
	ID   int
	Kind Kind
	Host int // region hosting the HTML entry point
}

// Name renders e.g. "image.far@GRAV".
func (s Service) Name() string {
	return fmt.Sprintf("%s@%s", s.Kind, netsim.DefaultRegions()[s.Host].Name)
}

// Resource is one HTTP fetch performed when loading a service.
type Resource struct {
	Host      int
	Bytes     int
	ReuseConn bool // fetched over an already-open connection
}

// Resources returns the fetch sequence a client in region `client`
// performs: the HTML entry point first, then the archetype's dependency.
// nearest maps a client region to its closest CDN region.
func (s Service) Resources(client int, nearest func(int) int) []Resource {
	res := []Resource{{Host: s.Host, Bytes: htmlBytes}}
	switch s.Kind {
	case Single:
	case ScriptFar:
		res = append(res, Resource{Host: netsim.BEAU, Bytes: scriptBytes})
	case ScriptCDN:
		res = append(res, Resource{Host: nearest(client), Bytes: scriptBytes})
	case ImageLocal:
		res = append(res, Resource{Host: s.Host, Bytes: imageBytes, ReuseConn: true})
	case ImageFar:
		res = append(res, Resource{Host: netsim.BEAU, Bytes: imageBytes})
	case ImageCDN:
		res = append(res, Resource{Host: nearest(client), Bytes: imageBytes})
	default:
		panic("services: unknown kind")
	}
	return res
}

// TotalBytes returns the payload volume of one page load.
func (s Service) TotalBytes(client int, nearest func(int) int) int {
	var sum int
	for _, r := range s.Resources(client, nearest) {
		sum += r.Bytes
	}
	return sum
}

// Catalog returns the twelve deployed services: the six archetypes spread
// over the three service regions (§IV-A-a), two instantiations each. The
// second group's host rotation is offset so that BEAU-dependent archetypes
// also appear hosted in GRAV (script.far@GRAV, image.far@GRAV), giving the
// simultaneous-fault experiment (Fig. 10) services for which *both* the
// BEAU and the GRAV latency fault are relevant.
func Catalog() []Service {
	hosts := []int{netsim.GRAV, netsim.SEAT, netsim.SING}
	var svcs []Service
	id := 0
	for i := 0; i < 2; i++ {
		for k := Kind(0); k < NumKinds; k++ {
			svcs = append(svcs, Service{ID: id, Kind: k, Host: hosts[(id+2*i)%len(hosts)]})
			id++
		}
	}
	return svcs
}

// TrainingSet returns the eight services the general model trains on
// (§IV-F: "a general model on a subset of eight initial services").
func TrainingSet() []Service { return Catalog()[:8] }

// ExtraSet returns the remaining services, used to evaluate per-service
// specialization on services outside the general training set.
func ExtraSet() []Service { return Catalog()[8:] }
