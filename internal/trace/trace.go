// Package trace records and replays probing sessions: a Trace captures
// the (tick, feature vector, QoE flag) stream a collector agent observed,
// can be persisted with gob, and can be replayed as a collector source —
// letting diagnoses be reproduced offline from field recordings, the
// "post-mortem analysis of past incidents" workflow of §III-A.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"diagnet/internal/collector"
	"diagnet/internal/probe"
)

// Trace is one recorded probing session.
type Trace struct {
	// Landmarks is the layout the features were collected under.
	Landmarks []int
	Ticks     []int64
	Features  [][]float64
	Degraded  []bool
}

// New returns an empty trace for the given layout.
func New(layout probe.Layout) *Trace {
	return &Trace{Landmarks: append([]int(nil), layout.Landmarks...)}
}

// Layout returns the trace's feature layout.
func (t *Trace) Layout() probe.Layout { return probe.NewLayout(t.Landmarks) }

// Len returns the number of recorded steps.
func (t *Trace) Len() int { return len(t.Ticks) }

// Append records one step. The feature vector is copied.
func (t *Trace) Append(tick int64, features []float64, degraded bool) {
	if want := t.Layout().NumFeatures(); len(features) != want {
		panic(fmt.Sprintf("trace: %d features, want %d", len(features), want))
	}
	t.Ticks = append(t.Ticks, tick)
	t.Features = append(t.Features, append([]float64(nil), features...))
	t.Degraded = append(t.Degraded, degraded)
}

// Record samples a source for the given ticks and returns the trace.
func Record(src collector.Source, layout probe.Layout, ticks []int64) *Trace {
	t := New(layout)
	for _, tick := range ticks {
		t.Append(tick, src.Sample(tick), src.Degraded(tick))
	}
	return t
}

// Save writes the trace with gob.
func (t *Trace) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	return &t, nil
}

// Replay exposes the trace as a collector source. Ticks outside the
// recording panic — a replayed agent must follow the recorded schedule.
type Replay struct {
	trace *Trace
	index map[int64]int
}

// Replay returns a replaying source over the trace.
func (t *Trace) Replay() *Replay {
	r := &Replay{trace: t, index: make(map[int64]int, len(t.Ticks))}
	for i, tick := range t.Ticks {
		r.index[tick] = i
	}
	return r
}

// Sample implements collector.Source.
func (r *Replay) Sample(tick int64) []float64 {
	i, ok := r.index[tick]
	if !ok {
		panic(fmt.Sprintf("trace: tick %d not recorded", tick))
	}
	return r.trace.Features[i]
}

// Degraded implements collector.Source.
func (r *Replay) Degraded(tick int64) bool {
	i, ok := r.index[tick]
	if !ok {
		panic(fmt.Sprintf("trace: tick %d not recorded", tick))
	}
	return r.trace.Degraded[i]
}

var _ collector.Source = (*Replay)(nil)
