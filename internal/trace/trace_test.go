package trace

import (
	"bytes"
	"testing"

	"diagnet/internal/collector"
	"diagnet/internal/netsim"
	"diagnet/internal/probe"
	"diagnet/internal/services"
)

func simSource() (collector.Source, probe.Layout) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	layout := probe.FullLayout()
	svc := services.Service{ID: 0, Kind: services.ImageLocal, Host: netsim.GRAV}
	src := collector.NewSimSource(w, netsim.AMST, svc, layout, func(tick int64) []netsim.Fault {
		if tick >= 5 {
			return []netsim.Fault{netsim.NewFault(netsim.FaultLoss, netsim.GRAV)}
		}
		return nil
	}, 7)
	return src, layout
}

func ticksUpTo(n int64) []int64 {
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = int64(i)
	}
	return ts
}

func TestRecordAndReplayIdentical(t *testing.T) {
	src, layout := simSource()
	tr := Record(src, layout, ticksUpTo(10))
	if tr.Len() != 10 {
		t.Fatalf("len %d", tr.Len())
	}
	rp := tr.Replay()
	for tick := int64(0); tick < 10; tick++ {
		a := src.Sample(tick) // SimSource is deterministic per tick
		b := rp.Sample(tick)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tick %d feature %d differs", tick, j)
			}
		}
		if src.Degraded(tick) != rp.Degraded(tick) {
			t.Fatalf("tick %d degraded flag differs", tick)
		}
	}
	// The loss fault must appear in the recording.
	if !rp.Degraded(6) {
		t.Fatal("fault tick not degraded in recording")
	}
	if rp.Degraded(0) {
		t.Fatal("clean tick degraded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src, layout := simSource()
	tr := Record(src, layout, ticksUpTo(6))
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Layout().NumFeatures() != tr.Layout().NumFeatures() {
		t.Fatal("round trip lost shape")
	}
	for i := range tr.Features {
		for j := range tr.Features[i] {
			if got.Features[i][j] != tr.Features[i][j] {
				t.Fatal("features differ after round trip")
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("zzz")); err == nil {
		t.Fatal("want error")
	}
}

func TestReplayUnknownTickPanics(t *testing.T) {
	src, layout := simSource()
	tr := Record(src, layout, ticksUpTo(3))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tr.Replay().Sample(99)
}

func TestAppendCopiesAndValidates(t *testing.T) {
	layout := probe.NewLayout([]int{0})
	tr := New(layout)
	x := make([]float64, layout.NumFeatures())
	tr.Append(0, x, false)
	x[0] = 42
	if tr.Features[0][0] == 42 {
		t.Fatal("Append must copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong width")
		}
	}()
	tr.Append(1, []float64{1}, false)
}

// A replayed trace drives a collector agent exactly like the live source.
func TestAgentOverReplay(t *testing.T) {
	src, layout := simSource()
	tr := Record(src, layout, ticksUpTo(20))
	agent := collector.NewAgent(tr.Replay(), layout.NumFeatures(), collector.Config{Warmup: 3})
	events := 0
	for tick := int64(0); tick < 20; tick++ {
		if _, degraded := agent.Step(tick); degraded {
			events++
		}
	}
	if events == 0 {
		t.Fatal("replayed agent saw no degradations")
	}
}
