package leakcheck

import "os"

// CountFDs returns the number of file descriptors the process holds, or
// -1 where the proc filesystem is unavailable (non-Linux). The soak
// harness trends this alongside the goroutine count: a Close path that
// drops a journal file or leaks sockets into TIME_WAIT shows up as fd
// growth long before the process hits its rlimit.
func CountFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir itself holds one descriptor; exclude it.
	return len(ents) - 1
}
