package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestFindCleanProcess(t *testing.T) {
	if err := Find(); err != nil {
		t.Fatalf("clean process reported a leak: %v", err)
	}
}

func TestFindDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }() // deliberate leak for the duration of the check
	err := Find(WithRetryDeadline(50 * time.Millisecond))
	if err == nil {
		close(stop)
		t.Fatal("Find missed a parked goroutine")
	}
	if !strings.Contains(err.Error(), "TestFindDetectsLeak") {
		t.Errorf("leak report does not name the leaking site:\n%v", err)
	}
	close(stop)
	if err := Find(); err != nil {
		t.Fatalf("leak persisted after release: %v", err)
	}
}

func TestFindRetriesUntilExit(t *testing.T) {
	// A goroutine that exits on its own inside the retry window must not
	// be reported: Find races teardown and is expected to absorb it.
	go time.Sleep(30 * time.Millisecond)
	if err := Find(); err != nil {
		t.Fatalf("short-lived goroutine reported as leak: %v", err)
	}
}

func TestIgnoreCurrent(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }()
	time.Sleep(5 * time.Millisecond) // let it park
	opt := IgnoreCurrent()
	if err := Find(opt, WithRetryDeadline(50*time.Millisecond)); err != nil {
		t.Fatalf("IgnoreCurrent did not absorb the pre-existing goroutine: %v", err)
	}
}

func TestIgnoreAnyFunction(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go parkedHelper(stop)
	err := Find(
		IgnoreAnyFunction("diagnet/internal/leakcheck.parkedHelper"),
		WithRetryDeadline(50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("IgnoreAnyFunction did not filter the helper: %v", err)
	}
}

func parkedHelper(stop chan struct{}) { <-stop }

func TestAllowlist(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go allowedHelper(stop)
	Allow("leakcheck.allowedHelper")
	defer func() {
		allowMu.Lock()
		allowList = nil
		allowMu.Unlock()
	}()
	if err := Find(WithRetryDeadline(50 * time.Millisecond)); err != nil {
		t.Fatalf("allowlisted goroutine still reported: %v", err)
	}
}

func allowedHelper(stop chan struct{}) { <-stop }

func TestParse(t *testing.T) {
	dump := `goroutine 1 [running]:
main.main()
	/src/main.go:10 +0x64

goroutine 18 [chan receive, 5 minutes]:
diagnet/internal/cluster.(*Pool).run(0xc000100000)
	/src/pool.go:85 +0x9c
created by diagnet/internal/cluster.NewPool in goroutine 1
	/src/pool.go:48 +0x1f4
`
	gs := parse(dump)
	if len(gs) != 2 {
		t.Fatalf("parsed %d goroutines, want 2", len(gs))
	}
	g := gs[1]
	if g.ID != 18 {
		t.Errorf("ID = %d, want 18", g.ID)
	}
	if g.State != "chan receive" {
		t.Errorf("State = %q, want %q", g.State, "chan receive")
	}
	if g.FirstFunc != "diagnet/internal/cluster.(*Pool).run" {
		t.Errorf("FirstFunc = %q", g.FirstFunc)
	}
	if g.CreatedBy != "diagnet/internal/cluster.NewPool" {
		t.Errorf("CreatedBy = %q", g.CreatedBy)
	}
	if gs[0].State != "running" || gs[0].FirstFunc != "main.main" {
		t.Errorf("first goroutine parsed as %+v", gs[0])
	}
}

func TestCountFDs(t *testing.T) {
	n := CountFDs()
	if n == -1 {
		t.Skip("proc filesystem unavailable")
	}
	if n <= 0 {
		t.Fatalf("CountFDs = %d, want > 0 (stdin/stdout/stderr at minimum)", n)
	}
}

func TestMain(m *testing.M) {
	VerifyTestMain(m)
}
