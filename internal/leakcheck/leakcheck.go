// Package leakcheck is a zero-dependency goroutine-leak detector for the
// repo's e2e and integration suites (DESIGN.md §17). Every runtime plane
// (serving, cluster, continual, obs, durable, collector) owns background
// goroutines; a Close/Stop path that forgets one turns a long-lived
// monitoring process into the resource leak it is supposed to diagnose —
// the dominant operational failure mode reported by production RCA
// deployments.
//
// The model is snapshot-and-filter: runtime.Stack(·, true) captures every
// goroutine, known runtime/testing frames are filtered out, and anything
// left is a suspected leak. Because goroutine exits are asynchronous
// (a Close may return before a worker's final deferred statements run),
// Find retries with exponential backoff before declaring a leak.
//
// Entry points:
//
//	leakcheck.VerifyNone(t)          // end of one test
//	leakcheck.VerifyTestMain(m)      // whole package, in TestMain
//	leakcheck.Find(opts...)          // plumbing; soak harness uses it
//
// Intentionally process-lived goroutines (a package-level cache janitor,
// a metrics flusher) are declared once with Allow, or per-call with the
// Ignore* options.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Goroutine is one parsed stack from a snapshot.
type Goroutine struct {
	// ID is the runtime's goroutine id.
	ID int
	// State is the wait reason from the header line ("chan receive",
	// "IO wait", "running", ...), without any ", N minutes" suffix.
	State string
	// FirstFunc is the topmost function on the stack.
	FirstFunc string
	// CreatedBy is the "created by" function, when present.
	CreatedBy string
	// Stack is the goroutine's full stack text, including the header.
	Stack string
}

// String renders a one-line summary.
func (g Goroutine) String() string {
	return fmt.Sprintf("goroutine %d [%s] %s (created by %s)", g.ID, g.State, g.FirstFunc, g.CreatedBy)
}

// opts collects the effective options of one Find call.
type opts struct {
	ignoreIDs   map[int]bool
	ignoreTop   []string
	ignoreAny   []string
	maxRetries  int
	maxWait     time.Duration
	cleanupHTTP bool
}

// Option customizes one verification.
type Option func(*opts)

// IgnoreCurrent snapshots the goroutines alive right now and excludes
// them from the later verification — the option for mid-process checks
// where pre-existing background goroutines are someone else's business.
func IgnoreCurrent() Option {
	ids := map[int]bool{}
	for _, g := range interesting(stacks(), defaultOpts()) {
		ids[g.ID] = true
	}
	return func(o *opts) {
		for id := range ids {
			o.ignoreIDs[id] = true
		}
	}
}

// IgnoreTopFunction excludes goroutines whose topmost frame is the given
// fully-qualified function (e.g. "internal/poll.runtime_pollWait").
func IgnoreTopFunction(f string) Option {
	return func(o *opts) { o.ignoreTop = append(o.ignoreTop, f) }
}

// IgnoreAnyFunction excludes goroutines with the given fully-qualified
// function anywhere on the stack (including the created-by frame).
func IgnoreAnyFunction(f string) Option {
	return func(o *opts) { o.ignoreAny = append(o.ignoreAny, f) }
}

// WithRetryDeadline bounds the total retry window (default 2s). Leak
// checks race goroutine teardown, so the window must comfortably exceed
// the slowest legitimate exit path in the suite.
func WithRetryDeadline(d time.Duration) Option {
	return func(o *opts) { o.maxWait = d }
}

// NoHTTPCleanup disables the default closing of http.DefaultTransport's
// idle connections before the first snapshot. The cleanup exists because
// tests that exercised a server through the default transport otherwise
// leave persistConn read loops parked for the 90s idle timeout — a true
// keep-alive, not a leak.
func NoHTTPCleanup() Option {
	return func(o *opts) { o.cleanupHTTP = false }
}

// allowlist holds process-lived goroutine declarations (Allow).
var (
	allowMu   sync.Mutex
	allowList []string
)

// Allow declares a function substring whose goroutines are intentionally
// process-lived and never reported (e.g. a package-level janitor started
// in init). Applies to every later verification in the process.
func Allow(funcSubstring string) {
	allowMu.Lock()
	allowList = append(allowList, funcSubstring)
	allowMu.Unlock()
}

func defaultOpts() *opts {
	return &opts{
		ignoreIDs:   map[int]bool{},
		maxRetries:  20,
		maxWait:     2 * time.Second,
		cleanupHTTP: true,
	}
}

func buildOpts(options ...Option) *opts {
	o := defaultOpts()
	for _, opt := range options {
		opt(o)
	}
	return o
}

// stacks captures every goroutine's stack text, growing the buffer until
// the dump fits.
func stacks() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return parse(string(buf))
}

// parse splits a full runtime.Stack dump into goroutines.
func parse(dump string) []Goroutine {
	var out []Goroutine
	for _, block := range strings.Split(dump, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		g, ok := parseOne(block)
		if ok {
			out = append(out, g)
		}
	}
	return out
}

// parseOne parses one "goroutine N [state]:" block.
func parseOne(block string) (Goroutine, bool) {
	lines := strings.Split(block, "\n")
	header := lines[0]
	if !strings.HasPrefix(header, "goroutine ") {
		return Goroutine{}, false
	}
	rest := strings.TrimPrefix(header, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Goroutine{}, false
	}
	id, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return Goroutine{}, false
	}
	state := rest[sp+1:]
	state = strings.TrimPrefix(state, "[")
	state = strings.TrimSuffix(strings.TrimSuffix(state, ":"), "]")
	// Drop wait-duration suffixes: "chan receive, 3 minutes".
	if i := strings.IndexByte(state, ','); i >= 0 {
		state = state[:i]
	}
	g := Goroutine{ID: id, State: state, Stack: block}
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "\t") {
			continue // file:line frame detail
		}
		fn := funcName(line)
		if fn == "" {
			continue
		}
		if strings.HasPrefix(line, "created by ") {
			g.CreatedBy = fn
			continue
		}
		if g.FirstFunc == "" {
			g.FirstFunc = fn
		}
	}
	return g, true
}

// funcName strips the argument list and "created by" prefix from a stack
// frame's function line.
func funcName(line string) string {
	line = strings.TrimPrefix(line, "created by ")
	if i := strings.Index(line, " in goroutine "); i >= 0 {
		line = line[:i]
	}
	if i := strings.LastIndexByte(line, '('); i >= 0 && strings.HasSuffix(line, ")") {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// runtimeOwned reports stacks the Go runtime, the testing harness, or the
// OS-signal plumbing own — never leaks, whatever the suite does.
func runtimeOwned(g Goroutine) bool {
	for _, prefix := range []string{
		"testing.",
		"runtime.",
		"os/signal.",
		"runtime/pprof.",
		"runtime/trace.",
	} {
		if strings.HasPrefix(g.FirstFunc, prefix) {
			return true
		}
	}
	// The goroutine running the check itself.
	if g.State == "running" {
		return true
	}
	return false
}

// interesting filters a snapshot down to suspected leaks.
func interesting(gs []Goroutine, o *opts) []Goroutine {
	allowMu.Lock()
	allowed := append([]string(nil), allowList...)
	allowMu.Unlock()

	var out []Goroutine
next:
	for _, g := range gs {
		if runtimeOwned(g) || o.ignoreIDs[g.ID] {
			continue
		}
		for _, f := range o.ignoreTop {
			if g.FirstFunc == f {
				continue next
			}
		}
		for _, f := range o.ignoreAny {
			if g.FirstFunc == f || g.CreatedBy == f || strings.Contains(g.Stack, f+"(") {
				continue next
			}
		}
		for _, sub := range allowed {
			if strings.Contains(g.Stack, sub) {
				continue next
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Interesting returns the goroutines a verification would report right
// now, without retrying — the soak harness samples this for its growth
// envelope.
func Interesting(options ...Option) []Goroutine {
	return interesting(stacks(), buildOpts(options...))
}

// Find reports an error when goroutines outside the filter set survive
// the retry window. Exits are asynchronous, so the check backs off
// (1ms, 2ms, 4ms, ... capped at 100ms) until the set drains or the
// deadline passes.
func Find(options ...Option) error {
	o := buildOpts(options...)
	if o.cleanupHTTP {
		// Idle keep-alive connections through the shared default transport
		// park a readLoop for the transport's 90s idle timeout; they are
		// connection-pool state, not leaks.
		http.DefaultClient.CloseIdleConnections()
	}
	var leaked []Goroutine
	deadline := time.Now().Add(o.maxWait)
	backoff := time.Millisecond
	for i := 0; ; i++ {
		leaked = interesting(stacks(), o)
		if len(leaked) == 0 {
			return nil
		}
		if i >= o.maxRetries || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "found %d unexpected goroutine(s):", len(leaked))
	for _, g := range leaked {
		fmt.Fprintf(&b, "\n\n%s\n%s", g.String(), g.Stack)
	}
	return fmt.Errorf("leakcheck: %s", b.String())
}

// TestingT is the subset of *testing.T VerifyNone needs.
type TestingT interface {
	Error(args ...any)
	Helper()
}

// VerifyNone fails the test when goroutines leak past the filter set.
// Call it at the end of a test (or defer it) after every component the
// test started has been closed.
func VerifyNone(t TestingT, options ...Option) {
	t.Helper()
	if err := Find(options...); err != nil {
		t.Error(err)
	}
}

// testMain is the subset of *testing.M VerifyTestMain needs.
type testMain interface {
	Run() int
}

// VerifyTestMain wraps a package's TestMain: it runs the suite and, when
// the suite passed, fails the package if goroutines survived it.
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// Never returns: it exits with the suite's code, or 1 on a leak.
func VerifyTestMain(m testMain, options ...Option) {
	code := m.Run()
	if code == 0 {
		if err := Find(options...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
