// Package resilience implements the fault-tolerance primitives of the
// live measurement plane: a generic retry policy with capped exponential
// backoff and deterministic-seedable jitter, an error classifier that
// separates transient faults (timeouts, connection resets, 5xx) from
// terminal ones (4xx, canceled contexts), and a per-target circuit breaker
// (closed → open → half-open) so that dead landmarks cost one cheap probe
// per cooldown instead of a full measurement round.
//
// DiagNet's model tolerates missing landmarks by design (LandPooling +
// the ZeroMask policy, §IV-B-a); this package makes the Internet-facing
// path exploit that: partial telemetry is the normal case, not an error.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// HTTPStatusError is a typed non-2xx response, so the classifier can tell
// retryable server errors (5xx, 429, 408) from terminal client errors.
type HTTPStatusError struct {
	Code int
	Msg  string // bounded excerpt of the response body, may be empty
	// RetryAfter is the server's advertised backoff (a parsed Retry-After
	// header), zero when the server gave none. RetryPolicy honors it in
	// place of the computed backoff, capped at MaxDelay — a loaded server
	// knows its own drain rate better than the client's guess.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *HTTPStatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("status %d", e.Code)
	}
	return fmt.Sprintf("status %d: %s", e.Code, e.Msg)
}

// Retryable reports whether the status indicates a transient condition.
func (e *HTTPStatusError) Retryable() bool {
	return e.Code >= 500 || e.Code == 429 || e.Code == 408
}

// DefaultClassify reports whether err looks transient: timeouts, refused
// or reset connections, unexpected EOFs and retryable HTTP statuses are;
// canceled contexts, other 4xx statuses and unknown errors are not.
func DefaultClassify(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true // a per-attempt timeout; the caller's context gates the loop
	}
	var statusErr *HTTPStatusError
	if errors.As(err, &statusErr) {
		return statusErr.Retryable()
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true // truncated response body mid-transfer
	}
	var opErr *net.OpError
	return errors.As(err, &opErr) // remaining socket-level failures
}

// RetryPolicy retries an operation with capped exponential backoff.
// The zero value is usable and picks the defaults documented per field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first one included
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly in ±Jitter·delay (default 0.2,
	// clamped to [0,1]).
	Jitter float64
	// Seed makes the jitter sequence deterministic when non-zero.
	Seed int64
	// Classify decides retryability (default DefaultClassify).
	Classify func(error) bool
	// Sleep waits between attempts; tests substitute a fake clock. The
	// default honours ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a terminal error, exhausts
// MaxAttempts, or ctx ends. The returned error is the last attempt's,
// wrapped with the attempt count when retries happened.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	err, _ := p.DoCount(ctx, op)
	return err
}

// DoCount is Do, additionally reporting how many attempts ran.
func (p RetryPolicy) DoCount(ctx context.Context, op func(ctx context.Context) error) (error, int) {
	p = p.withDefaults()
	var rng *rand.Rand
	if p.Jitter > 0 {
		seed := p.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		rng = rand.New(rand.NewSource(seed))
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			if err == nil {
				err = ctxErr
			}
			return err, attempt - 1
		}
		err = op(ctx)
		if err == nil {
			return nil, attempt
		}
		if attempt >= p.MaxAttempts || !p.Classify(err) {
			if attempt > 1 {
				err = fmt.Errorf("after %d attempts: %w", attempt, err)
			}
			return err, attempt
		}
		d := delay
		if rng != nil {
			d = time.Duration(float64(d) * (1 + p.Jitter*(2*rng.Float64()-1)))
		}
		// A server-advertised Retry-After overrides the computed backoff:
		// the server is telling us when its queue will have drained, so
		// neither jitter nor the exponential schedule applies — only the
		// MaxDelay cap (a confused server must not park us for an hour).
		var statusErr *HTTPStatusError
		if errors.As(err, &statusErr) && statusErr.RetryAfter > 0 {
			d = statusErr.RetryAfter
			if d > p.MaxDelay {
				d = p.MaxDelay
			}
		}
		if sleepErr := p.Sleep(ctx, d); sleepErr != nil {
			return fmt.Errorf("after %d attempts: %w (retry aborted: %w)", attempt, err, sleepErr), attempt
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
