package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleTrialConcurrent drives many goroutines at a
// breaker whose cooldown just elapsed: exactly one of them may win the
// half-open trial slot, everybody else must be refused until the trial
// reports its outcome.
func TestBreakerHalfOpenSingleTrialConcurrent(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		Now:              func() time.Time { return now },
	})
	b.Failure() // open
	if st, ok := b.Allow(); ok || st != Open {
		t.Fatalf("Allow during cooldown = (%v, %v)", st, ok)
	}
	now = now.Add(2 * time.Second) // cooldown elapsed

	const callers = 32
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if st, ok := b.Allow(); ok {
				if st != HalfOpen {
					t.Errorf("admitted under state %v, want half-open", st)
				}
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d callers admitted into half-open, want exactly 1", got)
	}
	// The slot stays taken until the trial reports; then a success closes
	// the circuit for everyone.
	if _, ok := b.Allow(); ok {
		t.Fatal("second trial admitted while the first is in flight")
	}
	b.Success()
	if st, ok := b.Allow(); !ok || st != Closed {
		t.Fatalf("after trial success Allow = (%v, %v), want (closed, true)", st, ok)
	}
}

// TestBreakerHalfOpenTrialFailureReopens checks the losing path: a failed
// trial restarts a full cooldown.
func TestBreakerHalfOpenTrialFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		Now:              func() time.Time { return now },
	})
	b.Failure()
	now = now.Add(time.Second)
	if st, ok := b.Allow(); !ok || st != HalfOpen {
		t.Fatalf("Allow after cooldown = (%v, %v)", st, ok)
	}
	b.Failure() // trial failed
	if _, ok := b.Allow(); ok {
		t.Fatal("admitted right after a failed trial")
	}
	now = now.Add(time.Second) // a fresh full cooldown must elapse again
	if st, ok := b.Allow(); !ok || st != HalfOpen {
		t.Fatalf("Allow after second cooldown = (%v, %v)", st, ok)
	}
}

// TestBreakerOnTransition records the hook sequence across a full
// closed → open → half-open → closed cycle.
func TestBreakerOnTransition(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	var got []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		Cooldown:         time.Second,
		Now:              func() time.Time { return now },
		OnTransition: func(from, to BreakerState) {
			mu.Lock()
			got = append(got, fmt.Sprintf("%s->%s", from, to))
			mu.Unlock()
		},
	})
	b.Success() // closed -> closed: no event
	b.Failure() // below threshold: no event
	b.Failure() // opens
	now = now.Add(time.Second)
	if _, ok := b.Allow(); !ok { // half-open
		t.Fatal("trial refused after cooldown")
	}
	b.Success() // closes

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestEWMAEdgeCases covers the first-sample rule and the bad-alpha
// fallback, table-driven over observation sequences.
func TestEWMAEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		alpha   float64
		observe []float64
		want    float64
	}{
		{name: "no samples", alpha: 0.5, observe: nil, want: 0},
		{name: "first sample is exact", alpha: 0.5, observe: []float64{42}, want: 42},
		{name: "second sample blends", alpha: 0.5, observe: []float64{42, 0}, want: 21},
		{name: "alpha one tracks last", alpha: 1, observe: []float64{10, 20, 30}, want: 30},
		{name: "zero alpha falls back to 0.3", alpha: 0, observe: []float64{10, 20}, want: 0.3*20 + 0.7*10},
		{name: "negative alpha falls back to 0.3", alpha: -2, observe: []float64{10, 20}, want: 0.3*20 + 0.7*10},
		{name: "alpha above one falls back to 0.3", alpha: 1.5, observe: []float64{10, 20}, want: 0.3*20 + 0.7*10},
		{name: "first sample zero still counts as seen", alpha: 0.5, observe: []float64{0, 10}, want: 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEWMA(tc.alpha)
			for _, v := range tc.observe {
				e.Observe(v)
			}
			if got := e.Value(); got != tc.want {
				t.Fatalf("Value() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDefaultClassifyWrapped checks that classification sees through
// fmt.Errorf %w chains — the form errors actually arrive in from the
// probing plane (e.g. "landmark X: after 2 attempts: status 503").
func TestDefaultClassifyWrapped(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"wrapped cancel", fmt.Errorf("round: %w", context.Canceled), false},
		{"wrapped deadline", fmt.Errorf("probe: %w", context.DeadlineExceeded), true},
		{"deep wrapped 503", fmt.Errorf("a: %w", fmt.Errorf("b: %w", &HTTPStatusError{Code: 503})), true},
		{"deep wrapped 404", fmt.Errorf("a: %w", fmt.Errorf("b: %w", &HTTPStatusError{Code: 404})), false},
		{"wrapped 429", fmt.Errorf("x: %w", &HTTPStatusError{Code: 429}), true},
		{"wrapped 408", fmt.Errorf("x: %w", &HTTPStatusError{Code: 408}), true},
		{"wrapped 400", fmt.Errorf("x: %w", &HTTPStatusError{Code: 400}), false},
		{"wrapped conn refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), true},
		{"wrapped conn reset", fmt.Errorf("read: %w", syscall.ECONNRESET), true},
		{"wrapped unexpected EOF", fmt.Errorf("body: %w", io.ErrUnexpectedEOF), true},
		{"wrapped net timeout", fmt.Errorf("probe: %w", error(timeoutErr{})), true},
		{"wrapped op error", fmt.Errorf("probe: %w", &net.OpError{Op: "read", Err: errors.New("boom")}), true},
		{"plain error", errors.New("boom"), false},
		{"wrapped plain error", fmt.Errorf("ctx: %w", errors.New("boom")), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := DefaultClassify(tc.err); got != tc.want {
				t.Fatalf("DefaultClassify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// TestRetryStopsOnWrappedTerminal ensures a wrapped terminal error stops
// the retry loop on the first attempt.
func TestRetryStopsOnWrappedTerminal(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	calls := 0
	err, attempts := p.DoCount(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("handler: %w", &HTTPStatusError{Code: 403})
	})
	if err == nil || attempts != 1 || calls != 1 {
		t.Fatalf("err=%v attempts=%d calls=%d, want terminal stop after 1", err, attempts, calls)
	}
	var statusErr *HTTPStatusError
	if !errors.As(err, &statusErr) || statusErr.Code != 403 {
		t.Fatalf("terminal cause lost: %v", err)
	}
}

// TestRetryRetriesWrappedTransient is the counterpart: a wrapped 503 must
// burn all attempts and surface the attempt count.
func TestRetryRetriesWrappedTransient(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	calls := 0
	err, attempts := p.DoCount(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("landmark: %w", &HTTPStatusError{Code: 503})
	})
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3", attempts, calls)
	}
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %v does not mention the attempt count", err)
	}
}
