package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// Closed: traffic flows normally.
	Closed BreakerState = iota
	// Open: traffic is refused until the cooldown elapses.
	Open
	// HalfOpen: one trial request is probing whether the target recovered.
	HalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrCircuitOpen is returned (or wrapped) when a breaker refuses traffic.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the circuit
	// (default 3).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before letting one
	// half-open trial through (default 30s).
	Cooldown time.Duration
	// Now substitutes a fake clock in tests (default time.Now).
	Now func() time.Time
	// OnTransition, when non-nil, is invoked after every state change
	// (telemetry hooks). It is called outside the breaker's lock and must
	// be safe for concurrent use.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-target circuit breaker: consecutive failures beyond the
// threshold open it; after a cooldown a single half-open trial decides
// whether it closes again (probe-through recovery). Safe for concurrent
// use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	trialActive bool // a half-open trial is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// transition switches the state under the lock and returns the hook call
// to make after unlocking (nil when the state did not change).
func (b *Breaker) transition(to BreakerState) func() {
	from := b.state
	b.state = to
	if from == to || b.cfg.OnTransition == nil {
		return nil
	}
	hook := b.cfg.OnTransition
	return func() { hook(from, to) }
}

// Allow reports whether a request may proceed and under which state.
// When it returns (HalfOpen, true) the caller holds the single trial slot
// and MUST report the outcome via Success or Failure (other callers are
// refused meanwhile).
func (b *Breaker) Allow() (BreakerState, bool) {
	b.mu.Lock()
	var notify func()
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
	}()
	switch b.state {
	case Closed:
		return Closed, true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			notify = b.transition(HalfOpen)
			b.trialActive = true
			return HalfOpen, true
		}
		return Open, false
	case HalfOpen:
		if b.trialActive {
			return HalfOpen, false // someone else holds the trial slot
		}
		b.trialActive = true
		return HalfOpen, true
	}
	return b.state, false
}

// Success records a successful request, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	notify := b.transition(Closed)
	b.consecFails = 0
	b.trialActive = false
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Failure records a failed request; it may open the circuit.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var notify func()
	b.consecFails++
	switch b.state {
	case HalfOpen:
		// The trial failed: back to a full cooldown.
		notify = b.transition(Open)
		b.openedAt = b.cfg.Now()
		b.trialActive = false
	case Closed:
		if b.consecFails >= b.cfg.FailureThreshold {
			notify = b.transition(Open)
			b.openedAt = b.cfg.Now()
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// State returns the current position without consuming a trial slot.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen // would admit a trial
	}
	return b.state
}

// ConsecutiveFailures returns the current failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecFails
}
