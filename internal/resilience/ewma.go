package resilience

import "sync"

// EWMA is an exponentially weighted moving average, used for per-landmark
// latency health. Safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an average with the given smoothing factor in (0,1];
// out-of-range values fall back to 0.3.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a sample in.
func (e *EWMA) Observe(v float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seen {
		e.value, e.seen = v, true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}
