package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// fakeSleep records requested delays without waiting.
type fakeSleep struct {
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.delays = append(f.delays, d)
	return nil
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	fs := &fakeSleep{}
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Seed: 1, Sleep: fs.sleep}
	calls := 0
	err, attempts := p.DoCount(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return &HTTPStatusError{Code: 503}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || attempts != 3 {
		t.Fatalf("calls=%d attempts=%d, want 3", calls, attempts)
	}
	if len(fs.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.delays))
	}
}

func TestRetryTerminalErrorStopsImmediately(t *testing.T) {
	fs := &fakeSleep{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: fs.sleep, Seed: 1}
	calls := 0
	terminal := &HTTPStatusError{Code: 400, Msg: "bad request"}
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return terminal
	})
	if calls != 1 {
		t.Fatalf("terminal error retried: %d calls", calls)
	}
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v", err)
	}
	if len(fs.delays) != 0 {
		t.Fatal("slept on a terminal error")
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	fs := &fakeSleep{}
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // disable jitter: delays must be exact
		Sleep:       fs.sleep,
	}
	err := p.Do(context.Background(), func(ctx context.Context) error {
		return &HTTPStatusError{Code: 500}
	})
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	want := []time.Duration{100, 200, 400, 400, 400}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(fs.delays) != len(want) {
		t.Fatalf("delays %v", fs.delays)
	}
	for i, d := range fs.delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (all: %v)", i, d, want[i], fs.delays)
		}
	}
}

func TestRetryJitterDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		fs := &fakeSleep{}
		p := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Seed: 42, Sleep: fs.sleep}
		p.Do(context.Background(), func(ctx context.Context) error {
			return &HTTPStatusError{Code: 500}
		})
		return fs.delays
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("delays %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", a, b)
		}
		base := 100 * time.Millisecond << i
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("delay[%d] = %v outside [%v, %v]", i, a[i], lo, hi)
		}
	}
}

func TestRetryRespectsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond}
	err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		if calls == 2 {
			cancel() // the default Sleep must abort
		}
		return &HTTPStatusError{Code: 500}
	})
	if calls != 2 {
		t.Fatalf("ran %d attempts after cancel", calls)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRetryContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := RetryPolicy{}.Do(ctx, func(ctx context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatal("op ran with a dead context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("wrap: %w", context.Canceled), false},
		{&HTTPStatusError{Code: 500}, true},
		{&HTTPStatusError{Code: 503}, true},
		{&HTTPStatusError{Code: 429}, true},
		{&HTTPStatusError{Code: 408}, true},
		{&HTTPStatusError{Code: 400}, false},
		{&HTTPStatusError{Code: 404}, false},
		{timeoutErr{}, true},
		{syscall.ECONNRESET, true},
		{syscall.ECONNREFUSED, true},
		{fmt.Errorf("read: %w", syscall.ECONNRESET), true},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{&net.OpError{Op: "dial", Err: errors.New("down")}, true},
		{errors.New("some app error"), false},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestHTTPStatusErrorMessage(t *testing.T) {
	e := &HTTPStatusError{Code: 503, Msg: "landmark saturated"}
	if e.Error() != "status 503: landmark saturated" {
		t.Fatalf("msg %q", e.Error())
	}
	if (&HTTPStatusError{Code: 500}).Error() != "status 500" {
		t.Fatal("bare message wrong")
	}
}
