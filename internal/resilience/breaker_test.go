package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	return NewBreaker(BreakerConfig{FailureThreshold: threshold, Cooldown: cooldown, Now: clk.Now}), clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Failure()
		if st, ok := b.Allow(); !ok || st != Closed {
			t.Fatalf("closed breaker refused traffic after %d failures", i+1)
		}
	}
	b.Failure() // third consecutive failure
	if st, ok := b.Allow(); ok || st != Open {
		t.Fatalf("breaker not open after threshold: state=%v ok=%v", st, ok)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if st, ok := b.Allow(); !ok || st != Closed {
		t.Fatalf("streak not reset by success: state=%v", st)
	}
	if b.ConsecutiveFailures() != 2 {
		t.Fatalf("streak %d", b.ConsecutiveFailures())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute)
	b.Failure()
	b.Failure()
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted traffic")
	}
	// Cooldown not elapsed: still refused.
	clk.Advance(30 * time.Second)
	if _, ok := b.Allow(); ok {
		t.Fatal("cooldown not over but trial admitted")
	}
	clk.Advance(31 * time.Second)
	st, ok := b.Allow()
	if !ok || st != HalfOpen {
		t.Fatalf("want half-open trial, got state=%v ok=%v", st, ok)
	}
	// While the trial is in flight, nobody else gets through.
	if _, ok := b.Allow(); ok {
		t.Fatal("second caller admitted during half-open trial")
	}
	b.Success()
	if st, ok := b.Allow(); !ok || st != Closed {
		t.Fatalf("breaker not closed after successful trial: %v", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	clk.Advance(61 * time.Second)
	if st, ok := b.Allow(); !ok || st != HalfOpen {
		t.Fatalf("want half-open, got %v/%v", st, ok)
	}
	b.Failure() // trial failed → full cooldown again
	if _, ok := b.Allow(); ok {
		t.Fatal("breaker admitted traffic right after failed trial")
	}
	clk.Advance(59 * time.Second)
	if _, ok := b.Allow(); ok {
		t.Fatal("cooldown restarted incompletely")
	}
	clk.Advance(2 * time.Second)
	if st, ok := b.Allow(); !ok || st != HalfOpen {
		t.Fatalf("want second trial, got %v/%v", st, ok)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("not closed after recovery")
	}
}

func TestBreakerStateReporting(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	if b.State() != Closed {
		t.Fatal("fresh breaker not closed")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("not open")
	}
	clk.Advance(2 * time.Minute)
	// State peeks without consuming the trial slot.
	if b.State() != HalfOpen {
		t.Fatal("cooldown elapsed but State not half-open")
	}
	if st, ok := b.Allow(); !ok || st != HalfOpen {
		t.Fatalf("State() consumed the trial slot: %v/%v", st, ok)
	}
}

func TestBreakerConcurrentTrialExclusion(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.Advance(2 * time.Second)
	var admitted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := b.Allow(); ok {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("%d goroutines admitted to the half-open trial, want 1", admitted)
	}
}

func TestBreakerStateString(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state names wrong")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first observation not adopted: %v", e.Value())
	}
	e.Observe(50)
	if v := e.Value(); v != 75 {
		t.Fatalf("EWMA %v, want 75", v)
	}
	// Invalid alpha falls back rather than panicking.
	if NewEWMA(7) == nil {
		t.Fatal("nil EWMA")
	}
}
