package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"diagnet/internal/mat"
)

// The paper's root-cause extensibility claim (§III-C) rests on two
// structural invariants of LandPool, pinned here as randomized properties
// across kernels, layouts and op sets:
//
//  1. Landmark permutation invariance — every Ω is commutative across the
//     landmark axis, so reordering a sample's landmark blocks must not
//     change the layer output.
//  2. Subset consistency — the output on a landmark subset equals pooling
//     the per-landmark filter activations of exactly that subset (the
//     convolution is per-landmark independent), and the order-statistic
//     ops obey the induced bounds: min grows, max shrinks, avg and every
//     percentile stay inside the full set's [min, max] envelope.
//
// Together these are what lets landmarks appear or disappear between
// training and inference without architectural change.

const propTol = 1e-9

// randomOps draws a nonempty op set that always includes the four ops the
// subset-bound checks name, plus a few random percentiles.
func randomOps(rng *rand.Rand) []PoolOp {
	ops := []PoolOp{MinPool{}, MaxPool{}, AvgPool{}, VarPool{}}
	for n := rng.Intn(4); n > 0; n-- {
		ops = append(ops, PercentilePool{P: float64(rng.Intn(99) + 1)})
	}
	return ops
}

// randomLayer draws a LandPool with Glorot-initialized kernel plus a
// random non-zero bias (a zero bias would mask bias-handling bugs).
func randomLayer(rng *rand.Rand, k, f, local int, ops []PoolOp) *LandPool {
	lp := NewLandPool(k, f, local, ops, rng)
	for i := range lp.Bias.Value.Data {
		lp.Bias.Value.Data[i] = rng.NormFloat64()
	}
	return lp
}

// randomInput draws an n×(ell·k+local) input matrix.
func randomInput(rng *rand.Rand, n, ell, k, local int) *mat.Matrix {
	x := mat.New(n, ell*k+local)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 3
	}
	return x
}

// activations computes the per-landmark filter activations of one row the
// straightforward way (kernel·x_λ + bias), independently of the layer's
// fused loop: act[λ][fi].
func activations(lp *LandPool, row []float64, ell int) [][]float64 {
	act := make([][]float64, ell)
	for l := 0; l < ell; l++ {
		xl := row[l*lp.K : (l+1)*lp.K]
		act[l] = make([]float64, lp.F)
		for fi := 0; fi < lp.F; fi++ {
			act[l][fi] = mat.Dot(lp.Kernel.Value.Row(fi), xl) + lp.Bias.Value.Data[fi]
		}
	}
	return act
}

// TestLandPoolPermutationInvariance: shuffling the landmark blocks of every
// row (each row with its own permutation) leaves the output unchanged.
func TestLandPoolPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(4) + 1
		f := rng.Intn(5) + 1
		local := rng.Intn(4)
		ell := rng.Intn(7) + 2
		n := rng.Intn(3) + 1
		lp := randomLayer(rng, k, f, local, randomOps(rng))
		x := randomInput(rng, n, ell, k, local)

		perm := mat.New(x.Rows, x.Cols)
		for s := 0; s < n; s++ {
			row, prow := x.Row(s), perm.Row(s)
			p := rng.Perm(ell)
			for l, src := range p {
				copy(prow[l*k:(l+1)*k], row[src*k:(src+1)*k])
			}
			copy(prow[ell*k:], row[ell*k:]) // locals keep their position
		}

		base := lp.Forward(x)
		permuted := lp.Forward(perm)
		for i := range base.Data {
			if d := math.Abs(base.Data[i] - permuted.Data[i]); d > propTol {
				t.Fatalf("trial %d (k=%d f=%d local=%d ell=%d): output[%d] moved %g under landmark permutation",
					trial, k, f, local, ell, i, d)
			}
		}
	}
}

// TestLandPoolSubsetConsistency: the layer's output on a subset of
// landmarks equals pooling the subset's independently computed
// activations, and the order-statistic outputs respect the full set's
// envelope.
func TestLandPoolSubsetConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(4) + 1
		f := rng.Intn(5) + 1
		local := rng.Intn(4)
		ell := rng.Intn(6) + 3
		ops := randomOps(rng)
		lp := randomLayer(rng, k, f, local, ops)
		x := randomInput(rng, 1, ell, k, local)
		row := x.Row(0)

		// Random proper subset, at least one landmark, order preserved.
		subset := rng.Perm(ell)[:rng.Intn(ell-1)+1]
		insertionArgsortInts(subset)
		sub := mat.New(1, len(subset)*k+local)
		srow := sub.Row(0)
		for i, l := range subset {
			copy(srow[i*k:(i+1)*k], row[l*k:(l+1)*k])
		}
		copy(srow[len(subset)*k:], row[ell*k:])

		full := lp.Forward(x)
		frow := append([]float64(nil), full.Row(0)...) // Forward reuses caches; keep a copy
		subOut := lp.Forward(sub)
		orow := subOut.Row(0)

		if got, want := len(orow), len(ops)*f+local; got != want {
			t.Fatalf("trial %d: subset output width %d, want %d (width must not depend on ell)", trial, got, want)
		}

		// Reference: pool the subset's activations directly.
		act := activations(lp, row, ell)
		vals := make([]float64, len(subset))
		for fi := 0; fi < f; fi++ {
			for i, l := range subset {
				vals[i] = act[l][fi]
			}
			for o, op := range ops {
				want := op.Forward(vals)
				got := orow[o*f+fi]
				if math.Abs(got-want) > propTol {
					t.Fatalf("trial %d: op %s filter %d: layer says %g, direct pooling of subset activations says %g",
						trial, op.Name(), fi, got, want)
				}
			}
		}

		// Envelope bounds against the full landmark set.
		for o, op := range ops {
			for fi := 0; fi < f; fi++ {
				fullMin := frow[opIndex(ops, "min")*f+fi]
				fullMax := frow[opIndex(ops, "max")*f+fi]
				v := orow[o*f+fi]
				switch op.Name() {
				case "min":
					if v < fullMin-propTol {
						t.Fatalf("trial %d: subset min %g below full min %g", trial, v, fullMin)
					}
				case "max":
					if v > fullMax+propTol {
						t.Fatalf("trial %d: subset max %g above full max %g", trial, v, fullMax)
					}
				case "avg":
					if v < fullMin-propTol || v > fullMax+propTol {
						t.Fatalf("trial %d: subset avg %g outside full envelope [%g, %g]", trial, v, fullMin, fullMax)
					}
				default:
					if _, isPct := op.(PercentilePool); isPct {
						if v < fullMin-propTol || v > fullMax+propTol {
							t.Fatalf("trial %d: subset %s %g outside full envelope [%g, %g]",
								trial, op.Name(), v, fullMin, fullMax)
						}
					}
				}
			}
		}

		// Locals pass through untouched regardless of the subset.
		for i := 0; i < local; i++ {
			if got, want := orow[len(ops)*f+i], row[ell*k+i]; got != want {
				t.Fatalf("trial %d: local %d = %g, want passthrough %g", trial, i, got, want)
			}
		}
	}
}

// TestLandPoolPercentileLadderMonotone: on any fixed input, percentiles
// must be monotone in P — an ordering property the interpolation could
// silently break.
func TestLandPoolPercentileLadderMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 40; trial++ {
		ell := rng.Intn(8) + 1
		vals := make([]float64, ell)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 5.0; p <= 95; p += 5 {
			v := PercentilePool{P: p}.Forward(vals)
			if v < prev-propTol {
				t.Fatalf("trial %d: p%.0f = %g < p%.0f = %g (not monotone)", trial, p, v, p-5, prev)
			}
			prev = v
		}
		lo := MinPool{}.Forward(vals)
		hi := MaxPool{}.Forward(vals)
		if p0 := (PercentilePool{P: 0}).Forward(vals); math.Abs(p0-lo) > propTol {
			t.Fatalf("trial %d: p0 %g != min %g", trial, p0, lo)
		}
		if p100 := (PercentilePool{P: 100}).Forward(vals); math.Abs(p100-hi) > propTol {
			t.Fatalf("trial %d: p100 %g != max %g", trial, p100, hi)
		}
	}
}

// opIndex finds the position of a named op in the set (the test always
// includes min/max/avg).
func opIndex(ops []PoolOp, name string) int {
	for i, op := range ops {
		if op.Name() == name {
			return i
		}
	}
	panic(fmt.Sprintf("op %s not in set", name))
}

// insertionArgsortInts sorts a small int slice ascending in place.
func insertionArgsortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
