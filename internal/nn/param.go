// Package nn is a compact feed-forward neural network engine written for
// DiagNet: dense layers, ReLU, the paper's LandPooling layer, a softmax
// cross-entropy loss, and SGD with Nesterov momentum and learning-rate
// decay (Table I of the paper).
//
// The engine is a white-box replacement for the TensorFlow 1.13 stack the
// authors used. It exposes full backpropagation — including gradients with
// respect to the *inputs* — which DiagNet's attention mechanism (§III-E)
// requires, and supports freezing parameters, which the per-service
// specialization procedure (§IV-F) requires.
//
// All computations are float64 and deterministic for a given seed.
package nn

import (
	"math"
	"math/rand"

	"diagnet/internal/mat"
)

// Param is one trainable tensor: its value, the gradient accumulated by the
// latest backward pass, and a freeze flag honoured by optimizers.
type Param struct {
	Name   string
	Value  *mat.Matrix
	Grad   *mat.Matrix
	Frozen bool
}

func newParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: mat.New(rows, cols),
		Grad:  mat.New(rows, cols),
	}
}

// glorotInit fills p.Value with Glorot/Xavier-uniform samples for a layer
// with the given fan-in and fan-out.
func glorotInit(p *Param, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.Value.Data {
		p.Value.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// zeroGrads clears the gradients of every param in ps.
func zeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}
