package nn

import (
	"math"
	"math/rand"
	"testing"

	"diagnet/internal/mat"
)

// lossOf runs a fresh forward pass and returns the cross-entropy loss.
func lossOf(net *Network, x *mat.Matrix, labels []int) float64 {
	var ce SoftmaxCrossEntropy
	loss, _ := ce.Loss(net.Forward(x), labels)
	return loss
}

// checkParamGradients compares analytic parameter gradients against central
// finite differences.
func checkParamGradients(t *testing.T, net *Network, x *mat.Matrix, labels []int, tol float64) {
	t.Helper()
	var ce SoftmaxCrossEntropy
	net.ZeroGrads()
	logits := net.Forward(x)
	_, dlogits := ce.Loss(logits, labels)
	net.Backward(dlogits)

	const h = 1e-5
	for pi, p := range net.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := lossOf(net, x, labels)
			p.Value.Data[i] = orig - h
			down := lossOf(net, x, labels)
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d (%s) element %d: analytic %v vs numeric %v", pi, p.Name, i, analytic, numeric)
			}
		}
	}
}

// checkInputGradients compares analytic input gradients against central
// finite differences.
func checkInputGradients(t *testing.T, net *Network, x *mat.Matrix, labels []int, tol float64) {
	t.Helper()
	var ce SoftmaxCrossEntropy
	net.ZeroGrads()
	logits := net.Forward(x)
	_, dlogits := ce.Loss(logits, labels)
	dx := net.Backward(dlogits)

	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := lossOf(net, x, labels)
		x.Data[i] = orig - h
		down := lossOf(net, x, labels)
		x.Data[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-dx.Data[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("input element %d: analytic %v vs numeric %v", i, dx.Data[i], numeric)
		}
	}
}

func randBatch(rng *rand.Rand, n, cols, classes int) (*mat.Matrix, []int) {
	x := mat.New(n, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense(4, 3, rng))
	x, labels := randBatch(rng, 5, 4, 3)
	checkParamGradients(t, net, x, labels, 1e-5)
	checkInputGradients(t, net, x, labels, 1e-5)
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(
		NewDense(6, 8, rng), NewReLU(),
		NewDense(8, 5, rng), NewReLU(),
		NewDense(5, 3, rng),
	)
	x, labels := randBatch(rng, 4, 6, 3)
	checkParamGradients(t, net, x, labels, 1e-4)
	checkInputGradients(t, net, x, labels, 1e-4)
}

// Each pooling op is exercised in isolation so a broken backward cannot
// hide behind the others.
func TestLandPoolGradientsPerOp(t *testing.T) {
	ops := append([]PoolOp{MinPool{}, MaxPool{}, AvgPool{}, VarPool{}},
		PercentilePool{P: 10}, PercentilePool{P: 50}, PercentilePool{P: 90})
	for _, op := range ops {
		op := op
		t.Run(op.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			lp := NewLandPool(3, 4, 2, []PoolOp{op}, rng)
			net := NewNetwork(lp, NewDense(lp.OutWidth(), 3, rng))
			// 4 landmarks of 3 features + 2 local features = 14 columns.
			x, labels := randBatch(rng, 3, 4*3+2, 3)
			checkParamGradients(t, net, x, labels, 1e-4)
			checkInputGradients(t, net, x, labels, 1e-4)
		})
	}
}

func TestLandPoolGradientsFullStack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lp := NewLandPool(5, 6, 5, DefaultPoolOps(), rng)
	net := NewNetwork(
		lp,
		NewDense(lp.OutWidth(), 16, rng), NewReLU(),
		NewDense(16, 7, rng),
	)
	// 7 landmarks × 5 features + 5 local = 40 columns.
	x, labels := randBatch(rng, 2, 7*5+5, 7)
	checkParamGradients(t, net, x, labels, 2e-4)
	checkInputGradients(t, net, x, labels, 2e-4)
}

func TestLandPoolVariableLandmarkCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lp := NewLandPool(2, 3, 1, DefaultPoolOps(), rng)
	net := NewNetwork(lp, NewDense(lp.OutWidth(), 2, rng))
	// Same network consumes 3-landmark and 8-landmark inputs.
	for _, ell := range []int{1, 3, 8} {
		x, labels := randBatch(rng, 2, ell*2+1, 2)
		out := net.Forward(x)
		if out.Cols != 2 || out.Rows != 2 {
			t.Fatalf("ell=%d: output %dx%d", ell, out.Rows, out.Cols)
		}
		checkInputGradients(t, net, x, labels, 1e-4)
	}
}

func TestLandPoolRejectsBadWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lp := NewLandPool(5, 4, 3, DefaultPoolOps(), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for incompatible width")
		}
	}()
	lp.Forward(mat.New(1, 12)) // 12-3=9 not divisible by 5
}
