package nn

import (
	"math"
	"math/rand"
	"testing"

	"diagnet/internal/mat"
)

func TestAdamMatchesManualFirstSteps(t *testing.T) {
	p := newParam("w", 1, 1)
	o := NewAdam()
	var m, v float64
	w := 0.0
	for step := 1; step <= 5; step++ {
		g := float64(step) * 0.5
		p.Grad.Data[0] = g
		o.Step([]*Param{p})
		m = 0.9*m + 0.1*g
		v = 0.999*v + 0.001*g*g
		mHat := m / (1 - math.Pow(0.9, float64(step)))
		vHat := v / (1 - math.Pow(0.999, float64(step)))
		w -= 0.001 * mHat / (math.Sqrt(vHat) + 1e-8)
		if math.Abs(p.Value.Data[0]-w) > 1e-12 {
			t.Fatalf("step %d: got %v want %v", step, p.Value.Data[0], w)
		}
	}
}

func TestAdamSkipsFrozen(t *testing.T) {
	p := newParam("w", 1, 1)
	p.Frozen = true
	p.Grad.Data[0] = 10
	o := NewAdam()
	o.Step([]*Param{p})
	if p.Value.Data[0] != 0 {
		t.Fatal("frozen param moved")
	}
}

func TestAdamReset(t *testing.T) {
	p := newParam("w", 1, 1)
	p.Grad.Data[0] = 1
	o := NewAdam()
	o.Step([]*Param{p})
	o.Reset()
	if o.step != 0 || o.m != nil || o.v != nil {
		t.Fatal("Reset incomplete")
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := newParam("w", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 30, 40
	o := NewAdam()
	o.ClipNorm = 5
	o.Step([]*Param{p})
	// After clipping the gradient is (3, 4); first Adam step ≈ -lr·sign.
	if p.Grad.Data[0] != 3 || p.Grad.Data[1] != 4 {
		t.Fatalf("gradient not clipped: %v", p.Grad.Data)
	}
}

// Adam trains the XOR task as well as SGD does.
func TestAdamLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := mat.New(400, 2)
	labels := make([]int, 400)
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x.Set(i, 0, float64(a)+rng.NormFloat64()*0.05)
		x.Set(i, 1, float64(b)+rng.NormFloat64()*0.05)
		labels[i] = a ^ b
	}
	net := NewNetwork(NewDense(2, 16, rng), NewReLU(), NewDense(16, 2, rng))
	tr := NewTrainer(net)
	tr.Opt = &Adam{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
	tr.Fit(x, labels, nil, nil, TrainConfig{Epochs: 60, BatchSize: 32, Seed: 1})
	if acc := tr.Accuracy(x, labels); acc < 0.98 {
		t.Fatalf("Adam XOR accuracy %.3f", acc)
	}
}
