package nn

import (
	"math/rand"
	"testing"

	"diagnet/internal/mat"
)

// tableINet builds the paper's exact architecture (Table I).
func tableINet(rng *rand.Rand) (*Network, *LandPool) {
	lp := NewLandPool(5, 24, 5, DefaultPoolOps(), rng)
	net := NewNetwork(
		lp,
		NewDense(lp.OutWidth(), 512, rng), NewReLU(),
		NewDense(512, 128, rng), NewReLU(),
		NewDense(128, 7, rng),
	)
	return net, lp
}

func benchBatch(rng *rand.Rand, n, ell int) (*mat.Matrix, []int) {
	x := mat.New(n, ell*5+5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(7)
	}
	return x, labels
}

func BenchmarkLandPoolForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lp := NewLandPool(5, 24, 5, DefaultPoolOps(), rng)
	x, _ := benchBatch(rng, 64, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Forward(x)
	}
}

func BenchmarkLandPoolBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	lp := NewLandPool(5, 24, 5, DefaultPoolOps(), rng)
	x, _ := benchBatch(rng, 64, 10)
	out := lp.Forward(x)
	dout := out.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.Backward(dout)
	}
}

func BenchmarkTableIForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net, _ := tableINet(rng)
	x, _ := benchBatch(rng, 64, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkTableITrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net, _ := tableINet(rng)
	x, labels := benchBatch(rng, 64, 7)
	tr := NewTrainer(net)
	var ce SoftmaxCrossEntropy
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		logits := net.Forward(x)
		_, dlogits := ce.Loss(logits, labels)
		net.Backward(dlogits)
		tr.Opt.Step(net.Params())
	}
}

func BenchmarkInputGradient(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net, _ := tableINet(rng)
	x := make([]float64, 10*5+5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.InputGradient(x, -1)
	}
}
