package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"diagnet/internal/mat"
)

// LayerSpec is a serializable description of a layer's architecture.
type LayerSpec struct {
	Kind    string
	Ints    map[string]int
	Strings []string
}

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork wraps layers into a network.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the batch x through every layer.
func (n *Network) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dout from the output back to the input, accumulating
// parameter gradients, and returns the gradient with respect to the input
// batch.
func (n *Network) Backward(dout *mat.Matrix) *mat.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns all parameters of all layers in order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters, and the number
// that are currently trainable (not frozen).
func (n *Network) ParamCount() (total, trainable int) {
	for _, p := range n.Params() {
		c := len(p.Value.Data)
		total += c
		if !p.Frozen {
			trainable += c
		}
	}
	return total, trainable
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() { zeroGrads(n.Params()) }

// InputGradient returns the gradient of the ideal-label cross-entropy loss
// L* = −log softmax(f(x))[target] with respect to the input features of a
// single sample, plus the softmax probabilities of the forward pass. This
// is DiagNet's attention primitive (§III-E): it requires white-box access
// to the network, which this engine provides by construction. Parameter
// gradients accumulated by the pass are discarded.
func (n *Network) InputGradient(x []float64, target int) (grad []float64, probs []float64) {
	in := mat.FromSlice(1, len(x), append([]float64(nil), x...))
	logits := n.Forward(in)
	if target < 0 {
		// Caller wants the arg-max class as the ideal label.
		target = Argmax(logits.Row(0))
	}
	p := Softmax(logits)
	dlogits := CrossEntropyGrad(logits, target)
	n.ZeroGrads()
	dx := n.Backward(dlogits)
	n.ZeroGrads()
	return dx.Row(0), p.Row(0)
}

// InputGradientBatch is the batched InputGradient: one forward and one
// backward pass over the whole b×n batch instead of b separate passes.
// Because no layer mixes information across rows, row i of the returned
// gradient equals what InputGradient(x.Row(i), targets[i]) would produce —
// but the weight matrices are streamed from memory once per batch rather
// than once per sample, which is what makes the serving engine's
// micro-batching pay. targets may be nil (per-row arg-max ideal labels) or
// hold one class per row, -1 selecting that row's arg-max. The input batch
// is mutated-safe: callers may reuse x's backing storage afterwards.
func (n *Network) InputGradientBatch(x *mat.Matrix, targets []int) (grads, probs *mat.Matrix) {
	logits := n.Forward(x)
	tg := targets
	if tg == nil {
		tg = make([]int, logits.Rows)
		for i := range tg {
			tg[i] = -1
		}
	}
	for i := range tg {
		if tg[i] < 0 {
			tg[i] = Argmax(logits.Row(i))
		}
	}
	probs = Softmax(logits)
	dlogits := IdealLossGrad(logits, tg)
	n.ZeroGrads()
	dx := n.Backward(dlogits)
	n.ZeroGrads()
	return dx, probs
}

// Predict returns the softmax class probabilities for a batch.
func (n *Network) Predict(x *mat.Matrix) *mat.Matrix {
	return Softmax(n.Forward(x))
}

// Argmax returns the index of the largest value in xs.
func Argmax(xs []float64) int {
	arg := 0
	for i, v := range xs {
		if v > xs[arg] {
			arg = i
		}
	}
	return arg
}

// snapshot is the gob wire format of a network.
type snapshot struct {
	Specs  []LayerSpec
	Values [][]float64
	Frozen []bool
}

// Save writes the network's architecture and parameters to w with gob.
func (n *Network) Save(w io.Writer) error {
	var s snapshot
	for _, l := range n.Layers {
		s.Specs = append(s.Specs, l.Spec())
	}
	for _, p := range n.Params() {
		s.Values = append(s.Values, p.Value.Data)
		s.Frozen = append(s.Frozen, p.Frozen)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	rng := rand.New(rand.NewSource(0)) // weights are overwritten below
	var layers []Layer
	for _, spec := range s.Specs {
		l, err := buildLayer(spec, rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}
	net := NewNetwork(layers...)
	ps := net.Params()
	if len(ps) != len(s.Values) {
		return nil, fmt.Errorf("nn: load: %d params in file, %d in architecture", len(s.Values), len(ps))
	}
	for i, p := range ps {
		if len(s.Values[i]) != len(p.Value.Data) {
			return nil, fmt.Errorf("nn: load: param %d has %d values, want %d", i, len(s.Values[i]), len(p.Value.Data))
		}
		copy(p.Value.Data, s.Values[i])
		p.Frozen = s.Frozen[i]
	}
	return net, nil
}

func buildLayer(spec LayerSpec, rng *rand.Rand) (Layer, error) {
	switch spec.Kind {
	case "dense":
		return NewDense(spec.Ints["in"], spec.Ints["out"], rng), nil
	case "relu":
		return NewReLU(), nil
	case "landpool":
		ops := PoolOpsByName(spec.Strings)
		return NewLandPool(spec.Ints["k"], spec.Ints["f"], spec.Ints["local"], ops, rng), nil
	case "dropout":
		var rate float64
		if len(spec.Strings) == 1 {
			if _, err := fmt.Sscanf(spec.Strings[0], "%g", &rate); err != nil {
				return nil, fmt.Errorf("nn: bad dropout rate %q", spec.Strings[0])
			}
		}
		return NewDropout(rate, rng), nil
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", spec.Kind)
	}
}

// Clone returns a deep copy of the network (weights, freeze flags).
func (n *Network) Clone() *Network {
	rng := rand.New(rand.NewSource(0))
	var layers []Layer
	for _, l := range n.Layers {
		nl, err := buildLayer(l.Spec(), rng)
		if err != nil {
			panic(err)
		}
		layers = append(layers, nl)
	}
	c := NewNetwork(layers...)
	src, dst := n.Params(), c.Params()
	for i := range src {
		copy(dst[i].Value.Data, src[i].Value.Data)
		dst[i].Frozen = src[i].Frozen
	}
	return c
}
