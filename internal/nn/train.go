package nn

import (
	"fmt"
	"math"
	"math/rand"

	"diagnet/internal/mat"
	"diagnet/internal/telemetry"
)

// Training metrics (DESIGN.md §10): epoch pacing and the latest losses, so
// a long-running retraining job can be watched from the metrics endpoint.
var (
	mEpochs  = telemetry.Default().Counter("nn.train.epochs")
	mBatches = telemetry.Default().Counter("nn.train.batches")
	mEpochMs = telemetry.Default().Histogram("nn.train.epoch_ms", nil)
	mLoss    = telemetry.Default().Gauge("nn.train.loss")
	mValLoss = telemetry.Default().Gauge("nn.train.val_loss")
)

// TrainConfig controls Trainer.Fit.
type TrainConfig struct {
	Epochs    int // maximum epochs
	BatchSize int
	// Patience stops training once the validation loss has not improved
	// for this many consecutive epochs (the paper's "validation loss no
	// longer decreasing" criterion, §IV-F). Zero disables early stopping.
	Patience int
	Seed     int64
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(string)
	// OnEpoch, when non-nil, runs after every epoch (after validation)
	// with the 0-based epoch index and the running history. Returning
	// false stops training — best-validation weights are still restored.
	// Background retraining hooks in here: the callback may block to
	// pause training under serving overload, and may checkpoint the
	// network's current weights for crash resume.
	OnEpoch func(epoch int, h *History) bool
}

// History records per-epoch losses for learning-curve plots (Fig. 9).
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	// BestEpoch is the 0-based epoch with the lowest validation loss
	// (or the last epoch when no validation set was given).
	BestEpoch int
}

// Epochs returns how many epochs actually ran.
func (h *History) Epochs() int { return len(h.TrainLoss) }

// Trainer fits a Network on labeled batches with an optimizer (SGD with
// Nesterov momentum by default, per Table I).
type Trainer struct {
	Net  *Network
	Opt  Optimizer
	Loss SoftmaxCrossEntropy
	// ClassWeights enables class-balanced cross-entropy when non-nil.
	ClassWeights []float64
}

// NewTrainer pairs a network with the paper's default optimizer.
func NewTrainer(net *Network) *Trainer {
	return &Trainer{Net: net, Opt: NewSGD()}
}

// Group is one homogeneous training matrix. Groups may have different
// feature widths (e.g. LandPool inputs with different landmark counts),
// which is how DiagNet trains with landmark-dropout augmentation: the same
// network consumes full-layout batches and random-subset batches.
type Group struct {
	X      *mat.Matrix
	Labels []int
}

// Fit trains on (x, labels), optionally early-stopping on (valX, valLabels),
// and returns the loss history. Rows of x are samples; labels are class
// indices. The best-validation weights are restored before returning when a
// validation set is provided.
func (t *Trainer) Fit(x *mat.Matrix, labels []int, valX *mat.Matrix, valLabels []int, cfg TrainConfig) *History {
	return t.FitGroups([]Group{{X: x, Labels: labels}}, valX, valLabels, cfg)
}

// FitGroups trains on several groups at once. Within an epoch every group
// is shuffled and cut into minibatches; the resulting batch list is
// shuffled across groups so the optimizer interleaves them.
func (t *Trainer) FitGroups(groups []Group, valX *mat.Matrix, valLabels []int, cfg TrainConfig) *History {
	for gi, g := range groups {
		if g.X.Rows != len(g.Labels) {
			panic(fmt.Sprintf("nn: Fit: group %d: %d rows vs %d labels", gi, g.X.Rows, len(g.Labels)))
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hist := &History{}
	orders := make([][]int, len(groups))
	for gi, g := range groups {
		orders[gi] = make([]int, g.X.Rows)
		for i := range orders[gi] {
			orders[gi][i] = i
		}
	}
	bestVal := math.Inf(1)
	var bestWeights [][]float64
	sinceBest := 0

	type batchRef struct{ group, lo, hi int }
	t.Net.SetTraining(true)
	defer t.Net.SetTraining(false)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochClock := telemetry.StartStages()
		var refs []batchRef
		for gi, order := range orders {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for lo := 0; lo < len(order); lo += cfg.BatchSize {
				hi := lo + cfg.BatchSize
				if hi > len(order) {
					hi = len(order)
				}
				refs = append(refs, batchRef{gi, lo, hi})
			}
		}
		rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })

		var epochLoss float64
		var batches int
		for _, ref := range refs {
			g := groups[ref.group]
			order := orders[ref.group]
			n := ref.hi - ref.lo
			bx := mat.New(n, g.X.Cols)
			by := make([]int, n)
			for i := 0; i < n; i++ {
				copy(bx.Row(i), g.X.Row(order[ref.lo+i]))
				by[i] = g.Labels[order[ref.lo+i]]
			}
			t.Net.ZeroGrads()
			logits := t.Net.Forward(bx)
			loss, dlogits := t.Loss.WeightedLoss(logits, by, t.ClassWeights)
			t.Net.Backward(dlogits)
			t.Opt.Step(t.Net.Params())
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		mEpochs.Inc()
		mBatches.Add(int64(batches))
		mLoss.Set(epochLoss)
		epochClock.Done(mEpochMs)

		valLoss := math.NaN()
		if valX != nil && valX.Rows > 0 {
			t.Net.SetTraining(false)
			valLoss = t.Evaluate(valX, valLabels)
			t.Net.SetTraining(true)
			hist.ValLoss = append(hist.ValLoss, valLoss)
			mValLoss.Set(valLoss)
			if valLoss < bestVal-1e-6 {
				bestVal = valLoss
				hist.BestEpoch = epoch
				sinceBest = 0
				bestWeights = snapshotWeights(t.Net)
			} else {
				sinceBest++
			}
		} else {
			hist.BestEpoch = epoch
		}
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %2d: train %.4f val %.4f", epoch, epochLoss, valLoss))
		}
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, hist) {
			break
		}
		if cfg.Patience > 0 && sinceBest >= cfg.Patience {
			break
		}
	}
	if bestWeights != nil {
		restoreWeights(t.Net, bestWeights)
	}
	return hist
}

// Evaluate returns the mean cross-entropy loss on (x, labels) without
// updating any parameter, using the trainer's class weights if set.
func (t *Trainer) Evaluate(x *mat.Matrix, labels []int) float64 {
	logits := t.Net.Forward(x)
	loss, _ := t.Loss.WeightedLoss(logits, labels, t.ClassWeights)
	return loss
}

// Accuracy returns the fraction of samples whose arg-max prediction matches
// the label.
func (t *Trainer) Accuracy(x *mat.Matrix, labels []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	logits := t.Net.Forward(x)
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		if Argmax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows)
}

func snapshotWeights(n *Network) [][]float64 {
	var ws [][]float64
	for _, p := range n.Params() {
		ws = append(ws, append([]float64(nil), p.Value.Data...))
	}
	return ws
}

func restoreWeights(n *Network, ws [][]float64) {
	for i, p := range n.Params() {
		copy(p.Value.Data, ws[i])
	}
}
